//! The deletion write-ahead log: append-only CRC frames, group commit,
//! and checkpoint compaction.
//!
//! An append-only file of length-prefixed, CRC-checksummed frames. A
//! batch is acknowledged on the wire only after its frame is fsync'd
//! (see `server::apply_chain` — WAL append → group fsync → engine apply
//! → registry commit → ack), so an acknowledged deletion can always be
//! redone after a crash.
//!
//! # Frame format
//!
//! ```text
//! [u32 len][u32 crc32][payload: len bytes]
//! payload = u8 kind (0 = delta record, 1 = checkpoint)
//!
//! kind 0:   u64 lsn
//!           u8  prev_lsn flag (+ u64 prev_lsn)
//!           u32 session-name len + bytes (UTF-8)
//!           u8  method index into Method::ALL
//!           u64 removed-id count + that many u64 stable ids
//!           u8  keep_last flag (+ u64 keep_last)
//!           u8  added flag (+ u64 num_features, u64 num_rows,
//!                           num_rows*num_features f64 bit patterns,
//!                           num_rows f64 label bit patterns)
//!
//! kind 1:   u64 next_lsn (the LSN counter at checkpoint time)
//!           u64 floor count + per floor:
//!               u32 session-name len + bytes, u64 floor LSN
//! ```
//!
//! All integers little-endian; all `f64`s as [`f64::to_bits`] so redo
//! reconstructs the exact added block the live path applied. The CRC
//! (CRC-32/IEEE, hand-rolled table — no dependencies) covers the payload
//! only: a torn length prefix already fails the length check.
//!
//! # Group commit
//!
//! [`GroupWal`] wraps the log for the applier path: concurrently (or
//! consecutively) resolved batches are **appended as individual frames
//! but share one fsync**. [`GroupWal::append`] writes the frame and
//! returns a commit sequence number; [`GroupWal::sync_through`] blocks
//! until that sequence is durable, electing the first waiter as the
//! *leader* that fsyncs on behalf of everything appended so far (capped
//! at [`GroupCommitConfig::max_group`]) while followers wait on the
//! condvar. At `max_group == 1` this degenerates to the one-fsync-per-
//! batch behaviour the durability layer shipped with. An append or fsync
//! failure marks the log **broken** — sticky, because a failed
//! `write_all` may leave a partial frame that later frames would land
//! behind — and every subsequent operation fails fast.
//!
//! # Checkpoints
//!
//! [`GroupWal::checkpoint_if_due`] bounds the log: given the per-session
//! covered-LSN floors implied by the durable snapshots, it rewrites the
//! live suffix (every record at or past its session's floor) into a new
//! log headed by a kind-1 checkpoint frame, atomically renames it over
//! the old one, and truncates everything every session's snapshots
//! already cover. The checkpoint frame preserves the LSN counter so
//! sequence numbers never rewind. Crash points `checkpoint-mid-rewrite`
//! / `checkpoint-before-rename` / `checkpoint-after-rename` leave either
//! the old log (plus an ignored `.tmp`) or the complete new one.
//!
//! # Torn-tail semantics
//!
//! The reader returns the longest valid frame prefix plus a typed
//! [`WalTail`] describing why it stopped (truncated frame, bad checksum,
//! undecodable payload). A torn tail is *normal* after a crash — the
//! frame that was mid-write was by definition unacknowledged — so
//! recovery logs the tail and truncates the file back to the valid
//! prefix before appending again. What the reader never does is panic or
//! apply half a frame.
//!
//! # Records store *resolved* deltas
//!
//! A record carries the union removal set as **stable ids after retention
//! expiry** and the method the cost model chose. Both resolutions are
//! timing-dependent (the planner's coalescing window decides what folds
//! into the batch; the EMA cost model decides the method from measured
//! seconds), so redo must not re-derive them. Everything downstream of
//! the record — id translation, `apply_delta`, survivor computation,
//! fresh-id assignment — is deterministic, which is what makes replay
//! bitwise-exact. A record resolved speculatively against the outcome of
//! an earlier, not-yet-applied record in the same group carries that
//! record's LSN as `prev_lsn`, so recovery can skip the dependent chain
//! if the antecedent's redo fails.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use priu_core::snapshot::{SnapshotReader, SnapshotWriter};
use priu_core::Method;

use crate::error::{Result, ServerError};
use crate::failpoint::fail_point;

/// Frames larger than this are rejected as corrupt (a length prefix of
/// garbage bytes would otherwise ask for gigabytes).
pub const MAX_WAL_FRAME_BYTES: u32 = 1 << 30;

/// Frame payload kind: one committed union delta.
const KIND_DELTA: u8 = 0;
/// Frame payload kind: a checkpoint (compaction marker).
const KIND_CHECKPOINT: u8 = 1;

/// One committed union delta, as redo needs it.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Log sequence number, strictly increasing across the file.
    pub lsn: u64,
    /// LSN of the record this one was speculatively resolved against
    /// (same-session, same commit group, not yet applied at resolve
    /// time). Recovery skips this record if the antecedent's redo was
    /// skipped — the resolution would no longer be meaningful. `None`
    /// when the record was resolved against committed state.
    pub prev_lsn: Option<u64>,
    /// The session the batch targeted.
    pub session: String,
    /// The method the cost model chose (recorded because the choice is
    /// timing-dependent and must not be re-derived on redo).
    pub method: Method,
    /// Resolved union removal set as stable ids — deletion requests plus
    /// retention expiry, exactly what the live batch removed.
    pub removed_ids: Vec<u64>,
    /// The retention bound the batch carried, if any (informational: the
    /// expiry it induced is already folded into `removed_ids`).
    pub keep_last: Option<u64>,
    /// Appended rows in FIFO admission order: `(num_features, features,
    /// labels)`. `None` when the batch appended nothing.
    pub added: Option<(usize, Vec<f64>, Vec<f64>)>,
}

/// A checkpoint frame: the compaction marker heading a rewritten log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// The LSN counter at checkpoint time — reopening seeds the next LSN
    /// from this even when every delta frame was truncated away, so the
    /// sequence never rewinds.
    pub next_lsn: u64,
    /// Per-session covered-LSN floors the compaction honored: every
    /// record of `session` with `lsn < floor` was dropped because a
    /// durable snapshot already folds it in. Sorted by session name.
    pub floors: Vec<(String, u64)>,
}

/// Why WAL reading stopped before end-of-file. A torn tail after a crash
/// is expected; recovery reports it and truncates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalTail {
    /// The file ends inside a frame header or payload.
    TruncatedFrame {
        /// Byte offset of the incomplete frame.
        at: u64,
    },
    /// A frame's payload does not match its stored CRC.
    BadChecksum {
        /// Byte offset of the corrupt frame.
        at: u64,
    },
    /// The frame passed its CRC but the payload did not decode — format
    /// corruption rather than torn bytes.
    BadPayload {
        /// Byte offset of the undecodable frame.
        at: u64,
        /// What failed to decode.
        reason: String,
    },
    /// A length prefix exceeding [`MAX_WAL_FRAME_BYTES`].
    OversizedFrame {
        /// Byte offset of the oversized frame.
        at: u64,
        /// The claimed length.
        len: u32,
    },
}

impl std::fmt::Display for WalTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalTail::TruncatedFrame { at } => write!(f, "truncated frame at byte {at}"),
            WalTail::BadChecksum { at } => write!(f, "checksum mismatch at byte {at}"),
            WalTail::BadPayload { at, reason } => {
                write!(f, "undecodable payload at byte {at}: {reason}")
            }
            WalTail::OversizedFrame { at, len } => {
                write!(f, "oversized frame ({len} bytes) at byte {at}")
            }
        }
    }
}

/// Result of scanning a WAL file: the valid record prefix, where it ends,
/// and why scanning stopped (if not clean EOF).
#[derive(Debug)]
pub struct WalScan {
    /// Every delta record of the valid prefix, in LSN order (checkpoint
    /// frames are reported separately, not here).
    pub records: Vec<WalRecord>,
    /// The newest checkpoint frame in the valid prefix, if any (a
    /// compacted log leads with one).
    pub checkpoint: Option<CheckpointRecord>,
    /// Byte offset where the valid prefix ends; appending resumes here.
    pub valid_bytes: u64,
    /// Why the scan stopped early; `None` means the whole file was valid.
    pub tail: Option<WalTail>,
}

// --- CRC-32 (IEEE 802.3, reflected) ---------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// CRC-32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --- record codec ---------------------------------------------------------

fn method_index(method: Method) -> u8 {
    Method::ALL
        .iter()
        .position(|&m| m == method)
        .expect("every method is in Method::ALL") as u8
}

fn write_name(w: &mut SnapshotWriter, name: &str) {
    let bytes = name.as_bytes();
    w.u32(bytes.len() as u32);
    for &b in bytes {
        w.u8(b);
    }
}

fn read_name(r: &mut SnapshotReader, what: &'static str) -> std::result::Result<String, String> {
    let fail = |e: priu_core::CoreError| e.to_string();
    let len = r.u32(what).map_err(fail)? as usize;
    if len > r.remaining() {
        return Err(format!("{what} longer than payload"));
    }
    let mut name = Vec::with_capacity(len);
    for _ in 0..len {
        name.push(r.u8(what).map_err(fail)?);
    }
    String::from_utf8(name).map_err(|_| format!("{what} not UTF-8"))
}

fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.u8(KIND_DELTA);
    w.u64(record.lsn);
    match record.prev_lsn {
        None => w.bool(false),
        Some(prev) => {
            w.bool(true);
            w.u64(prev);
        }
    }
    write_name(&mut w, &record.session);
    w.u8(method_index(record.method));
    w.usize(record.removed_ids.len());
    for &id in &record.removed_ids {
        w.u64(id);
    }
    match record.keep_last {
        None => w.bool(false),
        Some(keep) => {
            w.bool(true);
            w.u64(keep);
        }
    }
    match &record.added {
        None => w.bool(false),
        Some((num_features, features, labels)) => {
            w.bool(true);
            w.usize(*num_features);
            w.usize(labels.len());
            for &x in features {
                w.f64(x);
            }
            for &y in labels {
                w.f64(y);
            }
        }
    }
    w.into_bytes()
}

fn decode_record(payload: &[u8]) -> std::result::Result<WalRecord, String> {
    let fail = |e: priu_core::CoreError| e.to_string();
    let mut r = SnapshotReader::new(payload);
    let kind = r.u8("frame kind").map_err(fail)?;
    if kind != KIND_DELTA {
        return Err(format!("expected delta frame, got kind {kind}"));
    }
    let lsn = r.u64("lsn").map_err(fail)?;
    let prev_lsn = if r.bool("prev_lsn flag").map_err(fail)? {
        Some(r.u64("prev_lsn").map_err(fail)?)
    } else {
        None
    };
    let session = read_name(&mut r, "session name")?;
    let method_ix = r.u8("method").map_err(fail)? as usize;
    let method = *Method::ALL
        .get(method_ix)
        .ok_or_else(|| format!("bad method index {method_ix}"))?;
    let n = r.len(8, "removed ids").map_err(fail)?;
    let mut removed_ids = Vec::with_capacity(n);
    for _ in 0..n {
        removed_ids.push(r.u64("removed id").map_err(fail)?);
    }
    let keep_last = if r.bool("keep_last flag").map_err(fail)? {
        Some(r.u64("keep_last").map_err(fail)?)
    } else {
        None
    };
    let added = if r.bool("added flag").map_err(fail)? {
        let num_features = r.usize("num_features").map_err(fail)?;
        let num_rows = r.usize("num_rows").map_err(fail)?;
        let total = num_rows
            .checked_mul(num_features)
            .ok_or_else(|| "added block overflows".to_string())?;
        if total
            .checked_add(num_rows)
            .and_then(|n| n.checked_mul(8))
            .ok_or_else(|| "added block overflows".to_string())?
            > r.remaining()
        {
            return Err("added block larger than payload".to_string());
        }
        let mut features = Vec::with_capacity(total);
        for _ in 0..total {
            features.push(r.f64("added features").map_err(fail)?);
        }
        let mut labels = Vec::with_capacity(num_rows);
        for _ in 0..num_rows {
            labels.push(r.f64("added labels").map_err(fail)?);
        }
        Some((num_features, features, labels))
    } else {
        None
    };
    r.finish().map_err(fail)?;
    Ok(WalRecord {
        lsn,
        prev_lsn,
        session,
        method,
        removed_ids,
        keep_last,
        added,
    })
}

fn encode_checkpoint(cp: &CheckpointRecord) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.u8(KIND_CHECKPOINT);
    w.u64(cp.next_lsn);
    w.usize(cp.floors.len());
    for (session, floor) in &cp.floors {
        write_name(&mut w, session);
        w.u64(*floor);
    }
    w.into_bytes()
}

fn decode_checkpoint(payload: &[u8]) -> std::result::Result<CheckpointRecord, String> {
    let fail = |e: priu_core::CoreError| e.to_string();
    let mut r = SnapshotReader::new(payload);
    let kind = r.u8("frame kind").map_err(fail)?;
    if kind != KIND_CHECKPOINT {
        return Err(format!("expected checkpoint frame, got kind {kind}"));
    }
    let next_lsn = r.u64("checkpoint next_lsn").map_err(fail)?;
    let n = r.len(12, "checkpoint floors").map_err(fail)?;
    let mut floors = Vec::with_capacity(n);
    for _ in 0..n {
        let session = read_name(&mut r, "floor session name")?;
        let floor = r.u64("floor lsn").map_err(fail)?;
        floors.push((session, floor));
    }
    r.finish().map_err(fail)?;
    Ok(CheckpointRecord { next_lsn, floors })
}

/// Appends one `[len][crc][payload]` frame to a byte buffer.
fn push_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

// --- scanning -------------------------------------------------------------

fn scan_bytes(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut checkpoint = None;
    let mut at = 0usize;
    let mut tail = None;
    while at < bytes.len() {
        if bytes.len() - at < 8 {
            tail = Some(WalTail::TruncatedFrame { at: at as u64 });
            break;
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if len > MAX_WAL_FRAME_BYTES {
            tail = Some(WalTail::OversizedFrame { at: at as u64, len });
            break;
        }
        let body_start = at + 8;
        let Some(body_end) = body_start
            .checked_add(len as usize)
            .filter(|&e| e <= bytes.len())
        else {
            tail = Some(WalTail::TruncatedFrame { at: at as u64 });
            break;
        };
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != crc {
            tail = Some(WalTail::BadChecksum { at: at as u64 });
            break;
        }
        let decoded = match payload.first() {
            Some(&KIND_DELTA) => decode_record(payload).map(|r| records.push(r)),
            Some(&KIND_CHECKPOINT) => decode_checkpoint(payload).map(|c| checkpoint = Some(c)),
            Some(&k) => Err(format!("unknown frame kind {k}")),
            None => Err("empty frame payload".to_string()),
        };
        if let Err(reason) = decoded {
            tail = Some(WalTail::BadPayload {
                at: at as u64,
                reason,
            });
            break;
        }
        at = body_end;
    }
    WalScan {
        records,
        checkpoint,
        valid_bytes: at as u64,
        tail,
    }
}

/// Scans a WAL file, returning the longest valid frame prefix. A missing
/// file is an empty log. Never panics on any byte sequence.
///
/// # Errors
/// Only genuine I/O failures ([`ServerError::Durability`]); corruption is
/// reported in [`WalScan::tail`], not as an error.
pub fn scan_wal(path: &Path) -> Result<WalScan> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                records: Vec::new(),
                checkpoint: None,
                valid_bytes: 0,
                tail: None,
            })
        }
        Err(e) => return Err(ServerError::Durability(format!("reading WAL: {e}"))),
    };
    Ok(scan_bytes(&bytes))
}

// --- appending ------------------------------------------------------------

/// The append half of the log: owns the file handle and the LSN counter.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_lsn: u64,
}

impl Wal {
    /// Opens (or creates) the WAL at `path`, scanning the existing
    /// contents: the valid prefix (and any checkpoint frame) seeds the
    /// LSN counter, and any torn tail is truncated away so new frames
    /// never land behind garbage. Returns the scan so the caller can
    /// redo / report it.
    ///
    /// # Errors
    /// [`ServerError::Durability`] on I/O failure.
    pub fn open(path: &Path) -> Result<(Wal, WalScan)> {
        let scan = scan_wal(path)?;
        let io = |what: &str, e: std::io::Error| {
            ServerError::Durability(format!("{what} {}: {e}", path.display()))
        };
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(false)
            .truncate(false)
            .write(true)
            .open(path)
            .map_err(|e| io("opening WAL", e))?;
        file.set_len(scan.valid_bytes)
            .map_err(|e| io("truncating WAL tail", e))?;
        file.seek(SeekFrom::Start(scan.valid_bytes))
            .map_err(|e| io("seeking WAL", e))?;
        sync_parent_dir(path)?;
        let next_lsn = scan
            .records
            .last()
            .map_or(0, |r| r.lsn + 1)
            .max(scan.checkpoint.as_ref().map_or(0, |c| c.next_lsn));
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                next_lsn,
            },
            scan,
        ))
    }

    /// The LSN the next appended record will get.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Appends one record *without* syncing: frame write and LSN
    /// assignment only (crash point `wal-after-append` after the write).
    /// The record is not durable until a subsequent fsync; group commit
    /// batches several appends under one. Returns `(lsn, frame bytes)`.
    ///
    /// # Errors
    /// [`ServerError::Durability`] on I/O failure. A failed `write_all`
    /// may leave a partial frame, so the caller must treat the log as
    /// broken (see [`GroupWal`]).
    pub fn append(&mut self, record: &mut WalRecord) -> Result<(u64, u64)> {
        let lsn = self.next_lsn;
        record.lsn = lsn;
        let payload = encode_record(record);
        let mut frame = Vec::with_capacity(8 + payload.len());
        push_frame(&mut frame, &payload);
        self.file.write_all(&frame).map_err(|e| {
            ServerError::Durability(format!("appending WAL frame {}: {e}", self.path.display()))
        })?;
        fail_point("wal-after-append");
        self.next_lsn = lsn + 1;
        Ok((lsn, frame.len() as u64))
    }

    /// Appends one record and makes it durable: frame write, fsync, LSN
    /// assignment — with the `wal-after-append` / `wal-before-fsync` /
    /// `wal-after-fsync` crash points between the steps. Returns the
    /// record's LSN. (The applier path uses [`GroupWal`] instead, which
    /// shares the fsync across a group.)
    ///
    /// # Errors
    /// [`ServerError::Durability`] on I/O failure; the caller must then
    /// fail the batch (nothing was acknowledged).
    pub fn append_sync(&mut self, record: &mut WalRecord) -> Result<u64> {
        let (lsn, _) = self.append(record)?;
        fail_point("wal-before-fsync");
        self.file.sync_data().map_err(|e| {
            ServerError::Durability(format!("syncing WAL {}: {e}", self.path.display()))
        })?;
        fail_point("wal-after-fsync");
        Ok(lsn)
    }
}

// --- group commit ---------------------------------------------------------

/// Group-commit tuning: how many frames one fsync may cover and how long
/// a leader may hold the group open waiting for more appends.
#[derive(Debug, Clone, Copy)]
pub struct GroupCommitConfig {
    /// Maximum frames a single fsync may cover. `1` degenerates to one
    /// fsync per batch (the pre-group-commit behaviour).
    pub max_group: usize,
    /// How long an elected leader waits for the group to fill before
    /// fsyncing what it has. `ZERO` (the default) syncs immediately —
    /// grouping then comes purely from appends that arrived while the
    /// previous fsync was in flight, which never delays a lone batch.
    pub max_hold: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        Self {
            max_group: 64,
            max_hold: Duration::ZERO,
        }
    }
}

/// Cumulative durability counters, exposed through server stats and the
/// loadgen JSON so group-commit amortisation is priced directly (mean
/// group size = `frames / fsyncs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// WAL fsyncs issued (group leaders + checkpoint rewrites excluded).
    pub fsyncs: u64,
    /// Delta frames appended.
    pub frames: u64,
    /// Bytes appended (frame headers included).
    pub bytes: u64,
    /// Largest number of frames one fsync covered.
    pub max_group: u64,
    /// Checkpoint compactions completed.
    pub checkpoints: u64,
}

#[derive(Debug)]
struct GroupState {
    wal: Wal,
    /// Commit sequence numbers: count of frames appended through this
    /// handle (1-based; independent of LSNs, which survive restarts).
    appended_seq: u64,
    /// Highest sequence known durable.
    synced_seq: u64,
    /// Whether a leader fsync is in flight.
    syncing: bool,
    /// Sticky failure: a failed append may have left a partial frame, a
    /// failed fsync an indeterminate prefix — nothing after either can
    /// be trusted durable, so the log refuses further work.
    broken: Option<String>,
    stats: WalStats,
    /// Bytes appended since the last checkpoint (compaction trigger).
    bytes_since_checkpoint: u64,
}

/// The group-commit front of the WAL: shared appends, one fsync per
/// group, checkpoint compaction. See the module docs.
#[derive(Debug)]
pub struct GroupWal {
    cfg: GroupCommitConfig,
    state: Mutex<GroupState>,
    cv: Condvar,
}

impl GroupWal {
    /// Wraps an already-opened [`Wal`] (the recovery path opens and scans
    /// first, then hands the log over for serving).
    pub fn new(wal: Wal, cfg: GroupCommitConfig) -> Self {
        Self {
            cfg: GroupCommitConfig {
                max_group: cfg.max_group.max(1),
                max_hold: cfg.max_hold,
            },
            state: Mutex::new(GroupState {
                wal,
                appended_seq: 0,
                synced_seq: 0,
                syncing: false,
                broken: None,
                stats: WalStats::default(),
                bytes_since_checkpoint: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Opens (or creates) the log at `path` behind a group-commit front.
    ///
    /// # Errors
    /// [`ServerError::Durability`] on I/O failure.
    pub fn open(path: &Path, cfg: GroupCommitConfig) -> Result<(Self, WalScan)> {
        let (wal, scan) = Wal::open(path)?;
        Ok((Self::new(wal, cfg), scan))
    }

    fn lock(&self) -> MutexGuard<'_, GroupState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The LSN the next appended record will get.
    pub fn next_lsn(&self) -> u64 {
        self.lock().wal.next_lsn
    }

    /// Cumulative durability counters.
    pub fn stats(&self) -> WalStats {
        self.lock().stats
    }

    /// Appends one record without syncing, returning the commit sequence
    /// number to pass to [`GroupWal::sync_through`]. The record's LSN is
    /// assigned (and `record.lsn` set) under the same lock that orders
    /// the frames, so LSN order equals file order.
    ///
    /// # Errors
    /// [`ServerError::Durability`] on I/O failure or a previously broken
    /// log. An append failure breaks the log (partial frame).
    pub fn append(&self, record: &mut WalRecord) -> Result<u64> {
        let mut state = self.lock();
        if let Some(broken) = &state.broken {
            return Err(ServerError::Durability(broken.clone()));
        }
        match state.wal.append(record) {
            Ok((_, bytes)) => {
                state.appended_seq += 1;
                state.stats.frames += 1;
                state.stats.bytes += bytes;
                state.bytes_since_checkpoint += bytes;
                Ok(state.appended_seq)
            }
            Err(err) => {
                state.broken = Some(err.to_string());
                self.cv.notify_all();
                Err(err)
            }
        }
    }

    /// Blocks until every append up to `seq` is durable. The first
    /// waiter that finds no fsync in flight becomes the *leader*: it
    /// fsyncs once on behalf of everything appended so far (capped at
    /// `max_group`, optionally holding `max_hold` for the group to
    /// fill), then wakes the followers — which is what amortises the
    /// fsync across the group while every ack still waits for *its* frame
    /// to be durable.
    ///
    /// # Errors
    /// [`ServerError::Durability`] if the fsync failed or the log is
    /// broken; the caller must fail the batch (it was never durable).
    pub fn sync_through(&self, seq: u64) -> Result<()> {
        let mut state = self.lock();
        loop {
            if let Some(broken) = &state.broken {
                return Err(ServerError::Durability(broken.clone()));
            }
            if state.synced_seq >= seq {
                return Ok(());
            }
            if state.syncing {
                state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            // Leader election: fsync on behalf of the group.
            if self.cfg.max_hold > Duration::ZERO {
                let deadline = Instant::now() + self.cfg.max_hold;
                while state.broken.is_none()
                    && !state.syncing
                    && state.appended_seq - state.synced_seq < self.cfg.max_group as u64
                {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    state = self
                        .cv
                        .wait_timeout(state, left)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
                if state.broken.is_some() || state.syncing || state.synced_seq >= seq {
                    continue; // re-evaluate from the top
                }
            }
            state.syncing = true;
            let through = state
                .appended_seq
                .min(state.synced_seq + self.cfg.max_group as u64);
            let group = through - state.synced_seq;
            let file = state.wal.file.try_clone();
            drop(state);

            let outcome = match file {
                Ok(file) => {
                    fail_point("group-leader-sync");
                    fail_point("wal-before-fsync");
                    match file.sync_data() {
                        Ok(()) => {
                            fail_point("wal-after-fsync");
                            Ok(())
                        }
                        Err(e) => Err(format!("syncing WAL: {e}")),
                    }
                }
                Err(e) => Err(format!("cloning WAL handle for group fsync: {e}")),
            };

            state = self.lock();
            state.syncing = false;
            match outcome {
                Ok(()) => {
                    // A concurrent checkpoint may have advanced synced_seq
                    // past `through` already; never move it backwards.
                    state.synced_seq = state.synced_seq.max(through);
                    state.stats.fsyncs += 1;
                    state.stats.max_group = state.stats.max_group.max(group);
                }
                Err(message) => state.broken = Some(message),
            }
            self.cv.notify_all();
        }
    }

    /// Appends one record and waits for its group fsync — the
    /// single-record convenience the non-chained paths use. Returns the
    /// record's LSN.
    ///
    /// # Errors
    /// As [`GroupWal::append`] / [`GroupWal::sync_through`].
    pub fn append_sync(&self, record: &mut WalRecord) -> Result<u64> {
        let seq = self.append(record)?;
        self.sync_through(seq)?;
        Ok(record.lsn)
    }

    /// Compacts the log if at least `threshold` bytes were appended since
    /// the last checkpoint: rewrites every record at or past its
    /// session's floor (unknown sessions keep everything) into a new log
    /// headed by a checkpoint frame, fsyncs it, atomically renames it
    /// over the old one, and resumes appending there. Returns whether a
    /// checkpoint ran. Runs on the snapshot thread; appends and group
    /// fsyncs are excluded for the duration by the log mutex.
    ///
    /// Crash points: `checkpoint-mid-rewrite` (torn temp file, old log
    /// intact), `checkpoint-before-rename` (complete temp, old log
    /// intact), `checkpoint-after-rename` (new log in place, directory
    /// fsync pending).
    ///
    /// # Errors
    /// [`ServerError::Durability`] on I/O failure. Failures before the
    /// rename abandon the temp file and leave the log serving; failures
    /// after it break the log (the handle no longer matches the file).
    pub fn checkpoint_if_due(&self, threshold: u64, floors: &[(String, u64)]) -> Result<bool> {
        let mut state = self.lock();
        if state.broken.is_some() || state.bytes_since_checkpoint < threshold {
            return Ok(false);
        }
        // Let an in-flight leader finish: its cloned fd targets the file
        // the rewrite is about to replace.
        while state.syncing {
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
            if state.broken.is_some() {
                return Ok(false);
            }
        }

        let path = state.wal.path.clone();
        // The mutex quiesces appends, so every frame in the file is
        // complete; unsynced frames are still visible (same page cache).
        let scan = scan_wal(&path)?;
        let floor_of = |session: &str| {
            floors
                .iter()
                .find(|(name, _)| name == session)
                .map_or(0, |&(_, floor)| floor)
        };
        let checkpoint = CheckpointRecord {
            next_lsn: state.wal.next_lsn,
            floors: floors.to_vec(),
        };
        let mut rewritten = Vec::new();
        push_frame(&mut rewritten, &encode_checkpoint(&checkpoint));
        for record in scan
            .records
            .iter()
            .filter(|r| r.lsn >= floor_of(&r.session))
        {
            push_frame(&mut rewritten, &encode_record(record));
        }

        let tmp = path.with_extension("wal.tmp");
        let io = |what: &str, p: &Path, e: std::io::Error| {
            ServerError::Durability(format!("{what} {}: {e}", p.display()))
        };
        let staged = (|| -> Result<()> {
            let mut file = OpenOptions::new()
                .create(true)
                .truncate(true)
                .write(true)
                .open(&tmp)
                .map_err(|e| io("creating", &tmp, e))?;
            // Two half-writes around the crash point, so the torture
            // suite can leave a genuinely torn rewrite behind.
            let mid = rewritten.len() / 2;
            file.write_all(&rewritten[..mid])
                .map_err(|e| io("writing", &tmp, e))?;
            fail_point("checkpoint-mid-rewrite");
            file.write_all(&rewritten[mid..])
                .map_err(|e| io("writing", &tmp, e))?;
            file.sync_data().map_err(|e| io("syncing", &tmp, e))
        })();
        if let Err(err) = staged {
            // The old log is untouched and still serving; drop the stage.
            let _ = std::fs::remove_file(&tmp);
            return Err(err);
        }
        fail_point("checkpoint-before-rename");
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(io("renaming checkpoint into place", &path, e));
        }
        fail_point("checkpoint-after-rename");

        // Past the rename the open handle writes to the *old* inode, so
        // any failure from here on breaks the log.
        let mut fatal = |message: String| -> ServerError {
            state.broken = Some(message.clone());
            self.cv.notify_all();
            ServerError::Durability(message)
        };
        if let Err(err) = sync_parent_dir(&path) {
            return Err(fatal(err.to_string()));
        }
        let reopened = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .and_then(|mut f| f.seek(SeekFrom::End(0)).map(|_| f));
        match reopened {
            Ok(file) => state.wal.file = file,
            Err(e) => {
                return Err(fatal(format!(
                    "reopening WAL after checkpoint {}: {e}",
                    path.display()
                )))
            }
        }
        // The rewrite was fully fsync'd before the rename, so everything
        // appended (synced or not) is now durable.
        state.synced_seq = state.appended_seq;
        state.bytes_since_checkpoint = 0;
        state.stats.checkpoints += 1;
        self.cv.notify_all();
        Ok(true)
    }
}

/// Fsyncs the directory containing `path`, making a create/rename in it
/// durable (no-op on platforms where directories cannot be opened).
pub fn sync_parent_dir(path: &Path) -> Result<()> {
    let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) else {
        return Ok(());
    };
    match File::open(parent) {
        Ok(dir) => dir.sync_all().map_err(|e| {
            ServerError::Durability(format!("syncing directory {}: {e}", parent.display()))
        }),
        // Directories aren't openable everywhere; the rename itself is
        // still atomic, we just lose the metadata flush.
        Err(_) => Ok(()),
    }
}

/// Reads a whole file, distinguishing "missing" from other I/O failures.
pub(crate) fn read_file(path: &Path) -> Result<Option<Vec<u8>>> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(ServerError::Durability(format!(
            "reading {}: {e}",
            path.display()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(lsn: u64, session: &str) -> WalRecord {
        WalRecord {
            lsn,
            prev_lsn: None,
            session: session.to_string(),
            method: Method::Priu,
            removed_ids: vec![3, 5, 8],
            keep_last: Some(40),
            added: Some((2, vec![1.5, -2.0, 0.25, 4.0], vec![1.0, -1.0])),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = tempdir("wal-roundtrip");
        let path = dir.join("deltas.wal");
        let (mut wal, scan) = Wal::open(&path).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.checkpoint.is_none());
        assert!(scan.tail.is_none());
        for i in 0..5u64 {
            let mut r = record(999, &format!("s{}", i % 2));
            if i > 2 {
                r.prev_lsn = Some(i - 1);
            }
            let lsn = wal.append_sync(&mut r).unwrap();
            assert_eq!(lsn, i); // LSN is assigned by the log, not the caller
        }
        drop(wal);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert!(scan.tail.is_none());
        assert_eq!(scan.records[3].lsn, 3);
        assert_eq!(scan.records[3].prev_lsn, Some(2));
        assert_eq!(scan.records[2].prev_lsn, None);
        assert_eq!(scan.records[3].session, "s1");
        assert_eq!(scan.records[3].removed_ids, vec![3, 5, 8]);
        assert_eq!(scan.records[3].keep_last, Some(40));
        let (num_features, features, labels) = scan.records[3].added.clone().unwrap();
        assert_eq!(num_features, 2);
        assert_eq!(features, vec![1.5, -2.0, 0.25, 4.0]);
        assert_eq!(labels, vec![1.0, -1.0]);

        // Reopening resumes the LSN sequence after the valid prefix.
        let (wal, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert_eq!(wal.next_lsn(), 5);
    }

    #[test]
    fn torn_tail_is_reported_and_truncated() {
        let dir = tempdir("wal-torn");
        let path = dir.join("deltas.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        for _ in 0..3 {
            wal.append_sync(&mut record(0, "s")).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();

        // Frame boundaries: a cut exactly there is indistinguishable from
        // a shorter log that ended cleanly.
        let clean = scan_wal(&path).unwrap();
        let mut boundaries = vec![0u64];
        for _ in &clean.records {
            // All frames are the same size here; recompute from the scan.
            boundaries.push(clean.valid_bytes / 3 * boundaries.len() as u64);
        }

        // Every truncation offset yields a clean prefix, never a panic; a
        // mid-frame cut is reported as a torn tail.
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_wal(&path).unwrap();
            assert!(scan.records.len() <= 3);
            assert!(scan.valid_bytes <= cut as u64);
            if boundaries.contains(&(cut as u64)) {
                assert!(scan.tail.is_none(), "boundary cut at {cut} misreported");
            } else {
                assert!(scan.tail.is_some(), "cut at {cut} lost a record silently");
            }
        }

        // A bit flip in the last frame's payload fails its checksum; the
        // prefix survives.
        let mut flipped = full.clone();
        let last = flipped.len() - 3;
        flipped[last] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(matches!(scan.tail, Some(WalTail::BadChecksum { .. })));

        // Reopening truncates the corrupt tail and appends cleanly after.
        let (mut wal, _) = Wal::open(&path).unwrap();
        assert_eq!(wal.next_lsn(), 2);
        wal.append_sync(&mut record(0, "s")).unwrap();
        drop(wal);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert!(scan.tail.is_none());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let dir = tempdir("wal-oversized");
        let path = dir.join("deltas.wal");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert!(scan.records.is_empty());
        assert!(matches!(scan.tail, Some(WalTail::OversizedFrame { .. })));
    }

    #[test]
    fn group_commit_shares_fsyncs_and_acks_in_order() {
        let dir = tempdir("wal-group");
        let path = dir.join("deltas.wal");
        let (wal, _) = GroupWal::open(&path, GroupCommitConfig::default()).unwrap();

        // A chain of appends, one sync for the lot: every record durable,
        // one fsync counted, group size = chain length.
        let mut last = 0;
        for i in 0..6u64 {
            let mut r = record(0, "s");
            r.prev_lsn = (i > 0).then(|| i - 1);
            last = wal.append(&mut r).unwrap();
            assert_eq!(r.lsn, i);
        }
        wal.sync_through(last).unwrap();
        let stats = wal.stats();
        assert_eq!(stats.frames, 6);
        assert_eq!(stats.fsyncs, 1);
        assert_eq!(stats.max_group, 6);
        assert!(stats.bytes > 0);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 6);
        assert!(scan.tail.is_none());

        // Syncing an already-durable sequence is free.
        wal.sync_through(last).unwrap();
        assert_eq!(wal.stats().fsyncs, 1);

        // max_group = 1 degenerates to one fsync per frame.
        let dir = tempdir("wal-group-1");
        let path = dir.join("deltas.wal");
        let cfg = GroupCommitConfig {
            max_group: 1,
            ..GroupCommitConfig::default()
        };
        let (wal, _) = GroupWal::open(&path, cfg).unwrap();
        let mut last = 0;
        for _ in 0..3 {
            last = wal.append(&mut record(0, "s")).unwrap();
        }
        wal.sync_through(last).unwrap();
        let stats = wal.stats();
        assert_eq!(stats.frames, 3);
        assert_eq!(stats.fsyncs, 3, "a group of 1 per fsync");
        assert_eq!(stats.max_group, 1);
    }

    #[test]
    fn checkpoint_truncates_covered_records_and_preserves_lsns() {
        let dir = tempdir("wal-checkpoint");
        let path = dir.join("deltas.wal");
        let (wal, _) = GroupWal::open(&path, GroupCommitConfig::default()).unwrap();
        for i in 0..8u64 {
            let session = if i % 2 == 0 { "a" } else { "b" };
            let seq = wal.append(&mut record(0, session)).unwrap();
            wal.sync_through(seq).unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();

        // Floors: a's snapshots cover LSN < 6, b's cover LSN < 3; session
        // a keeps {6}, b keeps {3, 5, 7}.
        let floors = vec![("a".to_string(), 6), ("b".to_string(), 3)];
        assert!(wal.checkpoint_if_due(1, &floors).unwrap());
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before, "compaction shrank the log");

        let scan = scan_wal(&path).unwrap();
        let lsns: Vec<u64> = scan.records.iter().map(|r| r.lsn).collect();
        assert_eq!(lsns, vec![3, 5, 6, 7]);
        let checkpoint = scan.checkpoint.expect("checkpoint frame");
        assert_eq!(checkpoint.next_lsn, 8);
        assert_eq!(checkpoint.floors, floors);

        // Below-threshold appends don't re-checkpoint.
        assert!(!wal.checkpoint_if_due(1 << 30, &floors).unwrap());

        // Appending continues the LSN sequence on the rewritten log.
        let mut r = record(0, "a");
        let seq = wal.append(&mut r).unwrap();
        wal.sync_through(seq).unwrap();
        assert_eq!(r.lsn, 8);

        // Reopening seeds the counter from the checkpoint chain even if
        // every remaining delta frame were truncated away.
        let (reopened, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert_eq!(reopened.next_lsn(), 9);
    }

    #[test]
    fn checkpoint_of_a_fully_covered_log_keeps_only_the_marker() {
        let dir = tempdir("wal-checkpoint-empty");
        let path = dir.join("deltas.wal");
        let (wal, _) = GroupWal::open(&path, GroupCommitConfig::default()).unwrap();
        for _ in 0..4 {
            let seq = wal.append(&mut record(0, "s")).unwrap();
            wal.sync_through(seq).unwrap();
        }
        assert!(wal.checkpoint_if_due(1, &[("s".to_string(), 4)]).unwrap());
        let scan = scan_wal(&path).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.checkpoint.expect("marker").next_lsn, 4);
        // The counter survives the empty rewrite.
        let (reopened, _) = Wal::open(&path).unwrap();
        assert_eq!(reopened.next_lsn(), 4);
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("priu-{tag}-{}", std::process::id(),));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
