//! The delta service: session registry + planner + scheduler wired to
//! one applier thread, with an optional wire front-end.
//!
//! # Threads
//!
//! * **Callers** (any number) predict synchronously on immutable
//!   snapshots and enqueue change requests — deletions, additions,
//!   sliding-window ticks — receiving a [`DeleteTicket`].
//! * The **applier thread** sleeps on the planner condvar until a batch
//!   deadline (or a flush/shutdown poke), takes every ready batch, and
//!   applies them. When several sessions are ready at once the batches
//!   fan out over the shared worker pool via [`par::run_tasks`] — the
//!   per-session `apply_gate` keeps correctness, the pool gives
//!   cross-session parallelism.
//! * **Connections** ([`Server::serve_connection`]) each get a dedicated
//!   protocol reader thread plus a responder thread that resolves
//!   change tickets in admission order.
//!
//! # Determinism
//!
//! A coalesced batch commits exactly the session produced by **one**
//! [`DeletionEngine::apply_delta`] call with the union delta — removal
//! union over stable ids (plus any sliding-window expiry), additions in
//! FIFO admission order — the same call a direct engine user would make
//! with the folded [`Delta`]. Server results are therefore
//! bitwise-identical to engine results under the same `PRIU_THREADS` ×
//! `PRIU_SIMD` pin. [`ServerConfig::apply_threads`] /
//! [`ServerConfig::simd_level`] pin both on the applier thread
//! regardless of which thread admitted the requests.
//!
//! # Sliding-window retention (`Tick`)
//!
//! A tick batch resolves its retention bound at apply time against the
//! pre-batch id list: after the batch's deletions and additions, if more
//! than `keep_last` rows would remain, the **oldest pre-existing** rows
//! (lowest stable ids) are expired — never rows the same batch appends —
//! clamped so at least one pre-existing row survives. Expired rows ride
//! the same union delta, so a tick is still one engine call.
//!
//! [`DeletionEngine::apply_delta`]: priu_core::DeletionEngine::apply_delta

use std::collections::{BTreeSet, HashMap};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use priu_core::{
    CaptureSnapshot, DeletionEngine, Delta, DeltaRows, Method, Model, ModelKind, Session, TaskKind,
};
use priu_data::dataset::{DenseDataset, Labels};
use priu_linalg::par;
use priu_linalg::simd::{self, SimdLevel};
use priu_linalg::{Matrix, Vector};

use crate::error::{Result, ServerError};
use crate::failpoint::fail_point;
use crate::planner::{
    AddedRows, BatchReply, DeleteTicket, PlannerConfig, PlannerState, ReadyBatch,
};
use crate::protocol::{
    decode_request, encode_response, spawn_frame_reader, write_frame, RecoverySessionStatus,
    Request, Response, ResponseEnvelope,
};
use crate::recovery::{recover, RecoveryReport};
use crate::registry::{SessionRegistry, SessionSlot};
use crate::scheduler::{CostModel, SchedulerConfig};
use crate::snapshot::{SnapshotJob, SnapshotService};
use crate::wal::{GroupCommitConfig, GroupWal, WalRecord, WalStats};

/// Durability configuration: where the WAL and snapshots live, and how
/// often snapshots are cut.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `deltas.wal` and `snapshots/`. Created on start.
    pub dir: PathBuf,
    /// Write a session snapshot every this many committed batches (a
    /// baseline snapshot is always written at registration). Bounds the
    /// WAL suffix redo to at most `snapshot_every - 1` records per
    /// session.
    pub snapshot_every: u64,
    /// Group-commit tuning: how many batches may share one WAL fsync and
    /// how long a leader holds the group open. `max_group: 1` restores
    /// one-fsync-per-batch.
    pub group: GroupCommitConfig,
    /// WAL compaction threshold: after each background snapshot lands,
    /// the log is checkpointed (rewritten down to the snapshot coverage
    /// frontier) once at least this many bytes were appended since the
    /// previous checkpoint. Bounds log size for long-lived servers.
    pub checkpoint_bytes: u64,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with the default snapshot cadence (8),
    /// default group commit, and a 1 MiB checkpoint threshold.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            snapshot_every: 8,
            group: GroupCommitConfig::default(),
            checkpoint_bytes: 1 << 20,
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Admission + coalescing planner configuration.
    pub planner: PlannerConfig,
    /// Cost-model scheduler configuration.
    pub scheduler: SchedulerConfig,
    /// Pins the worker-thread count for every batch apply (`None`
    /// inherits `PRIU_THREADS` / the machine default).
    pub apply_threads: Option<usize>,
    /// Pins the SIMD kernel level for every batch apply (`None` inherits
    /// `PRIU_SIMD` / runtime detection).
    pub simd_level: Option<SimdLevel>,
    /// Durable WAL + snapshots. `None` keeps the pre-durability behaviour
    /// (everything in memory, nothing survives a restart).
    pub durability: Option<DurabilityConfig>,
}

/// One prediction from one immutable snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Regression value, binary decision value, or the winning logit.
    pub value: f64,
    /// Predicted class for classifiers, `None` for regression.
    pub class: Option<usize>,
    /// Epoch of the snapshot that produced the prediction.
    pub epoch: u64,
}

/// Bookkeeping for one session.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Batches committed so far.
    pub epoch: u64,
    /// Surviving sample count.
    pub num_samples: usize,
    /// Feature count.
    pub num_features: usize,
    /// Rows removed incrementally since the last refit, over
    /// registration-time rows.
    pub drift: f64,
    /// Deletion requests pending in the planner.
    pub pending: usize,
    /// Scheduler decision histogram, [`Method::ALL`] order.
    pub decisions: Vec<(Method, u64)>,
}

/// The live durability state: the group-commit WAL plus the background
/// snapshot service. The WAL's internal mutex serialises appends across
/// sessions (batches fan out over the pool), which is also what assigns
/// the global LSN order; fsyncs are amortised across whatever appended
/// since the last one.
struct Durability {
    snapshot_every: u64,
    wal: Arc<GroupWal>,
    snapshots: Arc<SnapshotService>,
}

struct Inner {
    registry: SessionRegistry,
    cfg: ServerConfig,
    planner: Mutex<PlannerState>,
    /// Pokes the applier: new admission, flush, or shutdown.
    work: Condvar,
    /// Per-session cost models (per-session mutexes so fanned-out batches
    /// never contend on one model).
    cost: Mutex<HashMap<String, Arc<Mutex<CostModel>>>>,
    /// WAL + snapshots, when configured.
    durability: Option<Durability>,
    /// What restart recovery found and redid (durable servers only).
    recovery: Option<RecoveryReport>,
    shutdown: AtomicBool,
}

impl Inner {
    fn planner(&self) -> MutexGuard<'_, PlannerState> {
        self.planner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn cost_model(&self, session: &str) -> Option<Arc<Mutex<CostModel>>> {
        self.cost
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(session)
            .cloned()
    }

    fn predict(&self, session: &str, features: &[f64]) -> Result<Prediction> {
        let slot = self.registry.get(session)?;
        let (snapshot, epoch) = slot.snapshot();
        let model = snapshot.model();
        if features.len() != model.num_features() {
            return Err(ServerError::FeatureMismatch {
                expected: model.num_features(),
                got: features.len(),
            });
        }
        Ok(predict_on(model, features, epoch))
    }

    fn delete(&self, session: &str, ids: Vec<u64>) -> Result<DeleteTicket> {
        self.change(session, ids, None, None)
    }

    /// Admits a general change request — deletions, appended rows, and/or
    /// a retention window. Appended rows are validated here, against the
    /// session's current snapshot, so one malformed add never fails a
    /// whole coalesced batch.
    fn change(
        &self,
        session: &str,
        ids: Vec<u64>,
        added: Option<AddedRows>,
        keep_last: Option<u64>,
    ) -> Result<DeleteTicket> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(ServerError::ShuttingDown);
        }
        let slot = self.registry.get(session)?; // admission check: session must exist
        if let Some(rows) = &added {
            let (snapshot, _) = slot.snapshot();
            validate_added_rows(&snapshot, rows)?;
        }
        let ticket = self.planner().enqueue_change(
            session,
            ids,
            added.filter(|r| r.num_rows() > 0),
            keep_last,
        );
        self.work.notify_all();
        Ok(ticket)
    }

    fn flush(&self, session: &str) -> Result<()> {
        self.registry.get(session)?;
        self.planner().flush(session);
        self.work.notify_all();
        Ok(())
    }

    fn stats(&self, session: &str) -> Result<SessionStats> {
        let slot = self.registry.get(session)?;
        let (snapshot, epoch) = slot.snapshot();
        let decisions = self
            .cost_model(session)
            .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner).decisions())
            .unwrap_or_default();
        Ok(SessionStats {
            epoch,
            num_samples: snapshot.num_samples(),
            num_features: snapshot.model().num_features(),
            drift: slot.drift(),
            pending: self.planner().pending(session),
            decisions,
        })
    }
}

/// Computes a prediction on a model snapshot (lock-free: the snapshot is
/// immutable).
fn predict_on(model: &Model, features: &[f64], epoch: u64) -> Prediction {
    match model.kind() {
        ModelKind::Linear => Prediction {
            value: model.predict_linear(features),
            class: None,
            epoch,
        },
        ModelKind::BinaryLogistic => Prediction {
            value: model.decision_value(features),
            class: Some(model.predict_class(features)),
            epoch,
        },
        ModelKind::MultinomialLogistic { .. } => {
            let class = model.predict_class(features);
            Prediction {
                value: model.logits(features)[class],
                class: Some(class),
                epoch,
            }
        }
    }
}

/// Admission-time validation of appended rows against the session they
/// target: shape, feature width, and label kind/range. Rejecting here
/// keeps a malformed add from failing the coalesced batch it would have
/// been folded into.
fn validate_added_rows(session: &Session, rows: &AddedRows) -> Result<()> {
    if rows.features.len() != rows.num_features * rows.labels.len() {
        return Err(ServerError::InvalidRows(format!(
            "{} features do not fill {} rows of width {}",
            rows.features.len(),
            rows.labels.len(),
            rows.num_features
        )));
    }
    if rows.num_rows() == 0 {
        return Ok(());
    }
    if session.dense_dataset().is_none() {
        return Err(ServerError::InvalidRows(
            "appended rows are dense but the session is sparse".to_string(),
        ));
    }
    let expected = session.model().num_features();
    if rows.num_features != expected {
        return Err(ServerError::FeatureMismatch {
            expected,
            got: rows.num_features,
        });
    }
    match session.task() {
        TaskKind::Regression => {}
        TaskKind::BinaryClassification => {
            if let Some(&bad) = rows.labels.iter().find(|&&l| l != 1.0 && l != -1.0) {
                return Err(ServerError::InvalidRows(format!(
                    "binary label {bad} is not ±1"
                )));
            }
        }
        TaskKind::MulticlassClassification { num_classes } => {
            if let Some(&bad) = rows
                .labels
                .iter()
                .find(|&&l| l.fract() != 0.0 || l < 0.0 || l >= num_classes as f64)
            {
                return Err(ServerError::InvalidRows(format!(
                    "class label {bad} is not an integer in 0..{num_classes}"
                )));
            }
        }
    }
    Ok(())
}

/// Concatenates a batch's appended rows in FIFO admission order:
/// `(width, features, labels)`. `None` when the batch appends nothing.
/// This flat form is exactly what the WAL records — redo rebuilds the
/// same dense block through [`dense_added`], so live and recovered
/// appends are bit-identical.
fn concat_added(batch: &ReadyBatch) -> Option<(usize, Vec<f64>, Vec<f64>)> {
    let mut width = 0;
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for request in &batch.requests {
        if let Some(rows) = request.added.as_ref().filter(|r| r.num_rows() > 0) {
            width = rows.num_features;
            features.extend_from_slice(&rows.features);
            labels.extend_from_slice(&rows.labels);
        }
    }
    if labels.is_empty() {
        return None;
    }
    Some((width, features, labels))
}

/// Builds the dense appended block with task-appropriate labels — shared
/// by the live batch path and WAL redo. Shapes were validated at
/// admission (and ride the WAL verbatim).
pub(crate) fn dense_added(
    task: TaskKind,
    width: usize,
    features: Vec<f64>,
    labels: Vec<f64>,
) -> DenseDataset {
    let x = Matrix::from_vec(labels.len(), width, features).expect("shapes validated at admission");
    let labels = match task {
        TaskKind::Regression => Labels::Continuous(Vector::from_vec(labels)),
        TaskKind::BinaryClassification => Labels::Binary(Vector::from_vec(labels)),
        TaskKind::MulticlassClassification { num_classes } => Labels::Multiclass {
            classes: labels.into_iter().map(|l| l as u32).collect(),
            num_classes,
        },
    };
    DenseDataset::new(x, labels)
}

/// Runs `f` with the configured worker-thread count and SIMD level pinned
/// (both thread-local, so the pin travels with the applier regardless of
/// which thread admitted the work). Recovery redo runs under the same
/// pin, which is what keeps replayed results bitwise identical.
pub(crate) fn run_pinned<R>(cfg: &ServerConfig, f: impl FnOnce() -> R) -> R {
    match (cfg.apply_threads, cfg.simd_level) {
        (Some(t), Some(l)) => par::with_threads(t, || simd::with_level(l, f)),
        (Some(t), None) => par::with_threads(t, f),
        (None, Some(l)) => simd::with_level(l, f),
        (None, None) => f(),
    }
}

/// One resolved batch of a chain, as phase 3 needs it. Nothing
/// proportional to the session's row count is stored per step — survivor
/// lists are recomputed at commit time from the slot's live ids — so a
/// long chain costs memory proportional to its deltas, not its models.
enum ChainStep {
    /// The batch changes nothing (every id already gone, nothing
    /// appended, no retention bite) — acknowledged in chain order, after
    /// the group fsync, because its resolution assumed the preceding
    /// batches applied.
    Noop {
        /// Epoch to report: the predicted committed epoch at this point.
        epoch: u64,
        /// Per request `(requested, applied = 0 by definition)`.
        acks: Vec<(usize, usize)>,
    },
    /// A real delta to apply and commit.
    Apply {
        /// Removal row indices into the batch's pre-state, sorted.
        rows: Vec<usize>,
        /// Appended rows, flat `(width, features, labels)`.
        added: Option<(usize, Vec<f64>, Vec<f64>)>,
        /// The method the cost model chose at resolve time.
        method: Method,
        /// Retention-expired row count (already folded into `rows`).
        expired: usize,
        /// Pre-batch sample count (cost-model observation denominator).
        pre_samples: usize,
        /// The LSN the batch's WAL record got, if durable.
        wal_lsn: Option<u64>,
        /// Per request `(requested, applied)` against the pre-state.
        acks: Vec<(usize, usize)>,
    },
}

/// Applies a *chain* of ready batches for one session end to end. A
/// chain is the maximal run of same-session batches one planner pass
/// produced — always length 1 with coalescing on; with coalescing off a
/// drained backlog arrives as one chain of single-request batches. The
/// chain takes the session's apply gate once and pipelines the
/// durability boundary in three phases:
///
/// 1. **Resolve + append.** Each batch is resolved *speculatively*
///    against the predicted outcome of the previous one: id translation,
///    retention expiry, drift, and the method decision are pure
///    arithmetic over `{ids, next_id, epoch, removed_since_refit}` plus
///    the capture metadata, every input of which the commit path derives
///    deterministically — so the prediction is exact, not heuristic. The
///    batch's WAL frame is appended (unsynced) carrying the previous
///    record's LSN as `prev_lsn`.
/// 2. **One group fsync** covers every frame the chain appended (other
///    chains' frames may share it too — see [`GroupWal::sync_through`]).
/// 3. **Apply + commit + ack**, per batch in order: the engine call, the
///    registry commit, the periodic snapshot handoff to the snapshot
///    thread, and the replies — exactly the single-batch sequence.
///
/// Per batch the durability contract is unchanged — gate → resolve →
/// decide → append → fsync → apply → commit → ack — but k batches share
/// one fsync instead of paying k. If an apply fails mid-chain, every
/// *downstream* batch fails with it (their resolutions assumed it
/// applied) and recovery skips their WAL records the same way via the
/// `prev_lsn` dependency.
fn apply_chain(inner: &Inner, chain: Vec<ReadyBatch>) {
    let reply_all_err = |batch: &ReadyBatch, message: &str| {
        for request in &batch.requests {
            let _ = request
                .reply
                .send(Err(ServerError::BatchFailed(message.to_string())));
        }
    };
    let session_name = chain[0].session.clone();
    let slot: Arc<SessionSlot> = match inner.registry.get(&session_name) {
        Ok(slot) => slot,
        Err(err) => {
            // Session dropped between admission and batching.
            let message = err.to_string();
            for batch in &chain {
                reply_all_err(batch, &message);
            }
            return;
        }
    };

    // Exclusive grant first, *then* read the view: a batch folded while a
    // previous batch of the same session was in flight must see the
    // committed state, not the pre-batch snapshot.
    let _gate = slot.begin_apply();
    let view = slot.apply_view();
    let cost = inner.cost_model(&session_name);

    // --- Phase 1: speculative resolve + WAL append -----------------------
    let base_session = view.session;
    let mut spec_ids = view.ids;
    let mut spec_next_id = view.next_id;
    let mut spec_epoch = view.epoch;
    let mut spec_removed = view.removed_since_refit;
    let initial_samples = view.initial_samples;
    // The capture metadata the scheduler reads is constant across a
    // chain except for the sample count, which the speculation tracks.
    let mut base_snapshot: Option<CaptureSnapshot> = None;

    let mut steps: Vec<ChainStep> = Vec::with_capacity(chain.len());
    let mut last_lsn: Option<u64> = None;
    let mut last_seq: Option<u64> = None;
    let mut broken: Option<String> = None;

    for batch in &chain {
        // Translate stable ids → predicted row indices. The set keeps the
        // removal indices sorted and deduplicated against retention
        // expiry.
        let mut removal: BTreeSet<usize> = BTreeSet::new();
        for &id in &batch.union {
            if let Ok(ix) = spec_ids.binary_search(&id) {
                removal.insert(ix);
            }
        }
        let num_added = batch.num_added();

        // Resolve the retention window against the pre-batch id list:
        // expire the oldest pre-existing rows (lowest stable ids — the id
        // map is ascending) not already deleted, never same-batch
        // additions, clamped so at least one pre-existing row survives.
        let mut expired = 0usize;
        if let Some(keep) = batch.keep_last {
            let pre_survivors = spec_ids.len() - removal.len();
            let over = (pre_survivors + num_added).saturating_sub(keep as usize);
            let to_expire = over.min(pre_survivors.saturating_sub(1));
            let mut ix = 0;
            while expired < to_expire {
                if removal.insert(ix) {
                    expired += 1;
                }
                ix += 1;
            }
        }
        let rows: Vec<usize> = removal.into_iter().collect();

        let acks: Vec<(usize, usize)> = batch
            .requests
            .iter()
            .map(|request| {
                let distinct: BTreeSet<u64> = request.ids.iter().copied().collect();
                let applied = distinct
                    .iter()
                    .filter(|id| spec_ids.binary_search(id).is_ok())
                    .count();
                (distinct.len(), applied)
            })
            .collect();

        if rows.is_empty() && num_added == 0 {
            steps.push(ChainStep::Noop {
                epoch: spec_epoch,
                acks,
            });
            continue;
        }

        let snapshot = {
            let mut snapshot = base_snapshot
                .get_or_insert_with(|| base_session.capture_snapshot())
                .clone();
            snapshot.num_samples = spec_ids.len();
            snapshot
        };
        let drift_after = if initial_samples == 0 {
            0.0
        } else {
            (spec_removed + rows.len()) as f64 / initial_samples as f64
        };
        let method = match &cost {
            Some(model) => model
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .decide_delta(&snapshot, rows.len(), num_added, drift_after),
            None => Method::Retrain,
        };
        let added_flat = concat_added(batch);

        // Durability boundary: the resolved removal set (stable ids after
        // retention expiry) and the chosen method — both timing-dependent
        // and hence recorded rather than re-derived — go to the WAL now;
        // the shared fsync follows in phase 2, before anything applies or
        // acks.
        let mut wal_lsn = None;
        if let Some(durability) = &inner.durability {
            let mut record = WalRecord {
                lsn: 0,
                prev_lsn: last_lsn,
                session: session_name.clone(),
                method,
                removed_ids: rows.iter().map(|&ix| spec_ids[ix]).collect(),
                keep_last: batch.keep_last,
                added: added_flat.clone(),
            };
            match durability.wal.append(&mut record) {
                Ok(seq) => {
                    wal_lsn = Some(record.lsn);
                    last_lsn = Some(record.lsn);
                    last_seq = Some(seq);
                }
                Err(err) => {
                    // The log is broken: earlier appends can never fsync,
                    // later resolutions would depend on this one. Fail
                    // the whole chain below.
                    broken = Some(err.to_string());
                    break;
                }
            }
        }

        // Predict the commit: survivors keep their ids, appended rows
        // take fresh ids, epoch bumps, drift accumulates (or resets on a
        // retrain) — the exact arithmetic `SessionSlot::commit` runs.
        let pre_samples = spec_ids.len();
        let refit = method == Method::Retrain;
        let mut survivors = Vec::with_capacity(spec_ids.len() - rows.len());
        let mut next_removed = 0;
        for (ix, &id) in spec_ids.iter().enumerate() {
            if next_removed < rows.len() && rows[next_removed] == ix {
                next_removed += 1;
            } else {
                survivors.push(id);
            }
        }
        spec_ids = survivors;
        for _ in 0..num_added {
            spec_ids.push(spec_next_id);
            spec_next_id += 1;
        }
        spec_epoch += 1;
        spec_removed = if refit { 0 } else { spec_removed + rows.len() };

        steps.push(ChainStep::Apply {
            rows,
            added: added_flat,
            method,
            expired,
            pre_samples,
            wal_lsn,
            acks,
        });
    }

    // --- Phase 2: one group fsync for the whole chain --------------------
    if broken.is_none() {
        if let (Some(durability), Some(seq)) = (&inner.durability, last_seq) {
            if let Err(err) = durability.wal.sync_through(seq) {
                broken = Some(err.to_string());
            }
        }
    }
    if let Some(message) = broken {
        // Nothing was acknowledged; the session state is untouched.
        let message = format!("durability failure: {message}");
        for batch in &chain {
            reply_all_err(batch, &message);
        }
        return;
    }

    // --- Phase 3: apply + commit + ack, in chain order -------------------
    let mut current_session = base_session;
    let mut chain_failed: Option<String> = None;
    for (step, batch) in steps.into_iter().zip(chain.iter()) {
        if let Some(message) = &chain_failed {
            // This batch's resolution assumed the failed batch applied —
            // even a "nothing to do" resolution — so it fails with it.
            reply_all_err(batch, message);
            continue;
        }
        match step {
            ChainStep::Noop { epoch, acks } => {
                for (request, (requested, _)) in batch.requests.iter().zip(acks) {
                    let _ = request.reply.send(Ok(BatchReply {
                        requested,
                        applied: 0,
                        stale: requested,
                        added: 0,
                        expired: 0,
                        batch_rows: 0,
                        method: None,
                        seconds: 0.0,
                        epoch,
                    }));
                }
            }
            ChainStep::Apply {
                rows,
                added,
                method,
                expired,
                pre_samples,
                wal_lsn,
                acks,
            } => {
                let num_added = batch.num_added();
                // The one engine call the batch reduces to: the union
                // delta, additions concatenated in FIFO admission order.
                let delta = Delta {
                    removed: rows.clone(),
                    added: added
                        .map(|(width, features, labels)| {
                            dense_added(current_session.task(), width, features, labels)
                        })
                        .map(DeltaRows::Dense),
                };
                let outcome =
                    run_pinned(&inner.cfg, || current_session.apply_delta(method, &delta));
                let chained = match outcome {
                    Ok(chained) => chained,
                    Err(err) => {
                        // The pre-batch state stays committed; everything
                        // downstream resolved against a state that will
                        // now never exist.
                        let message = format!(
                            "{method:?} removing {} and adding {num_added} rows: {err}",
                            rows.len()
                        );
                        reply_all_err(batch, &message);
                        chain_failed =
                            Some(format!("a preceding batch of the chain failed: {message}"));
                        continue;
                    }
                };
                let seconds = chained.outcome.duration.as_secs_f64();
                // A retrain's successor carries the measured offline
                // phase of its refit (training + provenance capture) —
                // feed it to the flat retrain term so scheduling tracks
                // the real eigensolver.
                let refit = method == Method::Retrain;
                let refit_offline =
                    refit.then(|| chained.session.capture_snapshot().training_seconds);
                // Survivors from the slot's *live* ids (equal to the
                // phase-1 prediction — the chain holds the gate, so only
                // our own commits advanced the slot).
                let pre_ids = slot.apply_view().ids;
                let mut survivors = Vec::with_capacity(pre_ids.len() - rows.len());
                let mut next_removed = 0;
                for (ix, &id) in pre_ids.iter().enumerate() {
                    if next_removed < rows.len() && rows[next_removed] == ix {
                        next_removed += 1;
                    } else {
                        survivors.push(id);
                    }
                }
                fail_point("apply-before-commit");
                let successor = Arc::new(chained.session);
                current_session = Arc::clone(&successor);
                let epoch = slot.commit(successor, survivors, rows.len(), num_added, refit);
                // Periodic snapshot: a copy-on-write handoff of the
                // committed state to the snapshot thread — the Arc-swap
                // commit already produced an immutable post-batch model,
                // so the applier only enqueues and moves on. Best-effort:
                // the WAL already makes the batch durable, a failed
                // snapshot only lengthens the next redo.
                if let (Some(durability), Some(lsn)) = (&inner.durability, wal_lsn) {
                    if epoch.is_multiple_of(durability.snapshot_every) {
                        fail_point("snapshot-handoff");
                        let job = SnapshotJob {
                            session: session_name.clone(),
                            covered_lsn: lsn + 1,
                            state: slot.durable_state(),
                            reply: None,
                        };
                        if let Err(err) = durability.snapshots.enqueue(job) {
                            eprintln!(
                                "scheduling snapshot of {session_name} at epoch {epoch}: {err}"
                            );
                        }
                    }
                }
                fail_point("before-ack");
                if let Some(model) = &cost {
                    let mut model = model.lock().unwrap_or_else(PoisonError::into_inner);
                    model.observe_delta(method, rows.len(), num_added, pre_samples, seconds);
                    if let Some(offline) = refit_offline {
                        model.observe_offline(offline);
                    }
                }
                for (request, (requested, applied)) in batch.requests.iter().zip(acks) {
                    let _ = request.reply.send(Ok(BatchReply {
                        requested,
                        applied,
                        stale: requested - applied,
                        added: request.num_added(),
                        expired,
                        batch_rows: rows.len(),
                        method: Some(method),
                        seconds,
                        epoch,
                    }));
                }
            }
        }
    }
}

fn applier_loop(inner: &Arc<Inner>) {
    loop {
        let ready: Vec<ReadyBatch> = {
            let mut planner = inner.planner();
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    planner.flush_all();
                }
                let ready = planner.take_ready(Instant::now(), &inner.cfg.planner);
                if !ready.is_empty() {
                    break ready;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return; // drained
                }
                let wait = match planner.next_deadline(&inner.cfg.planner) {
                    Some(deadline) => {
                        let until = deadline.saturating_duration_since(Instant::now());
                        if until.is_zero() {
                            continue; // deadline passed while we were busy
                        }
                        until
                    }
                    // Idle: sleep until poked (bounded, defensively).
                    None => Duration::from_millis(100),
                };
                planner = inner
                    .work
                    .wait_timeout(planner, wait)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        // Planner lock released: applying never blocks admission.
        // Same-session batches arrive adjacent (take_ready emits in
        // session order), so maximal same-session runs become chains that
        // share one group fsync; distinct sessions fan out over the pool.
        let mut chains: Vec<Vec<ReadyBatch>> = Vec::new();
        for batch in ready {
            match chains.last_mut() {
                Some(chain) if chain[0].session == batch.session => chain.push(batch),
                _ => chains.push(vec![batch]),
            }
        }
        if chains.len() == 1 {
            for chain in chains {
                apply_chain(inner, chain);
            }
        } else {
            par::run_tasks(
                chains
                    .into_iter()
                    .map(|chain| {
                        let inner = Arc::clone(inner);
                        move || apply_chain(&inner, chain)
                    })
                    .collect(),
            );
        }
    }
}

/// The deletion service. See the module docs for the thread model.
pub struct Server {
    inner: Arc<Inner>,
    applier: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Starts a server (one applier thread) with the given configuration.
    /// When durability is configured, starting **is** recovering: the
    /// durability directory's snapshots are loaded, the WAL suffix is
    /// redone through the normal `apply_delta` path under the configured
    /// thread/SIMD pin, and every previously registered session comes
    /// back bitwise identical to its last acknowledged state
    /// ([`Server::recovery_report`] says what happened).
    ///
    /// # Errors
    /// [`ServerError::Durability`] on genuine I/O failure in the
    /// durability directory. Corrupt WAL tails or snapshot files are
    /// *not* errors — they are skipped and reported. A server without
    /// durability never fails to start.
    pub fn start(cfg: ServerConfig) -> Result<Self> {
        let mut durability = None;
        let mut recovery = None;
        let mut restored = Vec::new();
        if let Some(dur_cfg) = &cfg.durability {
            let recovered = recover(&cfg, &dur_cfg.dir)?;
            restored = recovered.sessions;
            recovery = Some(recovered.report);
            let wal = Arc::new(GroupWal::new(recovered.wal, dur_cfg.group));
            let snapshots = SnapshotService::start(
                dur_cfg.dir.clone(),
                Arc::clone(&wal),
                dur_cfg.checkpoint_bytes.max(1),
            );
            durability = Some(Durability {
                snapshot_every: dur_cfg.snapshot_every.max(1),
                wal,
                snapshots,
            });
        }
        let scheduler = cfg.scheduler;
        let inner = Arc::new(Inner {
            registry: SessionRegistry::new(),
            cfg,
            planner: Mutex::new(PlannerState::default()),
            work: Condvar::new(),
            cost: Mutex::new(HashMap::new()),
            durability,
            recovery,
            shutdown: AtomicBool::new(false),
        });
        for (name, state) in restored {
            inner.registry.register_restored(&name, state)?;
            inner
                .cost
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(name, Arc::new(Mutex::new(CostModel::new(scheduler))));
        }
        let applier = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("priu-server-applier".to_string())
                .spawn(move || applier_loop(&inner))
                .expect("spawn applier thread")
        };
        Ok(Self {
            inner,
            applier: Mutex::new(Some(applier)),
        })
    }

    /// What restart recovery loaded, redid, and skipped. `None` on a
    /// server without durability.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.inner.recovery.as_ref()
    }

    /// Registers a fitted session under `name`; its rows get stable ids
    /// `0..n`. On a durable server this also writes the session's
    /// baseline snapshot (covering the current WAL position) so every
    /// later WAL record has a redo base — the registration is not
    /// acknowledged until the snapshot is on disk.
    ///
    /// # Errors
    /// [`ServerError::SessionExists`], [`ServerError::ShuttingDown`],
    /// [`ServerError::Durability`] if the baseline snapshot cannot be
    /// written (the session is not registered in that case).
    pub fn register_session(&self, name: &str, session: Session) -> Result<()> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServerError::ShuttingDown);
        }
        let slot = self.inner.registry.register(name, session)?;
        if let Some(durability) = &self.inner.durability {
            // The covered LSN is read under the WAL lock so no batch can
            // sneak a record for this session below it (it can't anyway —
            // the session just appeared — but the invariant is free). The
            // baseline rides the snapshot thread like every other
            // snapshot, blocking until it is durable.
            let covered_lsn = durability.wal.next_lsn();
            let state = slot.durable_state();
            if let Err(err) = durability
                .snapshots
                .write_baseline(name, covered_lsn, state)
            {
                let _ = self.inner.registry.remove(name);
                return Err(err);
            }
        }
        self.inner
            .cost
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(
                name.to_string(),
                Arc::new(Mutex::new(CostModel::new(self.inner.cfg.scheduler))),
            );
        Ok(())
    }

    /// Predicts on the named session's current snapshot. Never blocks on
    /// an in-flight deletion batch.
    ///
    /// # Errors
    /// [`ServerError::UnknownSession`], [`ServerError::FeatureMismatch`].
    pub fn predict(&self, session: &str, features: &[f64]) -> Result<Prediction> {
        self.inner.predict(session, features)
    }

    /// Enqueues a deletion of the given stable row ids; resolves when the
    /// coalesced batch containing it commits.
    ///
    /// # Errors
    /// [`ServerError::UnknownSession`], [`ServerError::ShuttingDown`].
    pub fn delete(&self, session: &str, ids: &[u64]) -> Result<DeleteTicket> {
        self.inner.delete(session, ids.to_vec())
    }

    /// Enqueues rows to append to the named session; resolves when the
    /// coalesced batch containing it commits. Appended rows get fresh
    /// stable ids, never reusing a retired id.
    ///
    /// # Errors
    /// [`ServerError::UnknownSession`], [`ServerError::ShuttingDown`],
    /// [`ServerError::InvalidRows`] / [`ServerError::FeatureMismatch`]
    /// when the rows don't fit the session.
    pub fn add(&self, session: &str, rows: AddedRows) -> Result<DeleteTicket> {
        self.inner.change(session, Vec::new(), Some(rows), None)
    }

    /// Enqueues a sliding-window tick: append `rows` (possibly none) and
    /// retain at most `keep_last` rows after the batch commits, expiring
    /// the oldest pre-existing rows first. See the module docs for the
    /// exact retention semantics.
    ///
    /// # Errors
    /// Same as [`Server::add`].
    pub fn tick(
        &self,
        session: &str,
        rows: Option<AddedRows>,
        keep_last: u64,
    ) -> Result<DeleteTicket> {
        self.inner
            .change(session, Vec::new(), rows, Some(keep_last))
    }

    /// Forces the named session's pending deletions into a batch now.
    ///
    /// # Errors
    /// [`ServerError::UnknownSession`].
    pub fn flush(&self, session: &str) -> Result<()> {
        self.inner.flush(session)
    }

    /// The named session's bookkeeping.
    ///
    /// # Errors
    /// [`ServerError::UnknownSession`].
    pub fn stats(&self, session: &str) -> Result<SessionStats> {
        self.inner.stats(session)
    }

    /// The named session's current immutable snapshot and its epoch.
    ///
    /// # Errors
    /// [`ServerError::UnknownSession`].
    pub fn model_snapshot(&self, session: &str) -> Result<(Arc<Session>, u64)> {
        Ok(self.inner.registry.get(session)?.snapshot())
    }

    /// Registered session names, sorted.
    pub fn session_names(&self) -> Vec<String> {
        self.inner.registry.names()
    }

    /// Serves one connection over any `Read`/`Write` transport pair (a
    /// socket, or the in-memory [`duplex`]): spawns the dedicated
    /// protocol reader thread plus a responder that resolves deletion
    /// tickets in admission order. Predict/flush/stats answer inline;
    /// responses carry the request's correlation id and may arrive out of
    /// order relative to deletions.
    ///
    /// [`duplex`]: crate::protocol::duplex
    pub fn serve_connection<R, W>(&self, reader: R, writer: W) -> ConnectionHandle
    where
        R: Read + Send + 'static,
        W: Write + Send + 'static,
    {
        let inner = Arc::clone(&self.inner);
        let handle = thread::Builder::new()
            .name("priu-server-conn".to_string())
            .spawn(move || connection_loop(&inner, reader, writer))
            .expect("spawn connection thread");
        ConnectionHandle { handle }
    }

    /// Cumulative durability counters — fsyncs, frames, bytes appended,
    /// largest group one fsync covered, checkpoints completed. `None` on
    /// a server without durability. Mean group size is
    /// `frames / fsyncs`.
    pub fn durability_stats(&self) -> Option<WalStats> {
        self.inner.durability.as_ref().map(|d| d.wal.stats())
    }

    /// Blocks until every background snapshot scheduled so far has been
    /// written (and any WAL checkpoint it triggered has completed) — the
    /// drain barrier tests and benchmarks use before inspecting the
    /// durability directory. No-op without durability.
    pub fn drain_durability(&self) {
        if let Some(durability) = &self.inner.durability {
            durability.snapshots.drain();
        }
    }

    /// Shuts the server down: rejects new deletions, drains every pending
    /// batch (tickets resolve), joins the applier, then drains and stops
    /// the snapshot thread — so a clean shutdown never abandons a
    /// scheduled snapshot. Idempotent; safe from multiple threads.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.work.notify_all();
        let handle = self
            .applier
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        // The applier is gone, so no new snapshot jobs can appear; the
        // service drains its queue before exiting.
        if let Some(durability) = &self.inner.durability {
            durability.snapshots.stop();
        }
        // Anything admitted after the drain decision fails typed.
        self.inner.planner().fail_all();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Which wire response a resolved ticket maps to: `Delete` requests
/// answer [`Response::Deleted`], `Add`/`Tick` requests answer
/// [`Response::Applied`].
#[derive(Debug, Clone, Copy)]
enum TicketKind {
    Delete,
    Change,
}

/// Join handle of a served connection; resolves when the client closes
/// its write half (EOF) or the transport fails.
pub struct ConnectionHandle {
    handle: JoinHandle<()>,
}

impl ConnectionHandle {
    /// Waits for the connection loop (and its reader/responder threads)
    /// to finish.
    pub fn join(self) {
        let _ = self.handle.join();
    }
}

fn connection_loop<R, W>(inner: &Arc<Inner>, reader: R, writer: W)
where
    R: Read + Send + 'static,
    W: Write + Send + 'static,
{
    let (requests, reader_thread) = spawn_frame_reader(reader, decode_request);
    let writer = Arc::new(Mutex::new(writer));

    // Change tickets resolve long after admission; a responder thread
    // waits them out in admission order so the service loop stays free.
    // The kind marker picks the response shape: deletions answer
    // `Deleted`, add/tick requests answer `Applied`.
    let (ticket_tx, ticket_rx) = channel::<(u64, TicketKind, DeleteTicket)>();
    let responder = {
        let writer = Arc::clone(&writer);
        thread::Builder::new()
            .name("priu-server-responder".to_string())
            .spawn(move || {
                for (id, kind, ticket) in ticket_rx {
                    let response = match ticket.wait() {
                        Ok(reply) => match kind {
                            TicketKind::Delete => Response::Deleted {
                                requested: reply.requested as u64,
                                applied: reply.applied as u64,
                                stale: reply.stale as u64,
                                batch_rows: reply.batch_rows as u64,
                                method: reply.method,
                                seconds: reply.seconds,
                                epoch: reply.epoch,
                            },
                            TicketKind::Change => Response::Applied {
                                added: reply.added as u64,
                                expired: reply.expired as u64,
                                batch_rows: reply.batch_rows as u64,
                                method: reply.method,
                                seconds: reply.seconds,
                                epoch: reply.epoch,
                            },
                        },
                        Err(err) => Response::Error {
                            message: err.to_string(),
                        },
                    };
                    if send_response(&writer, id, response).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn responder thread")
    };

    for incoming in &requests {
        match incoming {
            Ok(envelope) => {
                let id = envelope.id;
                let response = match envelope.request {
                    Request::Predict { session, features } => {
                        match inner.predict(&session, &features) {
                            Ok(p) => Response::Predicted {
                                value: p.value,
                                class: p.class.map(|c| c as u64),
                                epoch: p.epoch,
                            },
                            Err(err) => Response::Error {
                                message: err.to_string(),
                            },
                        }
                    }
                    Request::Delete { session, ids } => match inner.delete(&session, ids) {
                        Ok(ticket) => {
                            let _ = ticket_tx.send((id, TicketKind::Delete, ticket));
                            continue; // answered by the responder later
                        }
                        Err(err) => Response::Error {
                            message: err.to_string(),
                        },
                    },
                    Request::Add {
                        session,
                        num_features,
                        features,
                        labels,
                    } => {
                        let rows = AddedRows {
                            num_features: num_features as usize,
                            features,
                            labels,
                        };
                        match inner.change(&session, Vec::new(), Some(rows), None) {
                            Ok(ticket) => {
                                let _ = ticket_tx.send((id, TicketKind::Change, ticket));
                                continue;
                            }
                            Err(err) => Response::Error {
                                message: err.to_string(),
                            },
                        }
                    }
                    Request::Tick {
                        session,
                        num_features,
                        features,
                        labels,
                        keep_last,
                    } => {
                        let rows = AddedRows {
                            num_features: num_features as usize,
                            features,
                            labels,
                        };
                        match inner.change(&session, Vec::new(), Some(rows), Some(keep_last)) {
                            Ok(ticket) => {
                                let _ = ticket_tx.send((id, TicketKind::Change, ticket));
                                continue;
                            }
                            Err(err) => Response::Error {
                                message: err.to_string(),
                            },
                        }
                    }
                    Request::Flush { session } => match inner.flush(&session) {
                        Ok(()) => Response::Flushed,
                        Err(err) => Response::Error {
                            message: err.to_string(),
                        },
                    },
                    Request::Recovery => match &inner.recovery {
                        Some(report) => Response::RecoveryStatus {
                            durable: true,
                            wal_records: report.wal_records,
                            wal_tail: report.wal_tail.clone(),
                            snapshot_skips: report.snapshot_skips.len() as u64,
                            orphan_records: report.orphan_records,
                            sessions: report
                                .sessions
                                .iter()
                                .map(|s| RecoverySessionStatus {
                                    session: s.session.clone(),
                                    redone: s.redone,
                                    skipped: s.skipped.len() as u64,
                                    final_epoch: s.final_epoch,
                                })
                                .collect(),
                        },
                        None => Response::RecoveryStatus {
                            durable: false,
                            wal_records: 0,
                            wal_tail: None,
                            snapshot_skips: 0,
                            orphan_records: 0,
                            sessions: Vec::new(),
                        },
                    },
                    Request::DurabilityStats => match &inner.durability {
                        Some(durability) => {
                            let stats = durability.wal.stats();
                            Response::DurabilityStats {
                                durable: true,
                                fsyncs: stats.fsyncs,
                                wal_frames: stats.frames,
                                wal_bytes: stats.bytes,
                                max_group: stats.max_group,
                                checkpoints: stats.checkpoints,
                            }
                        }
                        None => Response::DurabilityStats {
                            durable: false,
                            fsyncs: 0,
                            wal_frames: 0,
                            wal_bytes: 0,
                            max_group: 0,
                            checkpoints: 0,
                        },
                    },
                    Request::Stats { session } => match inner.stats(&session) {
                        Ok(stats) => Response::Stats {
                            epoch: stats.epoch,
                            num_samples: stats.num_samples as u64,
                            num_features: stats.num_features as u64,
                            drift: stats.drift,
                            pending: stats.pending as u64,
                            decisions: stats.decisions,
                        },
                        Err(err) => Response::Error {
                            message: err.to_string(),
                        },
                    },
                };
                if send_response(&writer, id, response).is_err() {
                    break;
                }
            }
            Err(err) => {
                // Undecodable stream: report once (id 0) and drop the
                // connection.
                let _ = send_response(
                    &writer,
                    0,
                    Response::Error {
                        message: ServerError::Protocol(err).to_string(),
                    },
                );
                break;
            }
        }
    }
    drop(ticket_tx); // responder drains outstanding tickets, then exits
    let _ = responder.join();
    let _ = reader_thread.join();
}

fn send_response<W: Write>(writer: &Mutex<W>, id: u64, response: Response) -> std::io::Result<()> {
    let payload = encode_response(&ResponseEnvelope { id, response });
    let mut writer = writer.lock().unwrap_or_else(PoisonError::into_inner);
    write_frame(&mut *writer, &payload)
}
