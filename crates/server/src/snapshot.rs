//! Durable session snapshots.
//!
//! A snapshot is the full durable state of one session slot — engine
//! state, stable-id map, fresh-id counter, epoch, drift counters —
//! serialized bit-exactly, plus the WAL LSN it *covers*: every WAL record
//! with `lsn < covered_lsn` is already folded into the snapshot, so
//! recovery loads the newest valid snapshot and redoes only the WAL
//! suffix.
//!
//! # File format
//!
//! ```text
//! <dir>/snapshots/<hex(session name)>-<epoch, 20 digits>.snap
//!
//! [8  magic "PRIUSNP1"]
//! [u32 payload len][u32 crc32(payload)]
//! payload = u64 covered_lsn, u64 epoch, u64 next_id,
//!           u64 initial_samples, u64 removed_since_refit,
//!           u64 id count + that many u64 stable ids,
//!           u64 session blob len + Session::to_snapshot_bytes
//! ```
//!
//! Session names contain `/` (tenant × model), so the filename carries the
//! name hex-encoded; the zero-padded epoch makes lexicographic order equal
//! epoch order.
//!
//! # Atomicity
//!
//! A snapshot is written to `<final>.snap.tmp`, fsync'd, renamed over the
//! final name, and the directory fsync'd — a crash at any point (the
//! `snapshot-mid-write` / `snapshot-before-rename` / `snapshot-after-rename`
//! fail points) leaves either the old snapshot set or the old set plus a
//! complete new file. Loaders ignore `.tmp` leftovers and skip files that
//! fail the magic, CRC, or decode — a corrupt snapshot falls back to the
//! previous epoch, never panics.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};

use priu_core::snapshot::{SnapshotReader, SnapshotWriter};
use priu_core::{DeletionEngine, Session};

use crate::error::{Result, ServerError};
use crate::failpoint::fail_point;
use crate::registry::DurableState;
use crate::wal::{crc32, read_file, sync_parent_dir, GroupWal};

/// Identifies a file as a PrIU session snapshot, version 1.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"PRIUSNP1";

/// A snapshot loaded back from disk.
#[derive(Debug)]
pub(crate) struct LoadedSnapshot {
    /// Every WAL record with `lsn < covered_lsn` is folded in already.
    pub covered_lsn: u64,
    /// The slot state to restore.
    pub state: DurableState,
}

/// A snapshot file that existed but could not be used — recovery reports
/// these and falls back to an older epoch.
#[derive(Debug, Clone)]
pub struct SkippedSnapshot {
    /// The unusable file.
    pub path: PathBuf,
    /// Why it was skipped.
    pub reason: String,
}

// --- naming ---------------------------------------------------------------

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

/// The directory holding a store's snapshot files.
pub fn snapshot_dir(dir: &Path) -> PathBuf {
    dir.join("snapshots")
}

fn snapshot_path(dir: &Path, session: &str, epoch: u64) -> PathBuf {
    snapshot_dir(dir).join(format!(
        "{}-{epoch:020}.snap",
        hex_encode(session.as_bytes())
    ))
}

/// Splits a snapshot filename back into `(session name, epoch)`; `None`
/// for files that are not well-formed snapshot names (e.g. `.tmp`
/// leftovers).
fn parse_snapshot_name(file_name: &str) -> Option<(String, u64)> {
    let stem = file_name.strip_suffix(".snap")?;
    let (hex_name, epoch) = stem.rsplit_once('-')?;
    let epoch = epoch.parse().ok()?;
    let name = String::from_utf8(hex_decode(hex_name)?).ok()?;
    Some((name, epoch))
}

// --- writing --------------------------------------------------------------

fn encode_snapshot(covered_lsn: u64, state: &DurableState) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.u64(covered_lsn);
    w.u64(state.epoch);
    w.u64(state.next_id);
    w.usize(state.initial_samples);
    w.usize(state.removed_since_refit);
    w.usize(state.ids.len());
    for &id in &state.ids {
        w.u64(id);
    }
    let blob = state.session.to_snapshot_bytes();
    w.usize(blob.len());
    let mut bytes = w.into_bytes();
    bytes.extend_from_slice(&blob);
    bytes
}

fn decode_snapshot(payload: &[u8]) -> std::result::Result<LoadedSnapshot, String> {
    let fail = |e: priu_core::CoreError| e.to_string();
    let mut r = SnapshotReader::new(payload);
    let covered_lsn = r.u64("covered_lsn").map_err(fail)?;
    let epoch = r.u64("epoch").map_err(fail)?;
    let next_id = r.u64("next_id").map_err(fail)?;
    let initial_samples = r.usize("initial_samples").map_err(fail)?;
    let removed_since_refit = r.usize("removed_since_refit").map_err(fail)?;
    let n = r.len(8, "stable ids").map_err(fail)?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(r.u64("stable id").map_err(fail)?);
    }
    let blob_len = r.usize("session blob length").map_err(fail)?;
    if blob_len != r.remaining() {
        return Err(format!(
            "session blob length {blob_len} does not match remaining {} bytes",
            r.remaining()
        ));
    }
    let blob = r.take(blob_len, "session blob").map_err(fail)?;
    let session = Session::from_snapshot_bytes(blob).map_err(fail)?;
    if let Some(&max) = ids.last() {
        if max >= next_id {
            return Err(format!("stable id {max} is not below next_id {next_id}"));
        }
    }
    if ids.len() != session.num_samples() {
        return Err(format!(
            "{} stable ids for a session of {} rows",
            ids.len(),
            session.num_samples()
        ));
    }
    Ok(LoadedSnapshot {
        covered_lsn,
        state: DurableState {
            session: Arc::new(session),
            ids,
            next_id,
            epoch,
            initial_samples,
            removed_since_refit,
        },
    })
}

/// Writes one session snapshot atomically (temp file → fsync → rename →
/// directory fsync) and prunes superseded epochs. Crash points:
/// `snapshot-mid-write`, `snapshot-before-rename`, `snapshot-after-rename`.
///
/// # Errors
/// [`ServerError::Durability`] on I/O failure; the previous snapshot set
/// is untouched in that case.
pub(crate) fn write_snapshot(
    dir: &Path,
    session: &str,
    covered_lsn: u64,
    state: &DurableState,
) -> Result<PathBuf> {
    let snap_dir = snapshot_dir(dir);
    std::fs::create_dir_all(&snap_dir)
        .map_err(|e| ServerError::Durability(format!("creating {}: {e}", snap_dir.display())))?;
    let payload = encode_snapshot(covered_lsn, state);
    let mut bytes = Vec::with_capacity(16 + payload.len());
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let final_path = snapshot_path(dir, session, state.epoch);
    let tmp_path = final_path.with_extension("snap.tmp");
    let io = |what: &str, p: &Path, e: std::io::Error| {
        ServerError::Durability(format!("{what} {}: {e}", p.display()))
    };
    {
        let mut tmp = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&tmp_path)
            .map_err(|e| io("creating", &tmp_path, e))?;
        // Two half-writes with a crash point between them, so the torture
        // suite can leave a genuinely torn temp file behind.
        let mid = bytes.len() / 2;
        tmp.write_all(&bytes[..mid])
            .map_err(|e| io("writing", &tmp_path, e))?;
        fail_point("snapshot-mid-write");
        tmp.write_all(&bytes[mid..])
            .map_err(|e| io("writing", &tmp_path, e))?;
        tmp.sync_data().map_err(|e| io("syncing", &tmp_path, e))?;
    }
    fail_point("snapshot-before-rename");
    std::fs::rename(&tmp_path, &final_path)
        .map_err(|e| io("renaming into place", &final_path, e))?;
    fail_point("snapshot-after-rename");
    sync_parent_dir(&final_path)?;
    prune_old_snapshots(dir, session, state.epoch);
    Ok(final_path)
}

/// Removes snapshots of `session` older than the newest two epochs ≤
/// `latest_epoch`. Keeping one predecessor means a corrupt latest file
/// still has a fallback; best-effort (pruning failures are ignored — a
/// stale file only costs disk).
fn prune_old_snapshots(dir: &Path, session: &str, latest_epoch: u64) {
    let Ok(mut epochs) = list_epochs(dir, session) else {
        return;
    };
    epochs.retain(|&e| e <= latest_epoch);
    epochs.sort_unstable();
    if epochs.len() <= 2 {
        return;
    }
    for &epoch in &epochs[..epochs.len() - 2] {
        let _ = std::fs::remove_file(snapshot_path(dir, session, epoch));
    }
}

// --- loading --------------------------------------------------------------

fn list_epochs(dir: &Path, session: &str) -> Result<Vec<u64>> {
    let snap_dir = snapshot_dir(dir);
    let entries = match std::fs::read_dir(&snap_dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(ServerError::Durability(format!(
                "listing {}: {e}",
                snap_dir.display()
            )))
        }
    };
    let mut epochs = Vec::new();
    for entry in entries {
        let entry = entry
            .map_err(|e| ServerError::Durability(format!("listing {}: {e}", snap_dir.display())))?;
        if let Some((name, epoch)) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            if name == session {
                epochs.push(epoch);
            }
        }
    }
    Ok(epochs)
}

/// Every session that has at least one snapshot file, sorted — the set of
/// sessions recovery restores.
pub(crate) fn list_sessions(dir: &Path) -> Result<Vec<String>> {
    let snap_dir = snapshot_dir(dir);
    let entries = match std::fs::read_dir(&snap_dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(ServerError::Durability(format!(
                "listing {}: {e}",
                snap_dir.display()
            )))
        }
    };
    let mut names = Vec::new();
    for entry in entries {
        let entry = entry
            .map_err(|e| ServerError::Durability(format!("listing {}: {e}", snap_dir.display())))?;
        if let Some((name, _)) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    names.sort();
    Ok(names)
}

fn load_snapshot_file(path: &Path) -> Result<std::result::Result<LoadedSnapshot, String>> {
    let Some(bytes) = read_file(path)? else {
        return Ok(Err("file vanished while loading".to_string()));
    };
    if bytes.len() < 16 {
        return Ok(Err(format!(
            "{} bytes is too short for a header",
            bytes.len()
        )));
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Ok(Err("bad magic".to_string()));
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if bytes.len() - 16 != len {
        return Ok(Err(format!(
            "header claims {len} payload bytes, file has {}",
            bytes.len() - 16
        )));
    }
    let payload = &bytes[16..];
    if crc32(payload) != crc {
        return Ok(Err("checksum mismatch".to_string()));
    }
    Ok(decode_snapshot(payload))
}

/// Loads the newest usable snapshot of `session`, skipping (and
/// reporting) corrupt epochs. `Ok((None, skips))` means no usable
/// snapshot exists.
///
/// # Errors
/// Only genuine I/O failures; corruption is a skip, not an error.
pub(crate) fn load_latest(
    dir: &Path,
    session: &str,
) -> Result<(Option<LoadedSnapshot>, Vec<SkippedSnapshot>)> {
    let mut epochs = list_epochs(dir, session)?;
    epochs.sort_unstable();
    let mut skips = Vec::new();
    for &epoch in epochs.iter().rev() {
        let path = snapshot_path(dir, session, epoch);
        match load_snapshot_file(&path)? {
            Ok(snapshot) => return Ok((Some(snapshot), skips)),
            Err(reason) => skips.push(SkippedSnapshot { path, reason }),
        }
    }
    Ok((None, skips))
}

// --- coverage floors (checkpoint frontier) --------------------------------

/// The `covered_lsn` of one snapshot file, if the file is fully valid —
/// the light parse the checkpoint frontier uses: magic, length, CRC, then
/// the first payload field. No session decode; a file that passes its CRC
/// has a trustworthy `covered_lsn`.
fn snapshot_floor(path: &Path) -> Option<u64> {
    let bytes = read_file(path).ok()??;
    if bytes.len() < 24 || &bytes[..8] != SNAPSHOT_MAGIC {
        return None;
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if bytes.len() - 16 != len || crc32(&bytes[16..]) != crc {
        return None;
    }
    Some(u64::from_le_bytes(
        bytes[16..24].try_into().expect("8 bytes"),
    ))
}

/// The per-session WAL frontier implied by the durable snapshot set: for
/// each session, the minimum `covered_lsn` over **every** valid retained
/// epoch — not just the newest — so a checkpoint never truncates a record
/// the older fallback epoch would still need if the newest file turns out
/// corrupt at recovery. Sessions with no valid file are omitted; the
/// checkpoint treats them as floor 0 and retains all their records.
///
/// # Errors
/// Only directory-listing I/O failures; an unreadable or corrupt snapshot
/// file simply doesn't contribute a floor.
pub(crate) fn coverage_floors(dir: &Path) -> Result<Vec<(String, u64)>> {
    let mut floors: Vec<(String, u64)> = Vec::new();
    for session in list_sessions(dir)? {
        let floor = list_epochs(dir, &session)?
            .into_iter()
            .filter_map(|epoch| snapshot_floor(&snapshot_path(dir, &session, epoch)))
            .min();
        if let Some(floor) = floor {
            floors.push((session, floor));
        }
    }
    floors.sort();
    Ok(floors)
}

// --- background snapshot service ------------------------------------------

/// One queued snapshot: the copy-on-write handoff from the applier. The
/// committed `Arc<Session>` and the registry bookkeeping are immutable
/// once captured, so serialization proceeds on the snapshot thread with
/// no lock on the slot and no stall on the applier.
pub(crate) struct SnapshotJob {
    /// Session the snapshot belongs to.
    pub session: String,
    /// The WAL frontier the snapshot covers (`lsn + 1` of the batch that
    /// produced this state).
    pub covered_lsn: u64,
    /// The full durable state to serialize.
    pub state: DurableState,
    /// Registration baselines block on the write — the registration is
    /// not acknowledged until the baseline is durable. Periodic snapshots
    /// are fire-and-forget (`None`): the WAL already makes their batches
    /// durable, a failed write only lengthens the next redo.
    pub reply: Option<Sender<Result<PathBuf>>>,
}

struct ServiceState {
    jobs: VecDeque<SnapshotJob>,
    /// The worker is serializing a job it already popped.
    in_flight: bool,
    stop: bool,
}

/// The dedicated snapshot thread: drains a FIFO queue of
/// [`SnapshotJob`]s, writes each through the same temp/rename path the
/// inline writer used, and triggers a WAL checkpoint after each
/// successful write (newest durable snapshot set = newest truncation
/// frontier). FIFO with no superseding keeps the on-disk epoch history
/// identical to the inline writer's — recovery's corrupt-newest-epoch
/// fallback depends on the predecessor epoch actually existing.
pub(crate) struct SnapshotService {
    state: Mutex<ServiceState>,
    /// Wakes the worker (new job / stop) and drain waiters (job done).
    cv: Condvar,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl SnapshotService {
    /// Spawns the snapshot thread for the store at `dir`. After every
    /// successful snapshot the worker recomputes the coverage floors and
    /// runs [`GroupWal::checkpoint_if_due`] with `checkpoint_bytes` as
    /// the threshold.
    pub(crate) fn start(dir: PathBuf, wal: Arc<GroupWal>, checkpoint_bytes: u64) -> Arc<Self> {
        let service = Arc::new(Self {
            state: Mutex::new(ServiceState {
                jobs: VecDeque::new(),
                in_flight: false,
                stop: false,
            }),
            cv: Condvar::new(),
            worker: Mutex::new(None),
        });
        let worker = {
            let service = Arc::clone(&service);
            thread::Builder::new()
                .name("priu-server-snapshot".to_string())
                .spawn(move || service.worker_loop(&dir, &wal, checkpoint_bytes))
                .expect("spawn snapshot thread")
        };
        *service
            .worker
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(worker);
        service
    }

    fn lock(&self) -> MutexGuard<'_, ServiceState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn worker_loop(&self, dir: &Path, wal: &GroupWal, checkpoint_bytes: u64) {
        loop {
            let job = {
                let mut state = self.lock();
                loop {
                    // Pop before honoring stop: shutdown *drains* the
                    // queue, so an enqueued-then-acked batch never loses
                    // its scheduled snapshot to a clean exit.
                    if let Some(job) = state.jobs.pop_front() {
                        state.in_flight = true;
                        break Some(job);
                    }
                    if state.stop {
                        break None;
                    }
                    state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
            };
            let Some(job) = job else { return };

            let result = write_snapshot(dir, &job.session, job.covered_lsn, &job.state);
            let wrote = result.is_ok();
            match (job.reply, result) {
                (Some(reply), result) => {
                    let _ = reply.send(result);
                }
                (None, Err(err)) => {
                    eprintln!(
                        "snapshot of {} at epoch {} failed: {err}",
                        job.session, job.state.epoch
                    );
                }
                (None, Ok(_)) => {}
            }
            // The snapshot set just advanced: see whether the WAL has
            // accumulated enough to be worth compacting against it.
            if wrote {
                match coverage_floors(dir) {
                    Ok(floors) => {
                        if let Err(err) = wal.checkpoint_if_due(checkpoint_bytes, &floors) {
                            eprintln!("WAL checkpoint failed: {err}");
                        }
                    }
                    Err(err) => eprintln!("skipping WAL checkpoint: {err}"),
                }
            }

            let mut state = self.lock();
            state.in_flight = false;
            self.cv.notify_all();
        }
    }

    /// Hands a snapshot job to the worker.
    ///
    /// # Errors
    /// [`ServerError::ShuttingDown`] once [`SnapshotService::stop`] ran.
    pub(crate) fn enqueue(&self, job: SnapshotJob) -> Result<()> {
        let mut state = self.lock();
        if state.stop {
            return Err(ServerError::ShuttingDown);
        }
        state.jobs.push_back(job);
        self.cv.notify_all();
        Ok(())
    }

    /// Writes a registration baseline through the snapshot thread,
    /// blocking until it is durable — same code path as periodic
    /// snapshots, so there is exactly one writer ordering the epoch
    /// files.
    ///
    /// # Errors
    /// [`ServerError::Durability`] if the write failed (the caller then
    /// unregisters the session), [`ServerError::ShuttingDown`] if the
    /// service already stopped.
    pub(crate) fn write_baseline(
        &self,
        session: &str,
        covered_lsn: u64,
        state: DurableState,
    ) -> Result<PathBuf> {
        let (tx, rx) = channel();
        self.enqueue(SnapshotJob {
            session: session.to_string(),
            covered_lsn,
            state,
            reply: Some(tx),
        })?;
        rx.recv()
            .map_err(|_| ServerError::Durability("snapshot thread exited".to_string()))?
    }

    /// The drain barrier: blocks until every job enqueued so far is fully
    /// written (queue empty, nothing in flight) — so shutdown and tests
    /// never observe a half-scheduled snapshot.
    pub(crate) fn drain(&self) {
        let mut state = self.lock();
        while !state.jobs.is_empty() || state.in_flight {
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops the service: the worker drains the remaining queue, then
    /// exits; new enqueues fail typed. Idempotent.
    pub(crate) fn stop(&self) {
        self.lock().stop = true;
        self.cv.notify_all();
        let worker = self
            .worker
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(worker) = worker {
            let _ = worker.join();
        }
    }
}

/// Fsyncs the snapshot directory's parent chain after first creation.
pub(crate) fn ensure_store_dirs(dir: &Path) -> Result<()> {
    let snap_dir = snapshot_dir(dir);
    std::fs::create_dir_all(&snap_dir)
        .map_err(|e| ServerError::Durability(format!("creating {}: {e}", snap_dir.display())))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    sync_parent_dir(&snap_dir.join("x"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use priu_core::{SessionBuilder, TrainerConfig};
    use priu_data::catalog::Hyperparameters;
    use priu_data::synthetic::regression::{generate_regression, RegressionConfig};

    fn state(n: usize, seed: u64, epoch: u64) -> DurableState {
        let data = generate_regression(&RegressionConfig {
            num_samples: n,
            num_features: 4,
            seed,
            ..Default::default()
        });
        let hyper = Hyperparameters {
            batch_size: 20,
            num_iterations: 30,
            learning_rate: 0.05,
            regularization: 0.01,
        };
        let session = SessionBuilder::dense(data, TrainerConfig::from_hyper(hyper))
            .seed(1)
            .fit()
            .unwrap();
        DurableState {
            session: Arc::new(session),
            ids: (5..5 + n as u64).collect(),
            next_id: 5 + n as u64,
            epoch,
            initial_samples: n,
            removed_since_refit: 3,
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("priu-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn filename_round_trip_handles_slashes() {
        let path = snapshot_path(Path::new("/tmp/d"), "tenant/model-a", 7);
        let file = path.file_name().unwrap().to_str().unwrap();
        let (name, epoch) = parse_snapshot_name(file).unwrap();
        assert_eq!(name, "tenant/model-a");
        assert_eq!(epoch, 7);
        assert!(parse_snapshot_name("nothex-00000000000000000007.snap").is_none());
        assert!(parse_snapshot_name("ff-3.snap.tmp").is_none());
    }

    #[test]
    fn write_load_round_trip_is_bitwise() {
        let dir = tempdir("snap-roundtrip");
        let original = state(40, 11, 3);
        write_snapshot(&dir, "t/m", 17, &original).unwrap();
        let (loaded, skips) = load_latest(&dir, "t/m").unwrap();
        let loaded = loaded.unwrap();
        assert!(skips.is_empty());
        assert_eq!(loaded.covered_lsn, 17);
        assert_eq!(loaded.state.epoch, 3);
        assert_eq!(loaded.state.next_id, original.next_id);
        assert_eq!(loaded.state.ids, original.ids);
        assert_eq!(loaded.state.initial_samples, 40);
        assert_eq!(loaded.state.removed_since_refit, 3);
        // Bit-exact engine state: the serialized blobs must agree byte for
        // byte, which implies to_bits equality of every weight.
        assert_eq!(
            loaded.state.session.to_snapshot_bytes(),
            original.session.to_snapshot_bytes()
        );
        assert_eq!(list_sessions(&dir).unwrap(), vec!["t/m"]);
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous_epoch() {
        let dir = tempdir("snap-fallback");
        write_snapshot(&dir, "s", 5, &state(30, 2, 1)).unwrap();
        let latest = write_snapshot(&dir, "s", 9, &state(30, 2, 2)).unwrap();
        // Flip one payload byte of the newest epoch.
        let mut bytes = std::fs::read(&latest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&latest, &bytes).unwrap();
        let (loaded, skips) = load_latest(&dir, "s").unwrap();
        assert_eq!(loaded.unwrap().covered_lsn, 5);
        assert_eq!(skips.len(), 1);
        assert!(skips[0].reason.contains("checksum"));

        // Truncate the older one too: nothing usable remains, still no
        // panic.
        let older = snapshot_path(&dir, "s", 1);
        let bytes = std::fs::read(&older).unwrap();
        std::fs::write(&older, &bytes[..bytes.len() / 3]).unwrap();
        std::fs::write(&latest, b"PRIUSNP1garbage").unwrap();
        let (loaded, skips) = load_latest(&dir, "s").unwrap();
        assert!(loaded.is_none());
        assert_eq!(skips.len(), 2);
    }

    #[test]
    fn coverage_floors_take_the_minimum_over_valid_epochs() {
        let dir = tempdir("snap-floors");
        write_snapshot(&dir, "a", 5, &state(20, 1, 1)).unwrap();
        write_snapshot(&dir, "a", 9, &state(20, 1, 2)).unwrap();
        write_snapshot(&dir, "b", 3, &state(20, 2, 1)).unwrap();
        assert_eq!(
            coverage_floors(&dir).unwrap(),
            vec![("a".to_string(), 5), ("b".to_string(), 3)]
        );

        // A corrupt older epoch stops holding the floor down: only the
        // valid epochs count.
        let older = snapshot_path(&dir, "a", 1);
        let mut bytes = std::fs::read(&older).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&older, &bytes).unwrap();
        assert_eq!(
            coverage_floors(&dir).unwrap(),
            vec![("a".to_string(), 9), ("b".to_string(), 3)]
        );

        // A session with no valid file contributes no floor at all — the
        // checkpoint then retains every record it has.
        std::fs::write(snapshot_path(&dir, "b", 1), b"PRIUSNP1junk").unwrap();
        assert_eq!(coverage_floors(&dir).unwrap(), vec![("a".to_string(), 9)]);
    }

    #[test]
    fn snapshot_service_writes_in_fifo_order_and_drains() {
        let dir = tempdir("snap-service");
        let wal_path = dir.join("deltas.wal");
        let (wal, _) = GroupWal::open(&wal_path, Default::default()).unwrap();
        let service = SnapshotService::start(dir.clone(), Arc::new(wal), u64::MAX);
        // A blocking baseline, then two fire-and-forget epochs.
        service.write_baseline("s", 0, state(20, 7, 0)).unwrap();
        for epoch in 1..=2 {
            service
                .enqueue(SnapshotJob {
                    session: "s".to_string(),
                    covered_lsn: epoch,
                    state: state(20, 7, epoch),
                    reply: None,
                })
                .unwrap();
        }
        service.drain();
        let (loaded, skips) = load_latest(&dir, "s").unwrap();
        assert_eq!(loaded.unwrap().state.epoch, 2);
        assert!(skips.is_empty());
        let mut epochs = list_epochs(&dir, "s").unwrap();
        epochs.sort_unstable();
        assert_eq!(epochs, vec![1, 2], "older epochs pruned as they land");
        service.stop();
        assert!(service
            .enqueue(SnapshotJob {
                session: "s".to_string(),
                covered_lsn: 9,
                state: state(20, 7, 9),
                reply: None,
            })
            .is_err());
    }

    #[test]
    fn tmp_leftovers_are_ignored_and_old_epochs_pruned() {
        let dir = tempdir("snap-prune");
        for epoch in 1..=4 {
            write_snapshot(&dir, "s", epoch, &state(20, 3, epoch)).unwrap();
        }
        // Only the newest two epochs survive pruning.
        let mut epochs = list_epochs(&dir, "s").unwrap();
        epochs.sort_unstable();
        assert_eq!(epochs, vec![3, 4]);
        // A torn temp file next to them changes nothing.
        std::fs::write(
            snapshot_dir(&dir).join("73-00000000000000000009.snap.tmp"),
            b"to",
        )
        .unwrap();
        let (loaded, skips) = load_latest(&dir, "s").unwrap();
        assert_eq!(loaded.unwrap().state.epoch, 4);
        assert!(skips.is_empty());
    }
}
