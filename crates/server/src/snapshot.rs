//! Durable session snapshots.
//!
//! A snapshot is the full durable state of one session slot — engine
//! state, stable-id map, fresh-id counter, epoch, drift counters —
//! serialized bit-exactly, plus the WAL LSN it *covers*: every WAL record
//! with `lsn < covered_lsn` is already folded into the snapshot, so
//! recovery loads the newest valid snapshot and redoes only the WAL
//! suffix.
//!
//! # File format
//!
//! ```text
//! <dir>/snapshots/<hex(session name)>-<epoch, 20 digits>.snap
//!
//! [8  magic "PRIUSNP1"]
//! [u32 payload len][u32 crc32(payload)]
//! payload = u64 covered_lsn, u64 epoch, u64 next_id,
//!           u64 initial_samples, u64 removed_since_refit,
//!           u64 id count + that many u64 stable ids,
//!           u64 session blob len + Session::to_snapshot_bytes
//! ```
//!
//! Session names contain `/` (tenant × model), so the filename carries the
//! name hex-encoded; the zero-padded epoch makes lexicographic order equal
//! epoch order.
//!
//! # Atomicity
//!
//! A snapshot is written to `<final>.snap.tmp`, fsync'd, renamed over the
//! final name, and the directory fsync'd — a crash at any point (the
//! `snapshot-mid-write` / `snapshot-before-rename` / `snapshot-after-rename`
//! fail points) leaves either the old snapshot set or the old set plus a
//! complete new file. Loaders ignore `.tmp` leftovers and skip files that
//! fail the magic, CRC, or decode — a corrupt snapshot falls back to the
//! previous epoch, never panics.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use priu_core::snapshot::{SnapshotReader, SnapshotWriter};
use priu_core::{DeletionEngine, Session};

use crate::error::{Result, ServerError};
use crate::failpoint::fail_point;
use crate::registry::DurableState;
use crate::wal::{crc32, read_file, sync_parent_dir};

/// Identifies a file as a PrIU session snapshot, version 1.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"PRIUSNP1";

/// A snapshot loaded back from disk.
#[derive(Debug)]
pub(crate) struct LoadedSnapshot {
    /// Every WAL record with `lsn < covered_lsn` is folded in already.
    pub covered_lsn: u64,
    /// The slot state to restore.
    pub state: DurableState,
}

/// A snapshot file that existed but could not be used — recovery reports
/// these and falls back to an older epoch.
#[derive(Debug, Clone)]
pub struct SkippedSnapshot {
    /// The unusable file.
    pub path: PathBuf,
    /// Why it was skipped.
    pub reason: String,
}

// --- naming ---------------------------------------------------------------

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

/// The directory holding a store's snapshot files.
pub fn snapshot_dir(dir: &Path) -> PathBuf {
    dir.join("snapshots")
}

fn snapshot_path(dir: &Path, session: &str, epoch: u64) -> PathBuf {
    snapshot_dir(dir).join(format!(
        "{}-{epoch:020}.snap",
        hex_encode(session.as_bytes())
    ))
}

/// Splits a snapshot filename back into `(session name, epoch)`; `None`
/// for files that are not well-formed snapshot names (e.g. `.tmp`
/// leftovers).
fn parse_snapshot_name(file_name: &str) -> Option<(String, u64)> {
    let stem = file_name.strip_suffix(".snap")?;
    let (hex_name, epoch) = stem.rsplit_once('-')?;
    let epoch = epoch.parse().ok()?;
    let name = String::from_utf8(hex_decode(hex_name)?).ok()?;
    Some((name, epoch))
}

// --- writing --------------------------------------------------------------

fn encode_snapshot(covered_lsn: u64, state: &DurableState) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.u64(covered_lsn);
    w.u64(state.epoch);
    w.u64(state.next_id);
    w.usize(state.initial_samples);
    w.usize(state.removed_since_refit);
    w.usize(state.ids.len());
    for &id in &state.ids {
        w.u64(id);
    }
    let blob = state.session.to_snapshot_bytes();
    w.usize(blob.len());
    let mut bytes = w.into_bytes();
    bytes.extend_from_slice(&blob);
    bytes
}

fn decode_snapshot(payload: &[u8]) -> std::result::Result<LoadedSnapshot, String> {
    let fail = |e: priu_core::CoreError| e.to_string();
    let mut r = SnapshotReader::new(payload);
    let covered_lsn = r.u64("covered_lsn").map_err(fail)?;
    let epoch = r.u64("epoch").map_err(fail)?;
    let next_id = r.u64("next_id").map_err(fail)?;
    let initial_samples = r.usize("initial_samples").map_err(fail)?;
    let removed_since_refit = r.usize("removed_since_refit").map_err(fail)?;
    let n = r.len(8, "stable ids").map_err(fail)?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(r.u64("stable id").map_err(fail)?);
    }
    let blob_len = r.usize("session blob length").map_err(fail)?;
    if blob_len != r.remaining() {
        return Err(format!(
            "session blob length {blob_len} does not match remaining {} bytes",
            r.remaining()
        ));
    }
    let blob = r.take(blob_len, "session blob").map_err(fail)?;
    let session = Session::from_snapshot_bytes(blob).map_err(fail)?;
    if let Some(&max) = ids.last() {
        if max >= next_id {
            return Err(format!("stable id {max} is not below next_id {next_id}"));
        }
    }
    if ids.len() != session.num_samples() {
        return Err(format!(
            "{} stable ids for a session of {} rows",
            ids.len(),
            session.num_samples()
        ));
    }
    Ok(LoadedSnapshot {
        covered_lsn,
        state: DurableState {
            session: Arc::new(session),
            ids,
            next_id,
            epoch,
            initial_samples,
            removed_since_refit,
        },
    })
}

/// Writes one session snapshot atomically (temp file → fsync → rename →
/// directory fsync) and prunes superseded epochs. Crash points:
/// `snapshot-mid-write`, `snapshot-before-rename`, `snapshot-after-rename`.
///
/// # Errors
/// [`ServerError::Durability`] on I/O failure; the previous snapshot set
/// is untouched in that case.
pub(crate) fn write_snapshot(
    dir: &Path,
    session: &str,
    covered_lsn: u64,
    state: &DurableState,
) -> Result<PathBuf> {
    let snap_dir = snapshot_dir(dir);
    std::fs::create_dir_all(&snap_dir)
        .map_err(|e| ServerError::Durability(format!("creating {}: {e}", snap_dir.display())))?;
    let payload = encode_snapshot(covered_lsn, state);
    let mut bytes = Vec::with_capacity(16 + payload.len());
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let final_path = snapshot_path(dir, session, state.epoch);
    let tmp_path = final_path.with_extension("snap.tmp");
    let io = |what: &str, p: &Path, e: std::io::Error| {
        ServerError::Durability(format!("{what} {}: {e}", p.display()))
    };
    {
        let mut tmp = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&tmp_path)
            .map_err(|e| io("creating", &tmp_path, e))?;
        // Two half-writes with a crash point between them, so the torture
        // suite can leave a genuinely torn temp file behind.
        let mid = bytes.len() / 2;
        tmp.write_all(&bytes[..mid])
            .map_err(|e| io("writing", &tmp_path, e))?;
        fail_point("snapshot-mid-write");
        tmp.write_all(&bytes[mid..])
            .map_err(|e| io("writing", &tmp_path, e))?;
        tmp.sync_data().map_err(|e| io("syncing", &tmp_path, e))?;
    }
    fail_point("snapshot-before-rename");
    std::fs::rename(&tmp_path, &final_path)
        .map_err(|e| io("renaming into place", &final_path, e))?;
    fail_point("snapshot-after-rename");
    sync_parent_dir(&final_path)?;
    prune_old_snapshots(dir, session, state.epoch);
    Ok(final_path)
}

/// Removes snapshots of `session` older than the newest two epochs ≤
/// `latest_epoch`. Keeping one predecessor means a corrupt latest file
/// still has a fallback; best-effort (pruning failures are ignored — a
/// stale file only costs disk).
fn prune_old_snapshots(dir: &Path, session: &str, latest_epoch: u64) {
    let Ok(mut epochs) = list_epochs(dir, session) else {
        return;
    };
    epochs.retain(|&e| e <= latest_epoch);
    epochs.sort_unstable();
    if epochs.len() <= 2 {
        return;
    }
    for &epoch in &epochs[..epochs.len() - 2] {
        let _ = std::fs::remove_file(snapshot_path(dir, session, epoch));
    }
}

// --- loading --------------------------------------------------------------

fn list_epochs(dir: &Path, session: &str) -> Result<Vec<u64>> {
    let snap_dir = snapshot_dir(dir);
    let entries = match std::fs::read_dir(&snap_dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(ServerError::Durability(format!(
                "listing {}: {e}",
                snap_dir.display()
            )))
        }
    };
    let mut epochs = Vec::new();
    for entry in entries {
        let entry = entry
            .map_err(|e| ServerError::Durability(format!("listing {}: {e}", snap_dir.display())))?;
        if let Some((name, epoch)) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            if name == session {
                epochs.push(epoch);
            }
        }
    }
    Ok(epochs)
}

/// Every session that has at least one snapshot file, sorted — the set of
/// sessions recovery restores.
pub(crate) fn list_sessions(dir: &Path) -> Result<Vec<String>> {
    let snap_dir = snapshot_dir(dir);
    let entries = match std::fs::read_dir(&snap_dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(ServerError::Durability(format!(
                "listing {}: {e}",
                snap_dir.display()
            )))
        }
    };
    let mut names = Vec::new();
    for entry in entries {
        let entry = entry
            .map_err(|e| ServerError::Durability(format!("listing {}: {e}", snap_dir.display())))?;
        if let Some((name, _)) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    names.sort();
    Ok(names)
}

fn load_snapshot_file(path: &Path) -> Result<std::result::Result<LoadedSnapshot, String>> {
    let Some(bytes) = read_file(path)? else {
        return Ok(Err("file vanished while loading".to_string()));
    };
    if bytes.len() < 16 {
        return Ok(Err(format!(
            "{} bytes is too short for a header",
            bytes.len()
        )));
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Ok(Err("bad magic".to_string()));
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if bytes.len() - 16 != len {
        return Ok(Err(format!(
            "header claims {len} payload bytes, file has {}",
            bytes.len() - 16
        )));
    }
    let payload = &bytes[16..];
    if crc32(payload) != crc {
        return Ok(Err("checksum mismatch".to_string()));
    }
    Ok(decode_snapshot(payload))
}

/// Loads the newest usable snapshot of `session`, skipping (and
/// reporting) corrupt epochs. `Ok((None, skips))` means no usable
/// snapshot exists.
///
/// # Errors
/// Only genuine I/O failures; corruption is a skip, not an error.
pub(crate) fn load_latest(
    dir: &Path,
    session: &str,
) -> Result<(Option<LoadedSnapshot>, Vec<SkippedSnapshot>)> {
    let mut epochs = list_epochs(dir, session)?;
    epochs.sort_unstable();
    let mut skips = Vec::new();
    for &epoch in epochs.iter().rev() {
        let path = snapshot_path(dir, session, epoch);
        match load_snapshot_file(&path)? {
            Ok(snapshot) => return Ok((Some(snapshot), skips)),
            Err(reason) => skips.push(SkippedSnapshot { path, reason }),
        }
    }
    Ok((None, skips))
}

/// Fsyncs the snapshot directory's parent chain after first creation.
pub(crate) fn ensure_store_dirs(dir: &Path) -> Result<()> {
    let snap_dir = snapshot_dir(dir);
    std::fs::create_dir_all(&snap_dir)
        .map_err(|e| ServerError::Durability(format!("creating {}: {e}", snap_dir.display())))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    sync_parent_dir(&snap_dir.join("x"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use priu_core::{SessionBuilder, TrainerConfig};
    use priu_data::catalog::Hyperparameters;
    use priu_data::synthetic::regression::{generate_regression, RegressionConfig};

    fn state(n: usize, seed: u64, epoch: u64) -> DurableState {
        let data = generate_regression(&RegressionConfig {
            num_samples: n,
            num_features: 4,
            seed,
            ..Default::default()
        });
        let hyper = Hyperparameters {
            batch_size: 20,
            num_iterations: 30,
            learning_rate: 0.05,
            regularization: 0.01,
        };
        let session = SessionBuilder::dense(data, TrainerConfig::from_hyper(hyper))
            .seed(1)
            .fit()
            .unwrap();
        DurableState {
            session: Arc::new(session),
            ids: (5..5 + n as u64).collect(),
            next_id: 5 + n as u64,
            epoch,
            initial_samples: n,
            removed_since_refit: 3,
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("priu-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn filename_round_trip_handles_slashes() {
        let path = snapshot_path(Path::new("/tmp/d"), "tenant/model-a", 7);
        let file = path.file_name().unwrap().to_str().unwrap();
        let (name, epoch) = parse_snapshot_name(file).unwrap();
        assert_eq!(name, "tenant/model-a");
        assert_eq!(epoch, 7);
        assert!(parse_snapshot_name("nothex-00000000000000000007.snap").is_none());
        assert!(parse_snapshot_name("ff-3.snap.tmp").is_none());
    }

    #[test]
    fn write_load_round_trip_is_bitwise() {
        let dir = tempdir("snap-roundtrip");
        let original = state(40, 11, 3);
        write_snapshot(&dir, "t/m", 17, &original).unwrap();
        let (loaded, skips) = load_latest(&dir, "t/m").unwrap();
        let loaded = loaded.unwrap();
        assert!(skips.is_empty());
        assert_eq!(loaded.covered_lsn, 17);
        assert_eq!(loaded.state.epoch, 3);
        assert_eq!(loaded.state.next_id, original.next_id);
        assert_eq!(loaded.state.ids, original.ids);
        assert_eq!(loaded.state.initial_samples, 40);
        assert_eq!(loaded.state.removed_since_refit, 3);
        // Bit-exact engine state: the serialized blobs must agree byte for
        // byte, which implies to_bits equality of every weight.
        assert_eq!(
            loaded.state.session.to_snapshot_bytes(),
            original.session.to_snapshot_bytes()
        );
        assert_eq!(list_sessions(&dir).unwrap(), vec!["t/m"]);
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous_epoch() {
        let dir = tempdir("snap-fallback");
        write_snapshot(&dir, "s", 5, &state(30, 2, 1)).unwrap();
        let latest = write_snapshot(&dir, "s", 9, &state(30, 2, 2)).unwrap();
        // Flip one payload byte of the newest epoch.
        let mut bytes = std::fs::read(&latest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&latest, &bytes).unwrap();
        let (loaded, skips) = load_latest(&dir, "s").unwrap();
        assert_eq!(loaded.unwrap().covered_lsn, 5);
        assert_eq!(skips.len(), 1);
        assert!(skips[0].reason.contains("checksum"));

        // Truncate the older one too: nothing usable remains, still no
        // panic.
        let older = snapshot_path(&dir, "s", 1);
        let bytes = std::fs::read(&older).unwrap();
        std::fs::write(&older, &bytes[..bytes.len() / 3]).unwrap();
        std::fs::write(&latest, b"PRIUSNP1garbage").unwrap();
        let (loaded, skips) = load_latest(&dir, "s").unwrap();
        assert!(loaded.is_none());
        assert_eq!(skips.len(), 2);
    }

    #[test]
    fn tmp_leftovers_are_ignored_and_old_epochs_pruned() {
        let dir = tempdir("snap-prune");
        for epoch in 1..=4 {
            write_snapshot(&dir, "s", epoch, &state(20, 3, epoch)).unwrap();
        }
        // Only the newest two epochs survive pruning.
        let mut epochs = list_epochs(&dir, "s").unwrap();
        epochs.sort_unstable();
        assert_eq!(epochs, vec![3, 4]);
        // A torn temp file next to them changes nothing.
        std::fs::write(
            snapshot_dir(&dir).join("73-00000000000000000009.snap.tmp"),
            b"to",
        )
        .unwrap();
        let (loaded, skips) = load_latest(&dir, "s").unwrap();
        assert_eq!(loaded.unwrap().state.epoch, 4);
        assert!(skips.is_empty());
    }
}
