//! Typed errors of the deletion service.

use std::fmt;

use priu_core::CoreError;

use crate::protocol::ProtocolError;

/// Everything the server can report to a caller.
#[derive(Debug)]
pub enum ServerError {
    /// The named session is not registered.
    UnknownSession(String),
    /// A session with this name is already registered.
    SessionExists(String),
    /// A predict request's feature vector does not match the session's
    /// feature count.
    FeatureMismatch {
        /// Features the session's model expects.
        expected: usize,
        /// Features the request carried.
        got: usize,
    },
    /// A change request's appended rows are malformed or do not fit the
    /// session (shape, label kind, or class range). Rejected at admission
    /// so one bad add never fails a whole coalesced batch.
    InvalidRows(String),
    /// The underlying deletion engine failed (invalid removal set,
    /// factorisation failure, divergence, ...). The session is left on its
    /// pre-batch state.
    Engine(CoreError),
    /// The coalesced batch containing this request failed; every folded
    /// request receives the same rendered engine error. The session is
    /// left on its pre-batch state.
    BatchFailed(String),
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
    /// The durability layer failed (WAL I/O, snapshot write, or recovery
    /// found unusable persisted state). Raised before acknowledgement, so
    /// a caller seeing this knows the change was *not* made durable.
    Durability(String),
    /// A wire-protocol frame could not be decoded.
    Protocol(ProtocolError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownSession(name) => write!(f, "unknown session {name:?}"),
            ServerError::SessionExists(name) => {
                write!(f, "a session named {name:?} is already registered")
            }
            ServerError::FeatureMismatch { expected, got } => write!(
                f,
                "feature count mismatch: session expects {expected}, request carried {got}"
            ),
            ServerError::InvalidRows(message) => {
                write!(f, "invalid appended rows: {message}")
            }
            ServerError::Engine(err) => write!(f, "deletion engine error: {err}"),
            ServerError::BatchFailed(message) => {
                write!(f, "deletion batch failed: {message}")
            }
            ServerError::ShuttingDown => f.write_str("the server is shutting down"),
            ServerError::Durability(message) => write!(f, "durability error: {message}"),
            ServerError::Protocol(err) => write!(f, "protocol error: {err}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<CoreError> for ServerError {
    fn from(err: CoreError) -> Self {
        ServerError::Engine(err)
    }
}

impl From<ProtocolError> for ServerError {
    fn from(err: ProtocolError) -> Self {
        ServerError::Protocol(err)
    }
}

/// Convenience alias used across the server crate.
pub type Result<T> = std::result::Result<T, ServerError>;
