//! The cost-model scheduler: picks the update method for each coalesced
//! batch.
//!
//! For every batch the scheduler estimates the wall-clock cost of each
//! method the session supports and picks the cheapest *exact* one:
//!
//! * `PrIU` / `PrIU-opt` — per-removed-row cost (the downdate walks the
//!   provenance of each removed row),
//! * `Closed-form` — near-flat per-batch cost (one rank-k downdate of the
//!   normal equations plus an O(m³) solve; the per-row term is noise at
//!   server batch sizes),
//! * `BaseL` retrain — per-*survivor* cost (replays the full mini-batch
//!   schedule on `n - k` rows).
//!
//! `INFL` is never scheduled: it is an approximation, and a deletion
//! service must honor removals exactly.
//!
//! The estimates are seeded from calibration constants in the ballpark of
//! the recorded BENCH_2–BENCH_5 trajectories on this 1-CPU container and
//! refined online: after each batch the measured seconds update the
//! method's dominant coefficient by exponential moving average, so a
//! mis-seeded model converges to the machine it is actually running on.
//!
//! Independently of cost, accumulated **drift** forces correctness: once
//! incremental updates have removed more than `retrain_drift` of the
//! registration-time rows since the last refit, the scheduler forces a
//! full retrain. (PrIU's updates are exact for the closed-form path and
//! tightly error-bounded for the iterative ones, but a service that only
//! ever downdates accumulates floating-point drift and shrinks the
//! provenance basis; periodic re-anchoring bounds both.)

use priu_core::{CaptureSnapshot, Method};

/// Calibration seeds: dominant-term coefficients, in seconds, for the
/// cost model before any online observation. Order-of-magnitude values
/// measured on the repo's 1-CPU reference container (BENCH_2–BENCH_5
/// scale); the EMA refinement corrects them within a few batches.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Seconds per removed row for `PrIU`.
    pub priu_row_seconds: f64,
    /// Seconds per removed row for `PrIU-opt`.
    pub priu_opt_row_seconds: f64,
    /// Seconds per batch for `Closed-form`.
    pub closed_form_batch_seconds: f64,
    /// Seconds per surviving sample for a `BaseL` retrain.
    pub retrain_sample_seconds: f64,
    /// Seconds per *added* row for the iterative methods (`PrIU` /
    /// `PrIU-opt`): each appended row costs a share of the extra GD
    /// iterations appended to the provenance schedule. The closed-form
    /// update folds additions into the same rank-k refactor + solve it
    /// already pays for, so it carries no per-added-row term.
    pub add_row_seconds: f64,
    /// Flat per-retrain seconds for the offline phase the refit ends with
    /// (provenance capture: the symmetric eigendecomposition). Seeded from
    /// the tridiag + QL pipeline at the fig-scale feature counts (BENCH_7);
    /// the Jacobi-era value was an order of magnitude larger, which is why
    /// drift-forced retrains used to lose to the closed-form downdate.
    pub refit_offline_seconds: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Self {
            priu_row_seconds: 2.0e-5,
            priu_opt_row_seconds: 8.0e-6,
            closed_form_batch_seconds: 4.0e-4,
            retrain_sample_seconds: 5.0e-6,
            add_row_seconds: 6.0e-6,
            refit_offline_seconds: 2.0e-4,
        }
    }
}

/// Scheduler tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Cost-model seeds (refined online).
    pub calibration: Calibration,
    /// Weight of the newest observation in the EMA refinement, in `(0, 1]`.
    pub ema_alpha: f64,
    /// Drift ratio (rows removed incrementally since the last refit over
    /// registration-time rows) at or above which a full retrain is forced.
    pub retrain_drift: f64,
    /// Pins every decision to one method (tests and A/B loadgen runs);
    /// sessions that do not support it fall back to the cost model.
    pub force_method: Option<Method>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            calibration: Calibration::default(),
            ema_alpha: 0.3,
            retrain_drift: 0.25,
            force_method: None,
        }
    }
}

/// Methods the scheduler will consider, cheapest-biased order for
/// deterministic tie-breaks. `Influence` is intentionally absent.
const CANDIDATES: [Method; 4] = [
    Method::PriuOpt,
    Method::Priu,
    Method::ClosedForm,
    Method::Retrain,
];

/// Per-session cost model: calibrated coefficients refined online plus a
/// histogram of the decisions taken.
#[derive(Debug, Clone)]
pub struct CostModel {
    cfg: SchedulerConfig,
    priu_row: f64,
    priu_opt_row: f64,
    closed_batch: f64,
    retrain_sample: f64,
    add_row: f64,
    refit_offline: f64,
    /// Decision counts, indexed by the method's position in
    /// [`Method::ALL`].
    decisions: [u64; Method::ALL.len()],
}

impl CostModel {
    /// A cost model seeded from the config's calibration constants.
    pub fn new(cfg: SchedulerConfig) -> Self {
        Self {
            cfg,
            priu_row: cfg.calibration.priu_row_seconds,
            priu_opt_row: cfg.calibration.priu_opt_row_seconds,
            closed_batch: cfg.calibration.closed_form_batch_seconds,
            retrain_sample: cfg.calibration.retrain_sample_seconds,
            add_row: cfg.calibration.add_row_seconds,
            refit_offline: cfg.calibration.refit_offline_seconds,
            decisions: [0; Method::ALL.len()],
        }
    }

    /// Estimated seconds for removing `k` rows from an `n`-row session
    /// with `method`. `Influence` estimates infinite: exact-deletion
    /// service, never scheduled.
    pub fn estimate(&self, method: Method, k: usize, n: usize) -> f64 {
        self.estimate_delta(method, k, 0, n)
    }

    /// Estimated seconds for a bidirectional delta — remove `k` rows and
    /// append `added` — on an `n`-row session. The iterative methods pay
    /// `add_row` per appended row (extra GD iterations on the extended
    /// schedule); the closed-form update folds additions into its flat
    /// rank-k refactor; a retrain replays `n - k + added` samples.
    pub fn estimate_delta(&self, method: Method, k: usize, added: usize, n: usize) -> f64 {
        let (k, a) = (k as f64, added as f64);
        match method {
            Method::Priu => self.priu_row * k + self.add_row * a,
            Method::PriuOpt => self.priu_opt_row * k + self.add_row * a,
            Method::ClosedForm => self.closed_batch,
            Method::Retrain => {
                self.retrain_sample * ((n as f64 - k).max(0.0) + a) + self.refit_offline
            }
            Method::Influence => f64::INFINITY,
        }
    }

    /// Picks the method for a batch removing `k` rows from the session
    /// described by `snapshot`, where committing the batch incrementally
    /// would leave the session at drift ratio `drift_after`.
    ///
    /// Precedence: `force_method` (if supported) ≻ forced retrain on
    /// drift ≻ cheapest estimate among supported candidates. Records the
    /// decision in the histogram.
    pub fn decide(&mut self, snapshot: &CaptureSnapshot, k: usize, drift_after: f64) -> Method {
        self.decide_delta(snapshot, k, 0, drift_after)
    }

    /// Picks the method for a bidirectional batch: remove `k` rows, append
    /// `added`. Identical to [`CostModel::decide`] when `added == 0`;
    /// otherwise the per-added-row terms shift the comparison (add-heavy
    /// batches favor the flat closed-form update on sessions that
    /// support it).
    pub fn decide_delta(
        &mut self,
        snapshot: &CaptureSnapshot,
        k: usize,
        added: usize,
        drift_after: f64,
    ) -> Method {
        let supported = |m: Method| snapshot.methods.contains(&m);
        let method = if let Some(forced) = self.cfg.force_method.filter(|&m| supported(m)) {
            forced
        } else if drift_after >= self.cfg.retrain_drift && supported(Method::Retrain) {
            Method::Retrain
        } else {
            CANDIDATES
                .into_iter()
                .filter(|&m| supported(m))
                .min_by(|&a, &b| {
                    self.estimate_delta(a, k, added, snapshot.num_samples)
                        .total_cmp(&self.estimate_delta(b, k, added, snapshot.num_samples))
                })
                .expect("every session supports at least BaseL retrain")
        };
        let slot = Method::ALL
            .iter()
            .position(|&m| m == method)
            .expect("method is drawn from Method::ALL");
        self.decisions[slot] += 1;
        method
    }

    /// Feeds a measured batch back into the model: `method` removed `k`
    /// rows from an `n`-row session in `seconds`. The method's dominant
    /// coefficient moves toward the observation by EMA.
    pub fn observe(&mut self, method: Method, k: usize, n: usize, seconds: f64) {
        self.observe_delta(method, k, 0, n, seconds);
    }

    /// Feeds a measured bidirectional batch back into the model: `method`
    /// removed `k` rows and appended `added` on an `n`-row session in
    /// `seconds`. For the iterative methods a mixed observation is split
    /// between the per-removed-row and per-added-row coefficients in
    /// proportion to their current estimates, so both converge under a
    /// mixed workload.
    pub fn observe_delta(
        &mut self,
        method: Method,
        k: usize,
        added: usize,
        n: usize,
        seconds: f64,
    ) {
        if !seconds.is_finite() || seconds < 0.0 {
            return;
        }
        let alpha = self.cfg.ema_alpha.clamp(0.0, 1.0);
        let ema = |old: f64, obs: f64| old + alpha * (obs - old);
        let split_rows = |row: f64, add: f64| -> (f64, f64) {
            // Shares of the observation attributed to removal vs addition.
            let (est_remove, est_add) = (row * k as f64, add * added as f64);
            let total = est_remove + est_add;
            if total > 0.0 {
                (seconds * est_remove / total, seconds * est_add / total)
            } else {
                (0.0, 0.0)
            }
        };
        match method {
            Method::Priu if k > 0 || added > 0 => {
                let (remove_share, add_share) = split_rows(self.priu_row, self.add_row);
                if k > 0 {
                    self.priu_row = ema(self.priu_row, remove_share / k as f64);
                }
                if added > 0 {
                    self.add_row = ema(self.add_row, add_share / added as f64);
                }
            }
            Method::PriuOpt if k > 0 || added > 0 => {
                let (remove_share, add_share) = split_rows(self.priu_opt_row, self.add_row);
                if k > 0 {
                    self.priu_opt_row = ema(self.priu_opt_row, remove_share / k as f64);
                }
                if added > 0 {
                    self.add_row = ema(self.add_row, add_share / added as f64);
                }
            }
            Method::ClosedForm => self.closed_batch = ema(self.closed_batch, seconds),
            Method::Retrain if n + added > k => {
                // The flat offline term is observed separately (the refit
                // reports its own capture seconds); attribute the rest to
                // the per-sample replay over the survivors plus additions.
                let replay = (seconds - self.refit_offline).max(0.0);
                self.retrain_sample = ema(self.retrain_sample, replay / (n + added - k) as f64);
            }
            _ => {}
        }
    }

    /// Feeds the measured offline-phase seconds of a completed refit (the
    /// retrained session's training + provenance capture) into the flat
    /// retrain term, EMA-refined like the per-row coefficients. This is
    /// where the tridiag + QL speedup reaches scheduling: a few observed
    /// refits pull `refit_offline` down an order of magnitude from a
    /// Jacobi-era seed, and drift-forced retrains start beating the
    /// closed-form downdate on estimate.
    pub fn observe_offline(&mut self, seconds: f64) {
        if !seconds.is_finite() || seconds < 0.0 {
            return;
        }
        let alpha = self.cfg.ema_alpha.clamp(0.0, 1.0);
        self.refit_offline += alpha * (seconds - self.refit_offline);
    }

    /// Decision counts per method, in [`Method::ALL`] order, including
    /// zero-count methods (stable shape for reports).
    pub fn decisions(&self) -> Vec<(Method, u64)> {
        Method::ALL
            .iter()
            .zip(self.decisions.iter())
            .map(|(&m, &c)| (m, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priu_core::TaskKind;

    fn snapshot(n: usize, methods: Vec<Method>) -> CaptureSnapshot {
        CaptureSnapshot {
            task: TaskKind::Regression,
            num_samples: n,
            num_features: 8,
            provenance_bytes: 0,
            training_seconds: 1.0,
            methods,
        }
    }

    fn count(model: &CostModel, method: Method) -> u64 {
        model
            .decisions()
            .into_iter()
            .find(|&(m, _)| m == method)
            .unwrap()
            .1
    }

    #[test]
    fn picks_the_cheapest_supported_exact_method() {
        let mut model = CostModel::new(SchedulerConfig::default());
        let all = snapshot(100_000, Method::ALL.to_vec());
        // Small batch on a big session: per-row PrIU-opt wins.
        assert_eq!(model.decide(&all, 2, 0.0), Method::PriuOpt);
        // Huge batch: the flat closed-form downdate undercuts per-row work.
        assert_eq!(model.decide(&all, 10_000, 0.1), Method::ClosedForm);
        // Without closed form or PrIU-opt, PrIU carries the batch.
        let iter_only = snapshot(
            100_000,
            vec![Method::Retrain, Method::Priu, Method::Influence],
        );
        assert_eq!(model.decide(&iter_only, 2, 0.0), Method::Priu);
        // Tiny surviving set: retraining 10 rows beats downdating 1000.
        let tiny = snapshot(1_010, vec![Method::Retrain, Method::Priu]);
        assert_eq!(model.decide(&tiny, 1_000, 0.0), Method::Retrain);
        assert_eq!(count(&model, Method::Influence), 0);
    }

    #[test]
    fn drift_threshold_forces_a_full_retrain() {
        let mut model = CostModel::new(SchedulerConfig {
            retrain_drift: 0.25,
            ..SchedulerConfig::default()
        });
        let all = snapshot(10_000, Method::ALL.to_vec());
        assert_eq!(model.decide(&all, 3, 0.24), Method::PriuOpt);
        assert_eq!(model.decide(&all, 3, 0.25), Method::Retrain);
        assert_eq!(model.decide(&all, 3, 0.40), Method::Retrain);
        assert_eq!(count(&model, Method::Retrain), 2);
    }

    #[test]
    fn observations_refine_the_model_and_flip_decisions() {
        let mut model = CostModel::new(SchedulerConfig {
            ema_alpha: 1.0, // adopt observations outright for the test
            ..SchedulerConfig::default()
        });
        let all = snapshot(50_000, Method::ALL.to_vec());
        assert_eq!(model.decide(&all, 4, 0.0), Method::PriuOpt);
        // Observe PrIU-opt being catastrophically slow and PrIU fast.
        model.observe(Method::PriuOpt, 4, 50_000, 4.0);
        model.observe(Method::Priu, 4, 50_000, 4.0e-6);
        assert_eq!(model.decide(&all, 4, 0.0), Method::Priu);
        assert!((model.estimate(Method::PriuOpt, 1, 50_000) - 1.0).abs() < 1e-12);
        // Degenerate observations are ignored.
        let before = model.estimate(Method::Priu, 1, 50_000);
        model.observe(Method::Priu, 0, 50_000, 1.0);
        model.observe(Method::Priu, 4, 50_000, f64::NAN);
        model.observe(Method::Priu, 4, 50_000, -1.0);
        assert_eq!(model.estimate(Method::Priu, 1, 50_000), before);
    }

    #[test]
    fn force_method_pins_decisions_when_supported() {
        let mut model = CostModel::new(SchedulerConfig {
            force_method: Some(Method::ClosedForm),
            ..SchedulerConfig::default()
        });
        let all = snapshot(10_000, Method::ALL.to_vec());
        assert_eq!(model.decide(&all, 1, 0.0), Method::ClosedForm);
        // Sessions lacking the pinned method fall back to the cost model.
        let logistic = snapshot(10_000, vec![Method::Retrain, Method::Priu, Method::PriuOpt]);
        assert_eq!(model.decide(&logistic, 1, 0.0), Method::PriuOpt);
    }

    #[test]
    fn cheaper_offline_phase_shifts_decisions_toward_retrain() {
        // The same stream of near-total deletion batches under the Jacobi-era
        // offline calibration vs the tridiag+QL seed: with the old offline
        // cost the flat closed-form downdate wins every batch, with the new
        // one the retrain estimate drops below it and the decisions
        // histogram flips.
        let jacobi_era = SchedulerConfig {
            calibration: Calibration {
                refit_offline_seconds: 2.0e-3,
                ..Calibration::default()
            },
            ..SchedulerConfig::default()
        };
        let mut old_model = CostModel::new(jacobi_era);
        let mut new_model = CostModel::new(SchedulerConfig::default());
        let s = snapshot(3_000, vec![Method::ClosedForm, Method::Retrain]);
        for _ in 0..8 {
            // 30 survivors: retrain = 30·5e-6 + offline, closed form = 4e-4.
            old_model.decide(&s, 2_970, 0.0);
            new_model.decide(&s, 2_970, 0.0);
        }
        assert_eq!(count(&old_model, Method::Retrain), 0);
        assert_eq!(count(&old_model, Method::ClosedForm), 8);
        assert_eq!(count(&new_model, Method::Retrain), 8);
        assert_eq!(count(&new_model, Method::ClosedForm), 0);
    }

    #[test]
    fn observe_offline_refines_the_flat_retrain_term() {
        let mut model = CostModel::new(SchedulerConfig {
            ema_alpha: 1.0,
            ..SchedulerConfig::default()
        });
        let n = 1_000;
        let k = 990;
        let base = model.estimate(Method::Retrain, k, n);
        // An observed refit an order of magnitude cheaper moves the estimate
        // by exactly the offline delta.
        model.observe_offline(2.0e-5);
        let refined = model.estimate(Method::Retrain, k, n);
        assert!((base - refined - (2.0e-4 - 2.0e-5)).abs() < 1e-12);
        // A retrain observation attributes only the non-offline remainder to
        // the per-sample coefficient.
        model.observe(Method::Retrain, k, n, 2.0e-5 + 10.0 * 3.0e-6);
        assert!((model.estimate(Method::Retrain, k, n) - (2.0e-5 + 10.0 * 3.0e-6)).abs() < 1e-12);
        // Degenerate observations are ignored.
        model.observe_offline(f64::NAN);
        model.observe_offline(-1.0);
        assert!((model.estimate(Method::Retrain, k, n) - (2.0e-5 + 10.0 * 3.0e-6)).abs() < 1e-12);
    }

    #[test]
    fn added_rows_price_into_iterative_methods_but_not_closed_form() {
        let mut model = CostModel::new(SchedulerConfig::default());
        let all = snapshot(100_000, Method::ALL.to_vec());
        // A deletion-only delta decides exactly like the classic path.
        assert_eq!(
            model.decide_delta(&all, 2, 0, 0.0),
            Method::PriuOpt,
            "added == 0 must not change decisions"
        );
        for method in [
            Method::Priu,
            Method::PriuOpt,
            Method::ClosedForm,
            Method::Retrain,
        ] {
            assert_eq!(
                model.estimate_delta(method, 7, 0, 100_000),
                model.estimate(method, 7, 100_000)
            );
        }
        // The closed-form estimate is flat in the addition count; the
        // iterative ones grow linearly, so an add-heavy batch flips to the
        // rank-k closed-form update.
        assert_eq!(
            model.estimate_delta(Method::ClosedForm, 2, 5_000, 100_000),
            model.estimate(Method::ClosedForm, 2, 100_000)
        );
        assert!(
            model.estimate_delta(Method::PriuOpt, 2, 5_000, 100_000)
                > model.estimate(Method::PriuOpt, 2, 100_000)
        );
        assert_eq!(model.decide_delta(&all, 2, 5_000, 0.0), Method::ClosedForm);
    }

    #[test]
    fn mixed_observations_refine_the_per_added_row_term() {
        let mut model = CostModel::new(SchedulerConfig {
            ema_alpha: 1.0,
            ..SchedulerConfig::default()
        });
        // A pure-addition batch attributes everything to the add term.
        model.observe_delta(Method::Priu, 0, 10, 50_000, 10.0 * 4.0e-5);
        assert!((model.estimate_delta(Method::Priu, 0, 1, 50_000) - 4.0e-5).abs() < 1e-12);
        // A mixed batch splits proportionally to the current estimates, so
        // a consistent workload keeps both coefficients at their fixpoint.
        let before_row = model.estimate_delta(Method::Priu, 1, 0, 50_000);
        let before_add = model.estimate_delta(Method::Priu, 0, 1, 50_000);
        model.observe_delta(
            Method::Priu,
            3,
            5,
            50_000,
            3.0 * before_row + 5.0 * before_add,
        );
        assert!((model.estimate_delta(Method::Priu, 1, 0, 50_000) - before_row).abs() < 1e-12);
        assert!((model.estimate_delta(Method::Priu, 0, 1, 50_000) - before_add).abs() < 1e-12);
        // Retrain replays survivors + additions.
        model.observe_delta(
            Method::Retrain,
            100,
            50,
            1_050,
            model.refit_offline + 1_000.0 * 7.0e-6,
        );
        assert!((model.retrain_sample - 7.0e-6).abs() < 1e-12);
    }

    #[test]
    fn influence_is_never_scheduled() {
        let mut model = CostModel::new(SchedulerConfig::default());
        assert_eq!(model.estimate(Method::Influence, 1, 100), f64::INFINITY);
        // Even when it is the only "cheap" method listed, retrain wins.
        let infl = snapshot(100, vec![Method::Retrain, Method::Influence]);
        for k in [1, 10, 50] {
            assert_eq!(model.decide(&infl, k, 0.0), Method::Retrain);
        }
    }
}
