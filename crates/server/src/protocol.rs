//! The length-prefixed request protocol.
//!
//! # Framing
//!
//! Every message is one frame: a little-endian `u32` payload length
//! followed by that many payload bytes. Inside a payload all integers are
//! little-endian, `f64`s travel as their IEEE-754 bit pattern
//! ([`f64::to_bits`], little-endian — bit-exact across the wire), strings
//! as a `u32` byte length plus UTF-8 bytes, and vectors as a `u32` element
//! count plus the elements. The first payload byte after the 8-byte
//! request/response id is a message tag.
//!
//! The protocol is transport-agnostic over `Read`/`Write`: a
//! `TcpStream`, a Unix socket, or the in-memory [`pipe`] from this module
//! all work unchanged. Each connection gets a **dedicated reader thread**
//! ([`spawn_frame_reader`]) that blocks on the transport and feeds decoded
//! messages into an `mpsc` **message queue**, so slow transports never
//! stall the service loop and a clean EOF simply closes the queue.
//!
//! Request and response ids are caller-chosen correlation handles:
//! responses may arrive out of order (deletions resolve when their batch
//! commits, long after later predicts answered).

use std::io::{Read, Write};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::{fmt, io, thread};

use priu_core::Method;

/// Frames larger than this are rejected while decoding the length prefix
/// (corrupt or hostile peer, not a real message).
pub const MAX_FRAME_BYTES: u32 = 16 << 20;

/// Everything that can go wrong while decoding the wire format.
#[derive(Debug)]
pub enum ProtocolError {
    /// The transport failed.
    Io(io::Error),
    /// The stream ended in the middle of a frame or a field.
    Truncated,
    /// An unknown message or method tag.
    BadTag(u8),
    /// A length prefix exceeded [`MAX_FRAME_BYTES`].
    FrameTooLarge(u32),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Payload bytes were left over after a complete message.
    TrailingBytes(usize),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(err) => write!(f, "transport error: {err}"),
            ProtocolError::Truncated => f.write_str("frame truncated mid-message"),
            ProtocolError::BadTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            ProtocolError::FrameTooLarge(len) => {
                write!(
                    f,
                    "frame length {len} exceeds the {MAX_FRAME_BYTES} byte cap"
                )
            }
            ProtocolError::BadUtf8 => f.write_str("string field is not valid UTF-8"),
            ProtocolError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after a complete message")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(err: io::Error) -> Self {
        ProtocolError::Io(err)
    }
}

/// What a client can ask of the server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Predict on the named session's current model snapshot.
    Predict {
        /// Session name.
        session: String,
        /// Feature vector; must match the session's feature count.
        features: Vec<f64>,
    },
    /// Delete rows (by stable id) from the named session. The response
    /// arrives once the coalesced batch containing the request commits.
    Delete {
        /// Session name.
        session: String,
        /// Stable row ids to remove.
        ids: Vec<u64>,
    },
    /// Force the named session's pending deletions out now.
    Flush {
        /// Session name.
        session: String,
    },
    /// The named session's bookkeeping (epoch, drift, decisions, ...).
    Stats {
        /// Session name.
        session: String,
    },
    /// Append rows to the named session. The response arrives once the
    /// coalesced batch containing the request commits; appended rows get
    /// fresh stable ids (never reusing a retired id).
    Add {
        /// Session name.
        session: String,
        /// Feature width of every appended row; must match the session.
        num_features: u32,
        /// Row-major features, `labels.len() * num_features` values.
        features: Vec<f64>,
        /// One label per row: continuous value, ±1, or class index,
        /// following the session's task.
        labels: Vec<f64>,
    },
    /// Sliding-window tick: append rows (possibly none) and retain at most
    /// `keep_last` rows after the batch commits. Expiry removes the oldest
    /// pre-existing committed rows first (lowest stable ids) and never
    /// touches rows the same batch appends; it is clamped so at least one
    /// pre-existing row survives.
    Tick {
        /// Session name.
        session: String,
        /// Feature width of every appended row.
        num_features: u32,
        /// Row-major features, `labels.len() * num_features` values.
        features: Vec<f64>,
        /// One label per row.
        labels: Vec<f64>,
        /// Window size: the row count to retain after the commit.
        keep_last: u64,
    },
    /// What restart recovery loaded, redid, and skipped (server-wide).
    Recovery,
    /// Cumulative server-wide durability counters (fsyncs, WAL bytes,
    /// group sizes, checkpoints).
    DurabilityStats,
}

/// One session's line in a [`Response::RecoveryStatus`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoverySessionStatus {
    /// Session name.
    pub session: String,
    /// WAL records redone onto the loaded snapshot.
    pub redone: u64,
    /// WAL records skipped (their apply failed live too, or their ids did
    /// not resolve).
    pub skipped: u64,
    /// The epoch the session recovered to.
    pub final_epoch: u64,
}

/// What the server answers.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A prediction from one immutable model snapshot.
    Predicted {
        /// Regression value, decision value, or winning logit.
        value: f64,
        /// Predicted class for classifiers, `None` for regression.
        class: Option<u64>,
        /// Epoch of the snapshot that produced the prediction.
        epoch: u64,
    },
    /// The request's deletion batch committed.
    Deleted {
        /// Distinct rows the request asked for.
        requested: u64,
        /// Rows actually removed (live at batch time).
        applied: u64,
        /// Rows already gone, acknowledged without work.
        stale: u64,
        /// Distinct rows in the whole coalesced batch.
        batch_rows: u64,
        /// Method the scheduler picked; `None` when the batch was all
        /// stale and nothing ran.
        method: Option<Method>,
        /// Engine-measured seconds of the online update.
        seconds: f64,
        /// Session epoch after the commit.
        epoch: u64,
    },
    /// The request's add/tick batch committed.
    Applied {
        /// Rows this request appended.
        added: u64,
        /// Rows the batch's sliding-window retention expired (batch-level:
        /// expiry is a property of the whole coalesced batch).
        expired: u64,
        /// Distinct rows the whole coalesced batch removed (deletions plus
        /// retention expiry).
        batch_rows: u64,
        /// Method the scheduler picked; `None` when the batch changed
        /// nothing and no engine call ran.
        method: Option<Method>,
        /// Engine-measured seconds of the online update.
        seconds: f64,
        /// Session epoch after the commit.
        epoch: u64,
    },
    /// Flush accepted.
    Flushed,
    /// Session bookkeeping.
    Stats {
        /// Current epoch.
        epoch: u64,
        /// Current (surviving) sample count.
        num_samples: u64,
        /// Feature count.
        num_features: u64,
        /// Drift ratio since the last refit.
        drift: f64,
        /// Deletion requests still pending in the planner.
        pending: u64,
        /// Scheduler decision histogram, [`Method::ALL`] order.
        decisions: Vec<(Method, u64)>,
    },
    /// What restart recovery did. `durable: false` means the server runs
    /// without a durability layer (everything else is zero/empty).
    RecoveryStatus {
        /// Whether the server has a durability layer at all.
        durable: bool,
        /// Valid WAL records in the scanned prefix.
        wal_records: u64,
        /// Rendered torn-tail description, if the WAL did not end cleanly.
        wal_tail: Option<String>,
        /// Corrupt snapshot files recovery skipped.
        snapshot_skips: u64,
        /// WAL records whose session had no usable snapshot.
        orphan_records: u64,
        /// Per-session outcomes, sorted by name.
        sessions: Vec<RecoverySessionStatus>,
    },
    /// Cumulative durability counters. `durable: false` means the server
    /// runs without a durability layer (all counters are zero).
    DurabilityStats {
        /// Whether the server has a durability layer at all.
        durable: bool,
        /// Total `fsync` calls the WAL issued (group commit shares one
        /// fsync across many frames, so this lags `wal_frames`).
        fsyncs: u64,
        /// WAL frames appended (one per resolved non-noop batch).
        wal_frames: u64,
        /// WAL bytes appended (frame headers included).
        wal_bytes: u64,
        /// Largest number of frames a single fsync covered.
        max_group: u64,
        /// WAL checkpoint rewrites completed.
        checkpoints: u64,
    },
    /// The request failed; the message is the rendered server error.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

/// A request plus its correlation id.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestEnvelope {
    /// Caller-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The request itself.
    pub request: Request,
}

/// A response plus the correlation id it answers.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseEnvelope {
    /// Correlation id of the request this answers.
    pub id: u64,
    /// The response itself.
    pub response: Response,
}

// --- frame I/O -----------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
/// Propagates transport errors.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` is a clean EOF at a frame
/// boundary; EOF inside a frame is [`ProtocolError::Truncated`].
///
/// # Errors
/// Transport errors, truncation, or an oversized length prefix.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut len = [0u8; 4];
    match read_exact_or_eof(r, &mut len)? {
        Filled::Eof => return Ok(None),
        Filled::Partial => return Err(ProtocolError::Truncated),
        Filled::Full => {}
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_or_eof(r, &mut payload)? {
        Filled::Full => Ok(Some(payload)),
        _ => Err(ProtocolError::Truncated),
    }
}

enum Filled {
    Full,
    Partial,
    Eof,
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<Filled, ProtocolError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Filled::Eof
                } else {
                    Filled::Partial
                });
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(err.into()),
        }
    }
    Ok(Filled::Full)
}

// --- payload encoding ----------------------------------------------------

const TAG_PREDICT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_FLUSH: u8 = 3;
const TAG_STATS: u8 = 4;
const TAG_ADD: u8 = 5;
const TAG_TICK: u8 = 6;
const TAG_RECOVERY: u8 = 7;
const TAG_DURABILITY_STATS: u8 = 8;

const TAG_PREDICTED: u8 = 101;
const TAG_DELETED: u8 = 102;
const TAG_FLUSHED: u8 = 103;
const TAG_STATS_REPLY: u8 = 104;
const TAG_ERROR: u8 = 105;
const TAG_APPLIED: u8 = 106;
const TAG_RECOVERY_STATUS: u8 = 107;
const TAG_DURABILITY_STATS_REPLY: u8 = 108;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// `method + 1` as a byte, 0 for `None`, using [`Method::ALL`] positions.
fn put_method(out: &mut Vec<u8>, method: Option<Method>) {
    let code = method
        .and_then(|m| Method::ALL.iter().position(|&x| x == m))
        .map_or(0, |ix| ix as u8 + 1);
    out.push(code);
}

/// Encodes a request envelope into a frame payload.
pub fn encode_request(env: &RequestEnvelope) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, env.id);
    match &env.request {
        Request::Predict { session, features } => {
            out.push(TAG_PREDICT);
            put_str(&mut out, session);
            put_u32(&mut out, features.len() as u32);
            for &x in features {
                put_f64(&mut out, x);
            }
        }
        Request::Delete { session, ids } => {
            out.push(TAG_DELETE);
            put_str(&mut out, session);
            put_u32(&mut out, ids.len() as u32);
            for &id in ids {
                put_u64(&mut out, id);
            }
        }
        Request::Flush { session } => {
            out.push(TAG_FLUSH);
            put_str(&mut out, session);
        }
        Request::Stats { session } => {
            out.push(TAG_STATS);
            put_str(&mut out, session);
        }
        Request::Add {
            session,
            num_features,
            features,
            labels,
        } => {
            out.push(TAG_ADD);
            put_str(&mut out, session);
            put_added_rows(&mut out, *num_features, features, labels);
        }
        Request::Tick {
            session,
            num_features,
            features,
            labels,
            keep_last,
        } => {
            out.push(TAG_TICK);
            put_str(&mut out, session);
            put_added_rows(&mut out, *num_features, features, labels);
            put_u64(&mut out, *keep_last);
        }
        Request::Recovery => out.push(TAG_RECOVERY),
        Request::DurabilityStats => out.push(TAG_DURABILITY_STATS),
    }
    out
}

/// Encodes an appended-rows block: feature width, row count, row-major
/// features, then one label per row.
fn put_added_rows(out: &mut Vec<u8>, num_features: u32, features: &[f64], labels: &[f64]) {
    put_u32(out, num_features);
    put_u32(out, labels.len() as u32);
    for &x in features {
        put_f64(out, x);
    }
    for &y in labels {
        put_f64(out, y);
    }
}

/// Encodes a response envelope into a frame payload.
pub fn encode_response(env: &ResponseEnvelope) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, env.id);
    match &env.response {
        Response::Predicted {
            value,
            class,
            epoch,
        } => {
            out.push(TAG_PREDICTED);
            put_f64(&mut out, *value);
            match class {
                Some(c) => {
                    out.push(1);
                    put_u64(&mut out, *c);
                }
                None => out.push(0),
            }
            put_u64(&mut out, *epoch);
        }
        Response::Deleted {
            requested,
            applied,
            stale,
            batch_rows,
            method,
            seconds,
            epoch,
        } => {
            out.push(TAG_DELETED);
            put_u64(&mut out, *requested);
            put_u64(&mut out, *applied);
            put_u64(&mut out, *stale);
            put_u64(&mut out, *batch_rows);
            put_method(&mut out, *method);
            put_f64(&mut out, *seconds);
            put_u64(&mut out, *epoch);
        }
        Response::Applied {
            added,
            expired,
            batch_rows,
            method,
            seconds,
            epoch,
        } => {
            out.push(TAG_APPLIED);
            put_u64(&mut out, *added);
            put_u64(&mut out, *expired);
            put_u64(&mut out, *batch_rows);
            put_method(&mut out, *method);
            put_f64(&mut out, *seconds);
            put_u64(&mut out, *epoch);
        }
        Response::Flushed => out.push(TAG_FLUSHED),
        Response::Stats {
            epoch,
            num_samples,
            num_features,
            drift,
            pending,
            decisions,
        } => {
            out.push(TAG_STATS_REPLY);
            put_u64(&mut out, *epoch);
            put_u64(&mut out, *num_samples);
            put_u64(&mut out, *num_features);
            put_f64(&mut out, *drift);
            put_u64(&mut out, *pending);
            put_u32(&mut out, decisions.len() as u32);
            for &(method, count) in decisions {
                put_method(&mut out, Some(method));
                put_u64(&mut out, count);
            }
        }
        Response::RecoveryStatus {
            durable,
            wal_records,
            wal_tail,
            snapshot_skips,
            orphan_records,
            sessions,
        } => {
            out.push(TAG_RECOVERY_STATUS);
            out.push(u8::from(*durable));
            put_u64(&mut out, *wal_records);
            match wal_tail {
                Some(tail) => {
                    out.push(1);
                    put_str(&mut out, tail);
                }
                None => out.push(0),
            }
            put_u64(&mut out, *snapshot_skips);
            put_u64(&mut out, *orphan_records);
            put_u32(&mut out, sessions.len() as u32);
            for s in sessions {
                put_str(&mut out, &s.session);
                put_u64(&mut out, s.redone);
                put_u64(&mut out, s.skipped);
                put_u64(&mut out, s.final_epoch);
            }
        }
        Response::DurabilityStats {
            durable,
            fsyncs,
            wal_frames,
            wal_bytes,
            max_group,
            checkpoints,
        } => {
            out.push(TAG_DURABILITY_STATS_REPLY);
            out.push(u8::from(*durable));
            put_u64(&mut out, *fsyncs);
            put_u64(&mut out, *wal_frames);
            put_u64(&mut out, *wal_bytes);
            put_u64(&mut out, *max_group);
            put_u64(&mut out, *checkpoints);
        }
        Response::Error { message } => {
            out.push(TAG_ERROR);
            put_str(&mut out, message);
        }
    }
    out
}

struct PayloadReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> PayloadReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.at.checked_add(n).ok_or(ProtocolError::Truncated)?;
        let slice = self
            .bytes
            .get(self.at..end)
            .ok_or(ProtocolError::Truncated)?;
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }

    /// Decodes an appended-rows block (see [`put_added_rows`]). The
    /// feature count is validated against the payload length by `take`:
    /// a lying prefix truncates.
    #[allow(clippy::type_complexity)]
    fn added_rows(&mut self) -> Result<(u32, Vec<f64>, Vec<f64>), ProtocolError> {
        let num_features = self.u32()?;
        let num_rows = self.u32()? as usize;
        let total = num_rows
            .checked_mul(num_features as usize)
            .ok_or(ProtocolError::Truncated)?;
        let mut features = Vec::with_capacity(total.min(1 << 16));
        for _ in 0..total {
            features.push(self.f64()?);
        }
        let mut labels = Vec::with_capacity(num_rows.min(1 << 16));
        for _ in 0..num_rows {
            labels.push(self.f64()?);
        }
        Ok((num_features, features, labels))
    }

    fn method(&mut self) -> Result<Option<Method>, ProtocolError> {
        let code = self.u8()?;
        if code == 0 {
            return Ok(None);
        }
        Method::ALL
            .get(code as usize - 1)
            .copied()
            .map(Some)
            .ok_or(ProtocolError::BadTag(code))
    }

    fn finish(self) -> Result<(), ProtocolError> {
        let left = self.bytes.len() - self.at;
        if left == 0 {
            Ok(())
        } else {
            Err(ProtocolError::TrailingBytes(left))
        }
    }
}

/// Decodes a frame payload into a request envelope.
///
/// # Errors
/// Truncated/oversized fields, unknown tags, invalid UTF-8, trailing
/// bytes.
pub fn decode_request(payload: &[u8]) -> Result<RequestEnvelope, ProtocolError> {
    let mut r = PayloadReader::new(payload);
    let id = r.u64()?;
    let tag = r.u8()?;
    let request = match tag {
        TAG_PREDICT => {
            let session = r.str()?;
            let n = r.u32()? as usize;
            let mut features = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                features.push(r.f64()?);
            }
            Request::Predict { session, features }
        }
        TAG_DELETE => {
            let session = r.str()?;
            let n = r.u32()? as usize;
            let mut ids = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                ids.push(r.u64()?);
            }
            Request::Delete { session, ids }
        }
        TAG_FLUSH => Request::Flush { session: r.str()? },
        TAG_STATS => Request::Stats { session: r.str()? },
        TAG_ADD => {
            let session = r.str()?;
            let (num_features, features, labels) = r.added_rows()?;
            Request::Add {
                session,
                num_features,
                features,
                labels,
            }
        }
        TAG_TICK => {
            let session = r.str()?;
            let (num_features, features, labels) = r.added_rows()?;
            Request::Tick {
                session,
                num_features,
                features,
                labels,
                keep_last: r.u64()?,
            }
        }
        TAG_RECOVERY => Request::Recovery,
        TAG_DURABILITY_STATS => Request::DurabilityStats,
        other => return Err(ProtocolError::BadTag(other)),
    };
    r.finish()?;
    Ok(RequestEnvelope { id, request })
}

/// Decodes a frame payload into a response envelope.
///
/// # Errors
/// Same failure modes as [`decode_request`].
pub fn decode_response(payload: &[u8]) -> Result<ResponseEnvelope, ProtocolError> {
    let mut r = PayloadReader::new(payload);
    let id = r.u64()?;
    let tag = r.u8()?;
    let response = match tag {
        TAG_PREDICTED => {
            let value = r.f64()?;
            let class = if r.u8()? == 1 { Some(r.u64()?) } else { None };
            Response::Predicted {
                value,
                class,
                epoch: r.u64()?,
            }
        }
        TAG_DELETED => Response::Deleted {
            requested: r.u64()?,
            applied: r.u64()?,
            stale: r.u64()?,
            batch_rows: r.u64()?,
            method: r.method()?,
            seconds: r.f64()?,
            epoch: r.u64()?,
        },
        TAG_APPLIED => Response::Applied {
            added: r.u64()?,
            expired: r.u64()?,
            batch_rows: r.u64()?,
            method: r.method()?,
            seconds: r.f64()?,
            epoch: r.u64()?,
        },
        TAG_FLUSHED => Response::Flushed,
        TAG_STATS_REPLY => {
            let epoch = r.u64()?;
            let num_samples = r.u64()?;
            let num_features = r.u64()?;
            let drift = r.f64()?;
            let pending = r.u64()?;
            let n = r.u32()? as usize;
            let mut decisions = Vec::with_capacity(n.min(Method::ALL.len()));
            for _ in 0..n {
                let method = r.method()?.ok_or(ProtocolError::BadTag(0))?;
                decisions.push((method, r.u64()?));
            }
            Response::Stats {
                epoch,
                num_samples,
                num_features,
                drift,
                pending,
                decisions,
            }
        }
        TAG_RECOVERY_STATUS => {
            let durable = r.u8()? == 1;
            let wal_records = r.u64()?;
            let wal_tail = if r.u8()? == 1 { Some(r.str()?) } else { None };
            let snapshot_skips = r.u64()?;
            let orphan_records = r.u64()?;
            let n = r.u32()? as usize;
            let mut sessions = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                sessions.push(RecoverySessionStatus {
                    session: r.str()?,
                    redone: r.u64()?,
                    skipped: r.u64()?,
                    final_epoch: r.u64()?,
                });
            }
            Response::RecoveryStatus {
                durable,
                wal_records,
                wal_tail,
                snapshot_skips,
                orphan_records,
                sessions,
            }
        }
        TAG_DURABILITY_STATS_REPLY => Response::DurabilityStats {
            durable: r.u8()? == 1,
            fsyncs: r.u64()?,
            wal_frames: r.u64()?,
            wal_bytes: r.u64()?,
            max_group: r.u64()?,
            checkpoints: r.u64()?,
        },
        TAG_ERROR => Response::Error { message: r.str()? },
        other => return Err(ProtocolError::BadTag(other)),
    };
    r.finish()?;
    Ok(ResponseEnvelope { id, response })
}

// --- the dedicated reader thread -----------------------------------------

/// Spawns the per-connection reader thread: it blocks on the transport,
/// decodes each frame with `decode`, and pushes the results into the
/// returned message queue. A clean EOF (or the receiver being dropped)
/// ends the thread and closes the queue; a decode or transport error is
/// delivered as the queue's final message.
pub fn spawn_frame_reader<R, T, F>(
    mut transport: R,
    decode: F,
) -> (Receiver<Result<T, ProtocolError>>, JoinHandle<()>)
where
    R: Read + Send + 'static,
    T: Send + 'static,
    F: Fn(&[u8]) -> Result<T, ProtocolError> + Send + 'static,
{
    let (tx, rx) = channel();
    let handle = thread::Builder::new()
        .name("priu-server-reader".to_string())
        .spawn(move || loop {
            match read_frame(&mut transport) {
                Ok(None) => break,
                Ok(Some(payload)) => {
                    if tx.send(decode(&payload)).is_err() {
                        break;
                    }
                }
                Err(err) => {
                    let _ = tx.send(Err(err));
                    break;
                }
            }
        })
        .expect("spawn reader thread");
    (rx, handle)
}

// --- in-memory transport -------------------------------------------------

#[derive(Debug, Default)]
struct PipeShared {
    buf: Vec<u8>,
    writer_closed: bool,
    reader_closed: bool,
}

#[derive(Debug, Default)]
struct PipeInner {
    shared: Mutex<PipeShared>,
    readable: Condvar,
}

/// The write half of an in-memory byte pipe.
#[derive(Debug)]
pub struct PipeWriter {
    inner: Arc<PipeInner>,
}

/// The read half of an in-memory byte pipe.
#[derive(Debug)]
pub struct PipeReader {
    inner: Arc<PipeInner>,
}

/// A unidirectional in-memory byte pipe with blocking reads — the
/// sandbox-friendly stand-in for a socket. Dropping the writer delivers
/// EOF to the reader; dropping the reader turns writes into
/// `BrokenPipe`.
pub fn pipe() -> (PipeWriter, PipeReader) {
    let inner = Arc::new(PipeInner::default());
    (
        PipeWriter {
            inner: inner.clone(),
        },
        PipeReader { inner },
    )
}

/// A bidirectional in-memory connection: two pipes crossed over. Returns
/// `(client, server)` halves, each a `(writer, reader)` pair.
#[allow(clippy::type_complexity)]
pub fn duplex() -> ((PipeWriter, PipeReader), (PipeWriter, PipeReader)) {
    let (client_w, server_r) = pipe();
    let (server_w, client_r) = pipe();
    ((client_w, client_r), (server_w, server_r))
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut shared = self
            .inner
            .shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if shared.reader_closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "pipe reader dropped",
            ));
        }
        shared.buf.extend_from_slice(buf);
        self.inner.readable.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let mut shared = self
            .inner
            .shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        shared.writer_closed = true;
        self.inner.readable.notify_all();
    }
}

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut shared = self
            .inner
            .shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while shared.buf.is_empty() && !shared.writer_closed {
            shared = self
                .inner
                .readable
                .wait(shared)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if shared.buf.is_empty() {
            return Ok(0); // writer closed: EOF
        }
        let n = buf.len().min(shared.buf.len());
        buf[..n].copy_from_slice(&shared.buf[..n]);
        shared.buf.drain(..n);
        Ok(n)
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        let mut shared = self
            .inner
            .shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        shared.reader_closed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: Request) {
        let env = RequestEnvelope { id: 42, request };
        let decoded = decode_request(&encode_request(&env)).unwrap();
        assert_eq!(decoded, env);
    }

    fn round_trip_response(response: Response) {
        let env = ResponseEnvelope { id: 7, response };
        let decoded = decode_response(&encode_response(&env)).unwrap();
        assert_eq!(decoded, env);
    }

    #[test]
    fn every_message_round_trips_bit_exactly() {
        round_trip_request(Request::Predict {
            session: "tenant/model".into(),
            features: vec![0.0, -1.5, f64::MIN_POSITIVE, 1.0e300, -0.0],
        });
        round_trip_request(Request::Delete {
            session: "s".into(),
            ids: vec![0, u64::MAX, 17],
        });
        round_trip_request(Request::Flush {
            session: "s".into(),
        });
        round_trip_request(Request::Stats {
            session: "πρ/iu".into(),
        });
        round_trip_request(Request::Add {
            session: "s".into(),
            num_features: 3,
            features: vec![1.0, -2.5, 0.0, 4.0, f64::MAX, -0.0],
            labels: vec![1.0, -1.0],
        });
        round_trip_request(Request::Add {
            session: "s".into(),
            num_features: 0,
            features: vec![],
            labels: vec![],
        });
        round_trip_request(Request::Tick {
            session: "window".into(),
            num_features: 2,
            features: vec![0.5, 0.25],
            labels: vec![7.0],
            keep_last: 1000,
        });
        round_trip_request(Request::Tick {
            session: "shrink-only".into(),
            num_features: 4,
            features: vec![],
            labels: vec![],
            keep_last: 64,
        });

        round_trip_response(Response::Predicted {
            value: -3.25,
            class: Some(2),
            epoch: 9,
        });
        round_trip_response(Response::Predicted {
            value: f64::NEG_INFINITY,
            class: None,
            epoch: 0,
        });
        for method in Method::ALL.iter().map(|&m| Some(m)).chain([None]) {
            round_trip_response(Response::Deleted {
                requested: 3,
                applied: 2,
                stale: 1,
                batch_rows: 5,
                method,
                seconds: 0.001953125,
                epoch: 4,
            });
        }
        for method in [Some(Method::ClosedForm), None] {
            round_trip_response(Response::Applied {
                added: 12,
                expired: 7,
                batch_rows: 9,
                method,
                seconds: 0.25,
                epoch: 3,
            });
        }
        round_trip_response(Response::Flushed);
        round_trip_response(Response::Stats {
            epoch: 12,
            num_samples: 4800,
            num_features: 16,
            drift: 0.04,
            pending: 3,
            decisions: Method::ALL.iter().map(|&m| (m, 2)).collect(),
        });
        round_trip_request(Request::DurabilityStats);
        round_trip_response(Response::DurabilityStats {
            durable: true,
            fsyncs: 7,
            wal_frames: 41,
            wal_bytes: 9001,
            max_group: 12,
            checkpoints: 2,
        });
        round_trip_response(Response::DurabilityStats {
            durable: false,
            fsyncs: 0,
            wal_frames: 0,
            wal_bytes: 0,
            max_group: 0,
            checkpoints: 0,
        });
        round_trip_response(Response::Error {
            message: "unknown session \"x\"".into(),
        });
    }

    #[test]
    fn f64_payloads_are_bit_exact_including_nan() {
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let env = RequestEnvelope {
            id: 1,
            request: Request::Predict {
                session: "s".into(),
                features: vec![nan],
            },
        };
        let decoded = decode_request(&encode_request(&env)).unwrap();
        match decoded.request {
            Request::Predict { features, .. } => {
                assert_eq!(features[0].to_bits(), nan.to_bits());
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_are_rejected_with_typed_errors() {
        let good = encode_request(&RequestEnvelope {
            id: 5,
            request: Request::Delete {
                session: "s".into(),
                ids: vec![1, 2, 3],
            },
        });
        // Truncation anywhere inside the payload.
        for cut in 0..good.len() {
            assert!(
                matches!(decode_request(&good[..cut]), Err(ProtocolError::Truncated)),
                "cut at {cut}"
            );
        }
        // Unknown tag.
        let mut bad_tag = good.clone();
        bad_tag[8] = 0xee;
        assert!(matches!(
            decode_request(&bad_tag),
            Err(ProtocolError::BadTag(0xee))
        ));
        // Trailing bytes.
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            decode_request(&trailing),
            Err(ProtocolError::TrailingBytes(1))
        ));
        // Invalid UTF-8 in the session name.
        let mut bad_utf8 = good;
        bad_utf8[13] = 0xff; // first byte of the 1-byte session string
        assert!(matches!(
            decode_request(&bad_utf8),
            Err(ProtocolError::BadUtf8)
        ));
        // Bad method code in a response.
        let mut resp = encode_response(&ResponseEnvelope {
            id: 1,
            response: Response::Deleted {
                requested: 1,
                applied: 1,
                stale: 0,
                batch_rows: 1,
                method: Some(Method::Priu),
                seconds: 0.0,
                epoch: 1,
            },
        });
        let method_at = 8 + 1 + 4 * 8;
        resp[method_at] = 200;
        assert!(matches!(
            decode_response(&resp),
            Err(ProtocolError::BadTag(200))
        ));
    }

    #[test]
    fn malformed_added_rows_are_rejected() {
        let good = encode_request(&RequestEnvelope {
            id: 9,
            request: Request::Add {
                session: "s".into(),
                num_features: 2,
                features: vec![1.0, 2.0, 3.0, 4.0],
                labels: vec![1.0, -1.0],
            },
        });
        // Truncation anywhere inside the payload.
        for cut in 0..good.len() {
            assert!(
                matches!(decode_request(&good[..cut]), Err(ProtocolError::Truncated)),
                "cut at {cut}"
            );
        }
        // A row count lying about the feature payload truncates.
        // Layout: id(8) tag(1) strlen(4) "s"(1) num_features(4) num_rows(4).
        let rows_at = 8 + 1 + 4 + 1 + 4;
        let mut lying = good.clone();
        lying[rows_at..rows_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_request(&lying),
            Err(ProtocolError::Truncated)
        ));
        // Extra payload after the labels is trailing bytes.
        let mut trailing = good;
        trailing.extend_from_slice(&[0; 8]);
        assert!(matches!(
            decode_request(&trailing),
            Err(ProtocolError::TrailingBytes(8))
        ));
        // A tick cut before `keep_last` truncates.
        let tick = encode_request(&RequestEnvelope {
            id: 9,
            request: Request::Tick {
                session: "s".into(),
                num_features: 1,
                features: vec![1.0],
                labels: vec![1.0],
                keep_last: 3,
            },
        });
        assert!(matches!(
            decode_request(&tick[..tick.len() - 8]),
            Err(ProtocolError::Truncated)
        ));
    }

    #[test]
    fn frames_reject_oversized_lengths_and_detect_truncation() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        let mut cursor = io::Cursor::new(wire.clone());
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");

        // EOF inside the payload.
        let mut cursor = io::Cursor::new(wire[..wire.len() - 2].to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtocolError::Truncated)
        ));
        // EOF inside the length prefix.
        let mut cursor = io::Cursor::new(wire[..2].to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtocolError::Truncated)
        ));
        // Hostile length prefix.
        let mut cursor = io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtocolError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn reader_thread_feeds_the_message_queue_and_ends_on_eof() {
        let (mut writer, reader) = pipe();
        let (rx, handle) = spawn_frame_reader(reader, decode_request);
        for id in 0..3u64 {
            let payload = encode_request(&RequestEnvelope {
                id,
                request: Request::Flush {
                    session: "s".into(),
                },
            });
            write_frame(&mut writer, &payload).unwrap();
        }
        for id in 0..3u64 {
            let env = rx.recv().unwrap().unwrap();
            assert_eq!(env.id, id);
        }
        drop(writer); // EOF → reader thread exits, queue closes
        assert!(rx.recv().is_err());
        handle.join().unwrap();
    }

    #[test]
    fn reader_thread_surfaces_mid_frame_eof_as_an_error() {
        let (mut writer, reader) = pipe();
        let (rx, handle) = spawn_frame_reader(reader, decode_request);
        writer.write_all(&100u32.to_le_bytes()).unwrap();
        writer.write_all(b"short").unwrap();
        drop(writer);
        assert!(matches!(rx.recv().unwrap(), Err(ProtocolError::Truncated)));
        assert!(rx.recv().is_err());
        handle.join().unwrap();
    }

    #[test]
    fn pipe_blocks_readers_until_data_or_eof_and_breaks_dropped_writes() {
        let (mut writer, mut reader) = pipe();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 5];
            reader.read_exact(&mut buf).unwrap();
            assert_eq!(&buf, b"delay");
            let mut rest = Vec::new();
            reader.read_to_end(&mut rest).unwrap();
            assert!(rest.is_empty());
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        writer.write_all(b"delay").unwrap();
        drop(writer);
        t.join().unwrap();

        let (mut writer, reader) = pipe();
        drop(reader);
        assert_eq!(
            writer.write(b"x").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }
}
