//! # priu-server — deletion as a service
//!
//! A multi-session server over the PrIU deletion engines: models keep
//! answering predictions while training-data deletions are honored
//! incrementally in the background.
//!
//! The pieces, each in its own module:
//!
//! * [`registry`] — named sessions with shared/exclusive access: predicts
//!   run on immutable snapshots (shared), deletion batches hold a
//!   per-session exclusive gate and commit by pointer swap, so a long
//!   downdate never blocks a predict.
//! * [`planner`] — admission + coalescing: N single-row deletion requests
//!   fold into one batched downdate per session, gated by a time window
//!   and a max batch size. The coalesced batch is *one* engine `apply`
//!   with the union removal set — identical to the call a direct engine
//!   user would make, hence bitwise-reproducible under the same
//!   `PRIU_THREADS` × `PRIU_SIMD` pin.
//! * [`scheduler`] — a cost model picks PrIU / PrIU-opt / closed-form /
//!   full-retrain per batch from calibrated per-row throughputs refined
//!   online, and forces a retrain once accumulated deletion drift crosses
//!   a threshold.
//! * [`protocol`] — a length-prefixed wire format over any `Read`/`Write`
//!   transport, with a dedicated reader thread feeding a message queue
//!   per connection.
//! * [`server`] — wires the above to one applier thread; concurrent
//!   session batches fan out over the shared `priu-linalg` worker pool.
//! * [`wal`] / [`snapshot`] / [`recovery`] — the durability layer: an
//!   append-only CRC-checksummed WAL with *group commit* (concurrent
//!   batches share one fsync; every ack still waits for it), atomic
//!   per-session snapshots cut on a dedicated background thread via
//!   copy-on-write handoff of the committed session `Arc`, periodic WAL
//!   checkpoints that rewrite the log down to the suffix not yet covered
//!   by every session's snapshots, and restart recovery that redoes the
//!   WAL suffix through the normal `apply_delta` path — recovered models
//!   are bitwise identical to the pre-crash state under the same
//!   thread/SIMD pin.
//! * [`failpoint`] — named crash points (`PRIU_FAILPOINT`) the
//!   crash-recovery torture suite uses to abort the process at exact
//!   instants in the commit/snapshot/recovery paths.

pub mod error;
pub mod failpoint;
pub mod planner;
pub mod protocol;
pub mod recovery;
pub mod registry;
pub mod scheduler;
pub mod server;
pub mod snapshot;
pub mod wal;

pub use error::{Result, ServerError};
pub use failpoint::{fail_point, FAILPOINT_ENV};
pub use planner::{AddedRows, BatchReply, DeleteTicket, PlannerConfig};
pub use protocol::{
    decode_request, decode_response, duplex, encode_request, encode_response, pipe, read_frame,
    spawn_frame_reader, write_frame, PipeReader, PipeWriter, ProtocolError, RecoverySessionStatus,
    Request, RequestEnvelope, Response, ResponseEnvelope,
};
pub use recovery::{RecoveryReport, SessionRecovery, WAL_FILE};
pub use registry::{SessionRegistry, SessionSlot};
pub use scheduler::{Calibration, CostModel, SchedulerConfig};
pub use server::{
    ConnectionHandle, DurabilityConfig, Prediction, Server, ServerConfig, SessionStats,
};
pub use snapshot::{SkippedSnapshot, SNAPSHOT_MAGIC};
pub use wal::{
    crc32, scan_wal, CheckpointRecord, GroupCommitConfig, GroupWal, Wal, WalRecord, WalScan,
    WalStats, WalTail, MAX_WAL_FRAME_BYTES,
};
