//! # priu-server — deletion as a service
//!
//! A multi-session server over the PrIU deletion engines: models keep
//! answering predictions while training-data deletions are honored
//! incrementally in the background.
//!
//! The pieces, each in its own module:
//!
//! * [`registry`] — named sessions with shared/exclusive access: predicts
//!   run on immutable snapshots (shared), deletion batches hold a
//!   per-session exclusive gate and commit by pointer swap, so a long
//!   downdate never blocks a predict.
//! * [`planner`] — admission + coalescing: N single-row deletion requests
//!   fold into one batched downdate per session, gated by a time window
//!   and a max batch size. The coalesced batch is *one* engine `apply`
//!   with the union removal set — identical to the call a direct engine
//!   user would make, hence bitwise-reproducible under the same
//!   `PRIU_THREADS` × `PRIU_SIMD` pin.
//! * [`scheduler`] — a cost model picks PrIU / PrIU-opt / closed-form /
//!   full-retrain per batch from calibrated per-row throughputs refined
//!   online, and forces a retrain once accumulated deletion drift crosses
//!   a threshold.
//! * [`protocol`] — a length-prefixed wire format over any `Read`/`Write`
//!   transport, with a dedicated reader thread feeding a message queue
//!   per connection.
//! * [`server`] — wires the above to one applier thread; concurrent
//!   session batches fan out over the shared `priu-linalg` worker pool.

pub mod error;
pub mod planner;
pub mod protocol;
pub mod registry;
pub mod scheduler;
pub mod server;

pub use error::{Result, ServerError};
pub use planner::{AddedRows, BatchReply, DeleteTicket, PlannerConfig};
pub use protocol::{
    decode_request, decode_response, duplex, encode_request, encode_response, pipe, read_frame,
    spawn_frame_reader, write_frame, PipeReader, PipeWriter, ProtocolError, Request,
    RequestEnvelope, Response, ResponseEnvelope,
};
pub use registry::{SessionRegistry, SessionSlot};
pub use scheduler::{Calibration, CostModel, SchedulerConfig};
pub use server::{ConnectionHandle, Prediction, Server, ServerConfig, SessionStats};
