//! Model parameters for the three regression families the paper covers.

use crate::error::{CoreError, Result};
use priu_linalg::{CsrMatrix, Matrix, Vector};

/// Which regression family a model belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Linear regression (Eq. 2).
    Linear,
    /// Binary logistic regression with labels in `{-1, +1}` (Eq. 3).
    BinaryLogistic,
    /// Multinomial logistic regression with `q` classes (Eq. 4).
    MultinomialLogistic {
        /// Number of classes `q`.
        num_classes: usize,
    },
}

impl ModelKind {
    /// Number of per-class weight vectors this kind carries.
    pub fn num_weight_vectors(&self) -> usize {
        match self {
            ModelKind::Linear | ModelKind::BinaryLogistic => 1,
            ModelKind::MultinomialLogistic { num_classes } => *num_classes,
        }
    }
}

/// A trained (or incrementally updated) model: one weight vector per class
/// (a single vector for linear and binary logistic regression).
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    kind: ModelKind,
    weights: Vec<Vector>,
}

impl Model {
    /// Creates a model from explicit weight vectors.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidConfig`] if the number of weight vectors
    /// does not match the kind or the vectors have inconsistent lengths.
    pub fn new(kind: ModelKind, weights: Vec<Vector>) -> Result<Self> {
        if weights.len() != kind.num_weight_vectors() {
            return Err(CoreError::InvalidConfig(format!(
                "expected {} weight vectors, got {}",
                kind.num_weight_vectors(),
                weights.len()
            )));
        }
        if weights.is_empty() {
            return Err(CoreError::InvalidConfig(
                "a model needs at least one weight vector".to_string(),
            ));
        }
        let m = weights[0].len();
        if weights.iter().any(|w| w.len() != m) {
            return Err(CoreError::InvalidConfig(
                "all weight vectors must have the same length".to_string(),
            ));
        }
        Ok(Self { kind, weights })
    }

    /// A zero-initialised model with `num_features` features.
    pub fn zeros(kind: ModelKind, num_features: usize) -> Self {
        let weights = (0..kind.num_weight_vectors())
            .map(|_| Vector::zeros(num_features))
            .collect();
        Self { kind, weights }
    }

    /// The model family.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Number of features `m`.
    pub fn num_features(&self) -> usize {
        self.weights[0].len()
    }

    /// Total number of parameters (`m` or `m·q`).
    pub fn num_parameters(&self) -> usize {
        self.weights.len() * self.num_features()
    }

    /// The per-class weight vectors.
    pub fn weights(&self) -> &[Vector] {
        &self.weights
    }

    /// Mutable access to the per-class weight vectors.
    pub fn weights_mut(&mut self) -> &mut [Vector] {
        &mut self.weights
    }

    /// The single weight vector of a linear / binary-logistic model.
    ///
    /// # Panics
    /// Panics for multinomial models with more than one class vector.
    pub fn weight(&self) -> &Vector {
        assert_eq!(
            self.weights.len(),
            1,
            "Model::weight is only defined for single-vector models"
        );
        &self.weights[0]
    }

    /// The flattened parameter vector `vec([w_1, .., w_q])` used by the
    /// paper's model-comparison metrics.
    pub fn flatten(&self) -> Vector {
        Vector::concat(&self.weights)
    }

    /// Whether every parameter is finite.
    pub fn is_finite(&self) -> bool {
        self.weights.iter().all(Vector::is_finite)
    }

    /// Linear-regression prediction for a dense feature row.
    pub fn predict_linear(&self, features: &[f64]) -> f64 {
        dot(self.weights[0].as_slice(), features)
    }

    /// Decision value `w·x` of a binary-logistic model (positive ⇒ class +1).
    pub fn decision_value(&self, features: &[f64]) -> f64 {
        dot(self.weights[0].as_slice(), features)
    }

    /// Predicted probability of the positive class for a binary model.
    pub fn predict_probability(&self, features: &[f64]) -> f64 {
        1.0 / (1.0 + (-self.decision_value(features)).exp())
    }

    /// Predicted class index for a multinomial (or binary) model on a dense
    /// feature row. For binary models, returns 1 for the positive class and
    /// 0 for the negative class.
    pub fn predict_class(&self, features: &[f64]) -> usize {
        match self.kind {
            ModelKind::Linear => 0,
            ModelKind::BinaryLogistic => {
                if self.decision_value(features) >= 0.0 {
                    1
                } else {
                    0
                }
            }
            ModelKind::MultinomialLogistic { .. } => {
                let mut best = 0;
                let mut best_score = f64::NEG_INFINITY;
                for (k, w) in self.weights.iter().enumerate() {
                    let s = dot(w.as_slice(), features);
                    if s > best_score {
                        best_score = s;
                        best = k;
                    }
                }
                best
            }
        }
    }

    /// Per-class logits for a dense feature row.
    pub fn logits(&self, features: &[f64]) -> Vector {
        Vector::from_vec(
            self.weights
                .iter()
                .map(|w| dot(w.as_slice(), features))
                .collect(),
        )
    }

    /// Decision value of a binary model on a sparse row of a [`CsrMatrix`].
    pub fn decision_value_sparse(&self, x: &CsrMatrix, row: usize) -> f64 {
        let (cols, vals) = x.row(row);
        cols.iter()
            .zip(vals.iter())
            .map(|(&c, &v)| v * self.weights[0][c])
            .sum()
    }

    /// Batch of linear predictions `X w` for a dense feature matrix.
    ///
    /// # Errors
    /// Propagates shape mismatches from the matrix-vector product.
    pub fn predict_linear_batch(&self, x: &Matrix) -> Result<Vector> {
        Ok(x.matvec(&self.weights[0])?)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Model::new(ModelKind::Linear, vec![Vector::zeros(3)]).is_ok());
        assert!(Model::new(ModelKind::Linear, vec![]).is_err());
        assert!(Model::new(
            ModelKind::MultinomialLogistic { num_classes: 3 },
            vec![Vector::zeros(2); 2]
        )
        .is_err());
        assert!(Model::new(
            ModelKind::MultinomialLogistic { num_classes: 2 },
            vec![Vector::zeros(2), Vector::zeros(3)]
        )
        .is_err());
    }

    #[test]
    fn zeros_and_accessors() {
        let m = Model::zeros(ModelKind::MultinomialLogistic { num_classes: 4 }, 5);
        assert_eq!(m.num_features(), 5);
        assert_eq!(m.num_parameters(), 20);
        assert_eq!(m.weights().len(), 4);
        assert_eq!(m.flatten().len(), 20);
        assert!(m.is_finite());
        assert_eq!(m.kind(), ModelKind::MultinomialLogistic { num_classes: 4 });
        assert_eq!(ModelKind::Linear.num_weight_vectors(), 1);
    }

    #[test]
    fn linear_prediction() {
        let m = Model::new(ModelKind::Linear, vec![Vector::from_vec(vec![1.0, -2.0])]).unwrap();
        assert_eq!(m.predict_linear(&[3.0, 1.0]), 1.0);
        assert_eq!(m.weight().as_slice(), &[1.0, -2.0]);
        let x = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let preds = m.predict_linear_batch(&x).unwrap();
        assert_eq!(preds.as_slice(), &[1.0, -2.0]);
    }

    #[test]
    fn binary_prediction() {
        let m = Model::new(
            ModelKind::BinaryLogistic,
            vec![Vector::from_vec(vec![2.0, 0.0])],
        )
        .unwrap();
        assert_eq!(m.predict_class(&[1.0, 0.0]), 1);
        assert_eq!(m.predict_class(&[-1.0, 0.0]), 0);
        assert!((m.predict_probability(&[0.0, 0.0]) - 0.5).abs() < 1e-12);
        assert!(m.predict_probability(&[5.0, 0.0]) > 0.99);
    }

    #[test]
    fn multiclass_prediction() {
        let m = Model::new(
            ModelKind::MultinomialLogistic { num_classes: 3 },
            vec![
                Vector::from_vec(vec![1.0, 0.0]),
                Vector::from_vec(vec![0.0, 1.0]),
                Vector::from_vec(vec![-1.0, -1.0]),
            ],
        )
        .unwrap();
        assert_eq!(m.predict_class(&[2.0, 0.1]), 0);
        assert_eq!(m.predict_class(&[0.1, 2.0]), 1);
        assert_eq!(m.predict_class(&[-3.0, -3.0]), 2);
        assert_eq!(m.logits(&[1.0, 1.0]).len(), 3);
    }

    #[test]
    fn sparse_decision_value() {
        let dense = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]).unwrap();
        let xs = CsrMatrix::from_dense(&dense);
        let m = Model::new(
            ModelKind::BinaryLogistic,
            vec![Vector::from_vec(vec![1.0, 1.0, -1.0])],
        )
        .unwrap();
        assert_eq!(m.decision_value_sparse(&xs, 0), -1.0);
        assert_eq!(m.decision_value_sparse(&xs, 1), 3.0);
    }

    #[test]
    #[should_panic(expected = "single-vector")]
    fn weight_panics_for_multinomial() {
        Model::zeros(ModelKind::MultinomialLogistic { num_classes: 2 }, 3).weight();
    }
}
