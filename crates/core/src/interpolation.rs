//! Piecewise linear interpolation of the logistic non-linearity (§4.2).
//!
//! The non-linear part of the binary-logistic update rule (Eq. 6) is
//! `f(x) = 1 − 1/(1 + e^{−x})` (i.e. `σ(−x)`), evaluated at `x = y_i w^T x_i`.
//! PrIU replaces `f` with a piecewise-linear interpolant `s(x) = a·x + b`
//! on `[-A, A]` split into `K` equal sub-intervals (the paper uses `A = 20`,
//! `K = 10^6`); outside the range `s` is the constant `f(±A)`. The
//! interpolation error is `O((Δx)²)` (Lemma 9 / Theorem 4), which this
//! module's tests verify empirically.
//!
//! The same interpolant is reused for the multinomial case through the
//! increasing sigmoid `σ(u) = 1/(1+e^{-u})` evaluated at the per-class
//! margin minus a captured log-sum-exp offset (see `trainer::logistic`).

/// Linear coefficients `(slope, intercept)` of one interpolation segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Slope `a` of `s(x) = a·x + b`.
    pub slope: f64,
    /// Intercept `b` of `s(x) = a·x + b`.
    pub intercept: f64,
}

impl Segment {
    /// Evaluates the segment at `x`.
    pub fn evaluate(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// A piecewise-linear interpolant of `f(x) = 1 − 1/(1+e^{−x})` on `[-a, a]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiecewiseLinearSigmoid {
    half_range: f64,
    num_intervals: usize,
    step: f64,
}

impl Default for PiecewiseLinearSigmoid {
    /// The paper's configuration: range `[-20, 20]`, 10⁶ sub-intervals.
    fn default() -> Self {
        Self::new(20.0, 1_000_000)
    }
}

impl PiecewiseLinearSigmoid {
    /// Creates an interpolant over `[-half_range, half_range]` with
    /// `num_intervals` equal sub-intervals.
    ///
    /// # Panics
    /// Panics if `half_range <= 0` or `num_intervals == 0`.
    pub fn new(half_range: f64, num_intervals: usize) -> Self {
        assert!(half_range > 0.0, "half_range must be positive");
        assert!(num_intervals > 0, "need at least one sub-interval");
        Self {
            half_range,
            num_intervals,
            step: 2.0 * half_range / num_intervals as f64,
        }
    }

    /// The exact non-linearity `f(x) = 1 − 1/(1+e^{−x}) = σ(−x)`.
    pub fn exact(x: f64) -> f64 {
        1.0 / (1.0 + x.exp())
    }

    /// The exact increasing sigmoid `σ(x) = 1/(1+e^{−x})`.
    pub fn exact_sigmoid(x: f64) -> f64 {
        1.0 / (1.0 + (-x).exp())
    }

    /// Length `Δx` of one sub-interval.
    pub fn interval_length(&self) -> f64 {
        self.step
    }

    /// Number of sub-intervals `K`.
    pub fn num_intervals(&self) -> usize {
        self.num_intervals
    }

    /// Half-range `A` of the interpolation domain `[-A, A]`.
    pub fn half_range(&self) -> f64 {
        self.half_range
    }

    /// The linear coefficients `(a, b)` of `f` at `x` — the `a_{i,(t)}`,
    /// `b_{i,(t)}` of Eq. 9. Outside `[-A, A]` the segment is the constant
    /// `f(±A)` (slope 0), per the paper.
    pub fn coefficients(&self, x: f64) -> Segment {
        if x <= -self.half_range {
            return Segment {
                slope: 0.0,
                intercept: Self::exact(-self.half_range),
            };
        }
        if x >= self.half_range {
            return Segment {
                slope: 0.0,
                intercept: Self::exact(self.half_range),
            };
        }
        let idx = ((x + self.half_range) / self.step).floor() as usize;
        let idx = idx.min(self.num_intervals - 1);
        let x0 = -self.half_range + idx as f64 * self.step;
        let x1 = x0 + self.step;
        let f0 = Self::exact(x0);
        let f1 = Self::exact(x1);
        let slope = (f1 - f0) / self.step;
        let intercept = f0 - slope * x0;
        Segment { slope, intercept }
    }

    /// The interpolated value `s(x)`.
    pub fn evaluate(&self, x: f64) -> f64 {
        self.coefficients(x).evaluate(x)
    }

    /// The linear coefficients of the *increasing* sigmoid `σ(x)` at `x`,
    /// obtained from `σ(x) = 1 − f(x)`: slope `-a`, intercept `1 − b`.
    pub fn sigmoid_coefficients(&self, x: f64) -> Segment {
        let seg = self.coefficients(x);
        Segment {
            slope: -seg.slope,
            intercept: 1.0 - seg.intercept,
        }
    }

    /// The theoretical worst-case interpolation error bound
    /// `(Δx)²/8 · max|f''|` from Lemma 9 (`max|f''| ≤ 1/(6√3)` for the
    /// sigmoid family).
    pub fn error_bound(&self) -> f64 {
        let max_second_derivative = 1.0 / (6.0 * 3.0_f64.sqrt());
        self.step * self.step / 8.0 * max_second_derivative
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches_closed_form() {
        assert!((PiecewiseLinearSigmoid::exact(0.0) - 0.5).abs() < 1e-12);
        assert!(PiecewiseLinearSigmoid::exact(20.0) < 1e-8);
        assert!(PiecewiseLinearSigmoid::exact(-20.0) > 1.0 - 1e-8);
        assert!((PiecewiseLinearSigmoid::exact_sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(
            (PiecewiseLinearSigmoid::exact(1.3) + PiecewiseLinearSigmoid::exact_sigmoid(1.3) - 1.0)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn interpolation_is_accurate_inside_the_range() {
        let interp = PiecewiseLinearSigmoid::default();
        for &x in &[-19.5, -3.0, -0.7, 0.0, 0.2, 1.0, 5.0, 18.9] {
            let err = (interp.evaluate(x) - PiecewiseLinearSigmoid::exact(x)).abs();
            assert!(err <= interp.error_bound() * 1.01, "error {err} at x={x}");
        }
    }

    #[test]
    fn interpolation_error_shrinks_quadratically() {
        // Halving Δx should roughly quarter the worst observed error — the
        // O((Δx)²) behaviour of Theorem 4.
        let coarse = PiecewiseLinearSigmoid::new(8.0, 64);
        let fine = PiecewiseLinearSigmoid::new(8.0, 128);
        let probe: Vec<f64> = (0..1000).map(|i| -7.9 + i as f64 * 0.0158).collect();
        let max_err = |interp: &PiecewiseLinearSigmoid| {
            probe
                .iter()
                .map(|&x| (interp.evaluate(x) - PiecewiseLinearSigmoid::exact(x)).abs())
                .fold(0.0_f64, f64::max)
        };
        let e_coarse = max_err(&coarse);
        let e_fine = max_err(&fine);
        assert!(e_fine < e_coarse / 3.0, "coarse {e_coarse}, fine {e_fine}");
    }

    #[test]
    fn outside_range_is_clamped_to_constants() {
        let interp = PiecewiseLinearSigmoid::new(5.0, 100);
        let seg = interp.coefficients(10.0);
        assert_eq!(seg.slope, 0.0);
        assert!((seg.intercept - PiecewiseLinearSigmoid::exact(5.0)).abs() < 1e-12);
        let seg = interp.coefficients(-10.0);
        assert_eq!(seg.slope, 0.0);
        assert!((seg.intercept - PiecewiseLinearSigmoid::exact(-5.0)).abs() < 1e-12);
    }

    #[test]
    fn coefficients_reproduce_segment_endpoints() {
        let interp = PiecewiseLinearSigmoid::new(4.0, 16);
        let step = interp.interval_length();
        // At a breakpoint the interpolant is exact.
        let x0 = -4.0 + 3.0 * step;
        assert!((interp.evaluate(x0) - PiecewiseLinearSigmoid::exact(x0)).abs() < 1e-12);
        assert_eq!(interp.num_intervals(), 16);
        assert_eq!(interp.half_range(), 4.0);
    }

    #[test]
    fn slopes_are_negative_for_f_and_positive_for_sigma() {
        let interp = PiecewiseLinearSigmoid::default();
        for &x in &[-5.0, -1.0, 0.0, 1.0, 5.0] {
            assert!(interp.coefficients(x).slope < 0.0, "f is decreasing");
            assert!(
                interp.sigmoid_coefficients(x).slope > 0.0,
                "σ is increasing"
            );
            let s = interp.sigmoid_coefficients(x).evaluate(x);
            assert!((s - PiecewiseLinearSigmoid::exact_sigmoid(x)).abs() < 1e-9);
        }
    }

    #[test]
    fn default_matches_paper_configuration() {
        let interp = PiecewiseLinearSigmoid::default();
        assert_eq!(interp.half_range(), 20.0);
        assert_eq!(interp.num_intervals(), 1_000_000);
        assert!(interp.error_bound() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_intervals_panics() {
        PiecewiseLinearSigmoid::new(1.0, 0);
    }
}
