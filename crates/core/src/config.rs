//! Trainer / provenance-capture configuration.

use crate::interpolation::PiecewiseLinearSigmoid;
use priu_data::catalog::Hyperparameters;

/// How per-iteration Gram-form intermediates are compressed (§5.1 / §5.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Compression {
    /// Cache the dense `m x m` Gram matrices (no compression).
    None,
    /// Exact truncated eigendecomposition via the `B x B` kernel matrix.
    Exact {
        /// Retained rank `r`.
        rank: usize,
    },
    /// Randomized truncated eigendecomposition (Halko range finder).
    Randomized {
        /// Retained rank `r`.
        rank: usize,
        /// Oversampling beyond the target rank.
        oversample: usize,
    },
    /// Pick automatically: dense caching for small feature spaces, randomized
    /// rank-`min(32, m/4)` compression once the feature count exceeds 128.
    Auto,
}

impl Compression {
    /// Resolves `Auto` into a concrete strategy for a feature count `m`.
    pub fn resolve(self, num_features: usize) -> Compression {
        match self {
            Compression::Auto => {
                if num_features > 128 {
                    Compression::Randomized {
                        rank: (num_features / 4).clamp(8, 32),
                        oversample: 8,
                    }
                } else {
                    Compression::None
                }
            }
            other => other,
        }
    }
}

/// Configuration of a training run with provenance capture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Mini-batch size, iteration count, learning rate and regularisation.
    pub hyper: Hyperparameters,
    /// Seed controlling the mini-batch schedule (and nothing else — the
    /// datasets carry their own seeds).
    pub seed: u64,
    /// Compression applied to the cached per-iteration Gram forms.
    pub compression: Compression,
    /// Piecewise-linear interpolation of the logistic non-linearity.
    pub interpolation: PiecewiseLinearSigmoid,
    /// Fraction of the iterations after which PrIU-opt stops capturing fresh
    /// provenance for logistic regression (§5.4's rule of thumb is 0.7).
    pub opt_capture_fraction: f64,
    /// Whether to additionally capture the PrIU-opt structures (full-data
    /// Gram eigendecompositions). Costs one `O(n·m²)`-ish pass; disable for
    /// very large feature spaces where only plain PrIU is used.
    pub capture_opt: bool,
}

impl TrainerConfig {
    /// Builds a config from hyperparameters with library defaults for the
    /// provenance-capture knobs.
    pub fn from_hyper(hyper: Hyperparameters) -> Self {
        Self {
            hyper,
            seed: 0,
            compression: Compression::Auto,
            interpolation: PiecewiseLinearSigmoid::default(),
            opt_capture_fraction: 0.7,
            capture_opt: true,
        }
    }

    /// Sets the mini-batch schedule seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the compression strategy.
    pub fn with_compression(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }

    /// Enables or disables the PrIU-opt capture.
    pub fn with_opt_capture(mut self, capture: bool) -> Self {
        self.capture_opt = capture;
        self
    }

    /// Sets the interpolation grid.
    pub fn with_interpolation(mut self, interpolation: PiecewiseLinearSigmoid) -> Self {
        self.interpolation = interpolation;
        self
    }

    /// Sets the PrIU-opt early-termination fraction `ts / τ`.
    pub fn with_opt_capture_fraction(mut self, fraction: f64) -> Self {
        self.opt_capture_fraction = fraction;
        self
    }

    /// The iteration `ts` at which PrIU-opt stops capturing fresh provenance.
    pub fn opt_switch_iteration(&self) -> usize {
        let ts = (self.hyper.num_iterations as f64 * self.opt_capture_fraction).floor() as usize;
        ts.clamp(1, self.hyper.num_iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hyper() -> Hyperparameters {
        Hyperparameters {
            batch_size: 100,
            num_iterations: 1000,
            learning_rate: 0.01,
            regularization: 0.1,
        }
    }

    #[test]
    fn builder_sets_fields() {
        let c = TrainerConfig::from_hyper(hyper())
            .with_seed(9)
            .with_compression(Compression::Exact { rank: 5 })
            .with_opt_capture(false)
            .with_opt_capture_fraction(0.5)
            .with_interpolation(PiecewiseLinearSigmoid::new(10.0, 100));
        assert_eq!(c.seed, 9);
        assert_eq!(c.compression, Compression::Exact { rank: 5 });
        assert!(!c.capture_opt);
        assert_eq!(c.opt_switch_iteration(), 500);
        assert_eq!(c.interpolation.num_intervals(), 100);
    }

    #[test]
    fn opt_switch_iteration_defaults_to_seventy_percent() {
        let c = TrainerConfig::from_hyper(hyper());
        assert_eq!(c.opt_switch_iteration(), 700);
    }

    #[test]
    fn auto_compression_resolves_by_feature_count() {
        assert_eq!(Compression::Auto.resolve(54), Compression::None);
        match Compression::Auto.resolve(512) {
            Compression::Randomized { rank, oversample } => {
                assert_eq!(rank, 32);
                assert_eq!(oversample, 8);
            }
            other => panic!("unexpected {other:?}"),
        }
        match Compression::Auto.resolve(160) {
            Compression::Randomized { rank, .. } => assert_eq!(rank, 32),
            other => panic!("unexpected {other:?}"),
        }
        // Concrete strategies resolve to themselves.
        assert_eq!(
            Compression::Exact { rank: 3 }.resolve(1000),
            Compression::Exact { rank: 3 }
        );
        assert_eq!(Compression::None.resolve(1000), Compression::None);
    }
}
