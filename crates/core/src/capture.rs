//! Provenance capture: the per-iteration intermediate results cached during
//! the training phase and consumed by the incremental-update phase.
//!
//! In provenance terms (§4.1), each cached object is the specialisation at
//! `1_prov` of a provenance-annotated expression whose annotated terms are
//! the per-sample contributions. Deletion propagation ("zeroing out" the
//! removed samples' tokens) then amounts to subtracting the removed samples'
//! contributions — which only needs the caches below plus the removed rows
//! themselves.

use priu_data::minibatch::BatchSchedule;
use priu_linalg::decomposition::{GramFactor, TruncatedGram, TruncationMethod};
use priu_linalg::decomposition::eigen::SymmetricEigen;
use priu_linalg::{Matrix, Vector};

use crate::config::Compression;
use crate::error::Result;
use crate::model::Model;

/// A cached Gram-form intermediate `Σ_i c_i x_i x_i^T`, either dense or in
/// the truncated `P Vᵀ` form of Eq. 14 / Eq. 20.
#[derive(Debug, Clone)]
pub enum GramCache {
    /// The dense `m x m` matrix.
    Dense(Matrix),
    /// The rank-`r` factorisation `P Vᵀ`.
    Truncated(TruncatedGram),
}

impl GramCache {
    /// Builds a cache from batch rows and per-row coefficients according to
    /// the chosen compression strategy (`Auto` must be resolved beforehand).
    ///
    /// # Errors
    /// Propagates factorisation failures.
    pub fn build(rows: Matrix, coefficients: Vec<f64>, compression: Compression) -> Result<Self> {
        match compression.resolve(rows.ncols()) {
            Compression::None | Compression::Auto => {
                Ok(GramCache::Dense(rows.weighted_gram(Some(&coefficients))))
            }
            Compression::Exact { rank } => {
                let factor = GramFactor::new(rows, coefficients)?;
                Ok(GramCache::Truncated(
                    factor.truncate(rank, TruncationMethod::Exact)?,
                ))
            }
            Compression::Randomized { rank, oversample } => {
                let factor = GramFactor::new(rows, coefficients)?;
                Ok(GramCache::Truncated(factor.truncate(
                    rank,
                    TruncationMethod::Randomized {
                        oversample,
                        // The seed only needs to differ between calls within a
                        // run for statistical robustness; determinism per
                        // (dim, batch) is preferable for reproducibility.
                        seed: 0x5EED ^ (rank as u64) << 32 ^ factor_dims_seed(&factor),
                    },
                )?))
            }
        }
    }

    /// Applies the cached operator to a parameter vector in `O(m²)` (dense)
    /// or `O(r·m)` (truncated).
    ///
    /// # Errors
    /// Propagates shape mismatches.
    pub fn apply(&self, w: &Vector) -> Result<Vector> {
        match self {
            GramCache::Dense(g) => Ok(g.matvec(w)?),
            GramCache::Truncated(t) => Ok(t.apply(w)?),
        }
    }

    /// Number of `f64` values held by the cache (memory accounting, Q8).
    pub fn stored_values(&self) -> usize {
        match self {
            GramCache::Dense(g) => g.nrows() * g.ncols(),
            GramCache::Truncated(t) => t.stored_values(),
        }
    }
}

fn factor_dims_seed(factor: &GramFactor) -> u64 {
    (factor.batch_size() as u64) << 20 ^ factor.dim() as u64
}

/// Per-iteration cache for linear regression (Eq. 13/14): the batch Gram
/// matrix `Σ_{i∈B_t} x_i x_i^T` and moment vector `Σ_{i∈B_t} x_i y_i`.
#[derive(Debug, Clone)]
pub struct LinearIterationCache {
    /// Cached `Σ x_i x_i^T` (possibly truncated).
    pub gram: GramCache,
    /// Cached `Σ x_i y_i`.
    pub xy: Vector,
    /// Batch size `B^{(t)}`.
    pub batch_size: usize,
}

/// Per-iteration, per-class cache for (linearised) logistic regression
/// (Eq. 19/20): `C_t = Σ a_{i,(t)} x_i x_i^T`, `D_t = Σ b'_{i,(t)} x_i`, and
/// the per-sample coefficients needed to subtract removed contributions.
#[derive(Debug, Clone)]
pub struct ClassIterationCache {
    /// Cached `C_t` (possibly truncated). Coefficients are uniformly
    /// negative because the interpolated non-linearity is decreasing.
    pub gram: GramCache,
    /// Cached `D_t`.
    pub d: Vector,
    /// Per-batch-member `(a, b')` coefficients in batch order, where the
    /// sample's contribution to the update is `a·x xᵀ w + b'·x`.
    pub coefficients: Vec<(f64, f64)>,
}

/// Per-iteration cache for logistic regression across all classes.
#[derive(Debug, Clone)]
pub struct LogisticIterationCache {
    /// One cache per class (a single entry for binary logistic regression).
    pub classes: Vec<ClassIterationCache>,
    /// Batch size `B^{(t)}`.
    pub batch_size: usize,
}

/// PrIU-opt capture for linear regression (§5.2): the offline eigen-
/// decomposition of `M = X^T X` plus the moment vector `N = X^T Y`.
#[derive(Debug, Clone)]
pub struct LinearOptCapture {
    /// Eigendecomposition of the full-data Gram matrix `X^T X`.
    pub eigen: SymmetricEigen,
    /// Full-data moment vector `X^T Y`.
    pub xty: Vector,
}

/// PrIU-opt capture for one class of a logistic model (§5.4): at iteration
/// `ts` the linearisation coefficients are frozen, a full-data `C*` / `D*` is
/// materialised, and `C*` is eigendecomposed offline.
#[derive(Debug, Clone)]
pub struct LogisticOptClassCapture {
    /// Eigendecomposition of the frozen full-data `C*`.
    pub eigen: SymmetricEigen,
    /// Frozen full-data `D*`.
    pub d_star: Vector,
    /// Frozen per-sample `(a, b')` coefficients for every training sample.
    pub coefficients: Vec<(f64, f64)>,
}

/// PrIU-opt capture for a logistic model.
#[derive(Debug, Clone)]
pub struct LogisticOptCapture {
    /// The iteration `ts` after which provenance capture stopped.
    pub switch_iteration: usize,
    /// The model parameters at iteration `ts` (needed to restart the scalar
    /// recursion in the eigenbasis).
    pub model_at_switch: Model,
    /// One capture per class.
    pub classes: Vec<LogisticOptClassCapture>,
}

/// Everything the training phase captures for a linear-regression model.
#[derive(Debug, Clone)]
pub struct LinearProvenance {
    /// The deterministic mini-batch schedule shared with the update phase.
    pub schedule: BatchSchedule,
    /// Learning rate `η`.
    pub learning_rate: f64,
    /// Regularisation rate `λ`.
    pub regularization: f64,
    /// Initial parameters `w^{(0)}`.
    pub initial_model: Model,
    /// Per-iteration caches (length `τ`).
    pub iterations: Vec<LinearIterationCache>,
    /// PrIU-opt capture (present unless disabled in the config).
    pub opt: Option<LinearOptCapture>,
}

/// Everything the training phase captures for a (binary or multinomial)
/// logistic-regression model.
#[derive(Debug, Clone)]
pub struct LogisticProvenance {
    /// The deterministic mini-batch schedule shared with the update phase.
    pub schedule: BatchSchedule,
    /// Learning rate `η`.
    pub learning_rate: f64,
    /// Regularisation rate `λ`.
    pub regularization: f64,
    /// Initial parameters `w^{(0)}`.
    pub initial_model: Model,
    /// Per-iteration caches. With an opt capture present this only covers
    /// iterations `0..ts`; otherwise all `τ` iterations.
    pub iterations: Vec<LogisticIterationCache>,
    /// PrIU-opt capture (present unless disabled in the config).
    pub opt: Option<LogisticOptCapture>,
}

/// Memory accounting for captured provenance (Table 3 / Q8).
pub trait ProvenanceMemory {
    /// Total bytes of cached provenance information.
    fn provenance_bytes(&self) -> usize;
}

impl ProvenanceMemory for LinearProvenance {
    fn provenance_bytes(&self) -> usize {
        let per_iter: usize = self
            .iterations
            .iter()
            .map(|it| (it.gram.stored_values() + it.xy.len()) * 8)
            .sum();
        let opt = self.opt.as_ref().map_or(0, |o| {
            (o.eigen.values.len()
                + o.eigen.vectors.nrows() * o.eigen.vectors.ncols()
                + o.xty.len())
                * 8
        });
        per_iter + opt
    }
}

impl ProvenanceMemory for LogisticProvenance {
    fn provenance_bytes(&self) -> usize {
        let per_iter: usize = self
            .iterations
            .iter()
            .map(|it| {
                it.classes
                    .iter()
                    .map(|c| (c.gram.stored_values() + c.d.len()) * 8 + c.coefficients.len() * 16)
                    .sum::<usize>()
            })
            .sum();
        let opt = self.opt.as_ref().map_or(0, |o| {
            o.classes
                .iter()
                .map(|c| {
                    (c.eigen.values.len()
                        + c.eigen.vectors.nrows() * c.eigen.vectors.ncols()
                        + c.d_star.len())
                        * 8
                        + c.coefficients.len() * 16
                })
                .sum::<usize>()
                + o.model_at_switch.num_parameters() * 8
        });
        per_iter + opt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priu_data::catalog::Hyperparameters;

    fn rows() -> Matrix {
        Matrix::from_fn(6, 4, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0)
    }

    #[test]
    fn dense_cache_matches_weighted_gram() {
        let r = rows();
        let coeffs = vec![1.0; 6];
        let cache = GramCache::build(r.clone(), coeffs.clone(), Compression::None).unwrap();
        let w = Vector::from_fn(4, |i| i as f64 + 1.0);
        let expected = r.weighted_gram(Some(&coeffs)).matvec(&w).unwrap();
        let got = cache.apply(&w).unwrap();
        assert!((&got - &expected).norm2() < 1e-10);
        assert_eq!(cache.stored_values(), 16);
    }

    #[test]
    fn truncated_cache_approximates_dense_cache() {
        let r = rows();
        let coeffs = vec![-0.5; 6];
        let dense = GramCache::build(r.clone(), coeffs.clone(), Compression::None).unwrap();
        let exact =
            GramCache::build(r.clone(), coeffs.clone(), Compression::Exact { rank: 4 }).unwrap();
        let randomized = GramCache::build(
            r,
            coeffs,
            Compression::Randomized {
                rank: 4,
                oversample: 4,
            },
        )
        .unwrap();
        let w = Vector::ones(4);
        let d = dense.apply(&w).unwrap();
        assert!((&exact.apply(&w).unwrap() - &d).norm2() < 1e-8);
        assert!((&randomized.apply(&w).unwrap() - &d).norm2() < 1e-6);
        assert!(exact.stored_values() <= 2 * 4 * 4);
    }

    #[test]
    fn auto_compression_resolves_against_feature_count() {
        // 4 features → Auto resolves to dense.
        let cache = GramCache::build(rows(), vec![1.0; 6], Compression::Auto).unwrap();
        assert!(matches!(cache, GramCache::Dense(_)));
    }

    #[test]
    fn provenance_memory_accounts_for_all_pieces() {
        let hyper = Hyperparameters {
            batch_size: 6,
            num_iterations: 2,
            learning_rate: 0.1,
            regularization: 0.01,
        };
        let schedule = BatchSchedule::new(6, hyper.batch_size, hyper.num_iterations, 0);
        let gram = GramCache::build(rows(), vec![1.0; 6], Compression::None).unwrap();
        let prov = LinearProvenance {
            schedule,
            learning_rate: hyper.learning_rate,
            regularization: hyper.regularization,
            initial_model: Model::zeros(crate::model::ModelKind::Linear, 4),
            iterations: vec![
                LinearIterationCache {
                    gram: gram.clone(),
                    xy: Vector::zeros(4),
                    batch_size: 6,
                },
                LinearIterationCache {
                    gram,
                    xy: Vector::zeros(4),
                    batch_size: 6,
                },
            ],
            opt: None,
        };
        // 2 iterations × (16 gram values + 4 xy values) × 8 bytes.
        assert_eq!(prov.provenance_bytes(), 2 * (16 + 4) * 8);
    }
}
