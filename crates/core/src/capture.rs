//! Provenance capture: the per-iteration intermediate results cached during
//! the training phase and consumed by the incremental-update phase.
//!
//! In provenance terms (§4.1), each cached object is the specialisation at
//! `1_prov` of a provenance-annotated expression whose annotated terms are
//! the per-sample contributions. Deletion propagation ("zeroing out" the
//! removed samples' tokens) then amounts to subtracting the removed samples'
//! contributions — which only needs the caches below plus the removed rows
//! themselves.

use priu_data::minibatch::BatchSchedule;
use priu_linalg::decomposition::eigen::SymmetricEigen;
use priu_linalg::decomposition::{GramFactor, TruncatedGram, TruncationMethod};
use priu_linalg::{Matrix, Vector};

use crate::config::Compression;
use crate::error::Result;
use crate::model::Model;

/// A cached Gram-form intermediate `Σ_i c_i x_i x_i^T`, either dense or in
/// the truncated `P Vᵀ` form of Eq. 14 / Eq. 20.
#[derive(Debug, Clone)]
pub enum GramCache {
    /// The dense `m x m` matrix.
    Dense(Matrix),
    /// The rank-`r` factorisation `P Vᵀ`.
    Truncated(TruncatedGram),
    /// A truncated base minus an exact low-rank deflation: the operator
    /// `P Vᵀ − Σ_k c_k x_k x_kᵀ` with the removed samples' rows and
    /// coefficients kept in factored form. Produced by chained deletions
    /// ([`GramCache::deflate`]): in provenance terms, the removed samples'
    /// tokens have been zeroed out of the cached expression, which amounts to
    /// subtracting their contributions.
    Deflated {
        /// The original truncated cache.
        base: TruncatedGram,
        /// Rows of the deleted samples (`k × m`).
        rows: Matrix,
        /// The deleted samples' Gram coefficients (one per row).
        coefficients: Vec<f64>,
    },
}

impl GramCache {
    /// Builds a cache from batch rows and per-row coefficients according to
    /// the chosen compression strategy (`Auto` must be resolved beforehand).
    /// The inputs are borrowed; only the data the cache actually stores is
    /// copied.
    ///
    /// # Errors
    /// Propagates factorisation failures.
    pub fn build(rows: &Matrix, coefficients: &[f64], compression: Compression) -> Result<Self> {
        match compression.resolve(rows.ncols()) {
            Compression::None | Compression::Auto => {
                Ok(GramCache::Dense(rows.weighted_gram(Some(coefficients))))
            }
            Compression::Exact { rank } => {
                let factor = GramFactor::new(rows.clone(), coefficients.to_vec())?;
                Ok(GramCache::Truncated(
                    factor.truncate(rank, TruncationMethod::Exact)?,
                ))
            }
            Compression::Randomized { rank, oversample } => {
                let factor = GramFactor::new(rows.clone(), coefficients.to_vec())?;
                Ok(GramCache::Truncated(factor.truncate(
                    rank,
                    TruncationMethod::Randomized {
                        oversample,
                        // The seed only needs to differ between calls within a
                        // run for statistical robustness; determinism per
                        // (dim, batch) is preferable for reproducibility.
                        seed: 0x5EED ^ (rank as u64) << 32 ^ factor_dims_seed(&factor),
                    },
                )?))
            }
        }
    }

    /// Applies the cached operator to a parameter vector in `O(m²)` (dense)
    /// or `O(r·m)` (truncated).
    ///
    /// # Errors
    /// Propagates shape mismatches.
    pub fn apply(&self, w: &Vector) -> Result<Vector> {
        let mut out = Vector::zeros(w.len());
        let mut s0 = Vec::new();
        let mut s1 = Vec::new();
        self.apply_into(w, out.as_mut_slice(), &mut s0, &mut s1)?;
        Ok(out)
    }

    /// Applies the cached operator into a caller-owned buffer, reusing the
    /// two scratch vectors across calls — the allocation-free variant of
    /// [`GramCache::apply`] driving the PrIU replay loops. Produces bitwise
    /// the same result as `apply`.
    ///
    /// # Errors
    /// Propagates shape mismatches.
    pub fn apply_into(
        &self,
        w: &[f64],
        out: &mut [f64],
        s0: &mut Vec<f64>,
        s1: &mut Vec<f64>,
    ) -> Result<()> {
        match self {
            GramCache::Dense(g) => Ok(g.matvec_into(w, out)?),
            GramCache::Truncated(t) => Ok(t.apply_into(w, out, s0)?),
            GramCache::Deflated {
                base,
                rows,
                coefficients,
            } => {
                if rows.ncols() != out.len() {
                    return Err(priu_linalg::LinalgError::ShapeMismatch {
                        op: "GramCache::apply_into(deflation)",
                        left: (rows.nrows(), rows.ncols()),
                        right: (out.len(), 1),
                    }
                    .into());
                }
                base.apply_into(w, out, s0)?;
                // rw = diag(c) (rows · w), then out -= rowsᵀ rw.
                s1.clear();
                s1.resize(rows.nrows(), 0.0);
                rows.matvec_into(w, s1)?;
                for (v, c) in s1.iter_mut().zip(coefficients.iter()) {
                    *v *= c;
                }
                s0.clear();
                s0.resize(rows.ncols(), 0.0);
                rows.transpose_matvec_into(s1, s0)?;
                priu_linalg::axpy_slices(out, -1.0, s0);
                Ok(())
            }
        }
    }

    /// Number of deflation-correction rows carried by the cache (0 for
    /// dense/truncated caches). Workspace sizing uses this to reserve the
    /// apply scratch before a timed update starts.
    pub fn deflation_rows(&self) -> usize {
        match self {
            GramCache::Deflated { rows, .. } => rows.nrows(),
            _ => 0,
        }
    }

    /// Number of `f64` values held by the cache (memory accounting, Q8).
    pub fn stored_values(&self) -> usize {
        match self {
            GramCache::Dense(g) => g.nrows() * g.ncols(),
            GramCache::Truncated(t) => t.stored_values(),
            GramCache::Deflated {
                base,
                rows,
                coefficients,
            } => base.stored_values() + rows.nrows() * rows.ncols() + coefficients.len(),
        }
    }

    /// Subtracts the contributions `Σ_k c_k x_k x_kᵀ` of deleted samples from
    /// the cached operator — the deletion-propagation step of a chained
    /// deletion. Dense caches are downdated in place (exactly); truncated
    /// caches keep the correction in factored form so later `apply` calls
    /// stay `O((r + k)·m)`.
    ///
    /// `rows` holds the deleted samples' feature rows and `coefficients`
    /// their per-sample Gram coefficients (all `1.0` for linear regression,
    /// the frozen `a` slopes for logistic regression).
    ///
    /// # Errors
    /// Propagates shape mismatches.
    pub fn deflate(&self, rows: Matrix, coefficients: Vec<f64>) -> Result<GramCache> {
        debug_assert_eq!(rows.nrows(), coefficients.len());
        match self {
            GramCache::Dense(g) => {
                let mut downdated = g.clone();
                downdated.axpy(-1.0, &rows.weighted_gram(Some(&coefficients)))?;
                Ok(GramCache::Dense(downdated))
            }
            GramCache::Truncated(t) => Ok(GramCache::Deflated {
                base: t.clone(),
                rows,
                coefficients,
            }),
            GramCache::Deflated {
                base,
                rows: prior_rows,
                coefficients: prior_coefficients,
            } => {
                let total = prior_rows.nrows() + rows.nrows();
                let m = prior_rows.ncols();
                let stacked = Matrix::from_fn(total, m, |i, j| {
                    if i < prior_rows.nrows() {
                        prior_rows[(i, j)]
                    } else {
                        rows[(i - prior_rows.nrows(), j)]
                    }
                });
                let mut all_coefficients = prior_coefficients.clone();
                all_coefficients.extend_from_slice(&coefficients);
                Ok(GramCache::Deflated {
                    base: base.clone(),
                    rows: stacked,
                    coefficients: all_coefficients,
                })
            }
        }
    }
}

fn factor_dims_seed(factor: &GramFactor) -> u64 {
    (factor.batch_size() as u64) << 20 ^ factor.dim() as u64
}

/// Per-iteration cache for linear regression (Eq. 13/14): the batch Gram
/// matrix `Σ_{i∈B_t} x_i x_i^T` and moment vector `Σ_{i∈B_t} x_i y_i`.
#[derive(Debug, Clone)]
pub struct LinearIterationCache {
    /// Cached `Σ x_i x_i^T` (possibly truncated).
    pub gram: GramCache,
    /// Cached `Σ x_i y_i`.
    pub xy: Vector,
    /// Batch size `B^{(t)}`.
    pub batch_size: usize,
}

/// Per-iteration, per-class cache for (linearised) logistic regression
/// (Eq. 19/20): `C_t = Σ a_{i,(t)} x_i x_i^T`, `D_t = Σ b'_{i,(t)} x_i`, and
/// the per-sample coefficients needed to subtract removed contributions.
#[derive(Debug, Clone)]
pub struct ClassIterationCache {
    /// Cached `C_t` (possibly truncated). Coefficients are uniformly
    /// negative because the interpolated non-linearity is decreasing.
    pub gram: GramCache,
    /// Cached `D_t`.
    pub d: Vector,
    /// Per-batch-member `(a, b')` coefficients in batch order, where the
    /// sample's contribution to the update is `a·x xᵀ w + b'·x`.
    pub coefficients: Vec<(f64, f64)>,
}

/// Per-iteration cache for logistic regression across all classes.
#[derive(Debug, Clone)]
pub struct LogisticIterationCache {
    /// One cache per class (a single entry for binary logistic regression).
    pub classes: Vec<ClassIterationCache>,
    /// Batch size `B^{(t)}`.
    pub batch_size: usize,
}

/// PrIU-opt capture for linear regression (§5.2): the offline eigen-
/// decomposition of `M = X^T X` plus the moment vector `N = X^T Y`.
#[derive(Debug, Clone)]
pub struct LinearOptCapture {
    /// Eigendecomposition of the full-data Gram matrix `X^T X`.
    pub eigen: SymmetricEigen,
    /// Full-data moment vector `X^T Y`.
    pub xty: Vector,
}

/// PrIU-opt capture for one class of a logistic model (§5.4): at iteration
/// `ts` the linearisation coefficients are frozen, a full-data `C*` / `D*` is
/// materialised, and `C*` is eigendecomposed offline.
#[derive(Debug, Clone)]
pub struct LogisticOptClassCapture {
    /// Eigendecomposition of the frozen full-data `C*`.
    pub eigen: SymmetricEigen,
    /// Frozen full-data `D*`.
    pub d_star: Vector,
    /// Frozen per-sample `(a, b')` coefficients for every training sample.
    pub coefficients: Vec<(f64, f64)>,
}

/// PrIU-opt capture for a logistic model.
#[derive(Debug, Clone)]
pub struct LogisticOptCapture {
    /// The iteration `ts` after which provenance capture stopped.
    pub switch_iteration: usize,
    /// The model parameters at iteration `ts` (needed to restart the scalar
    /// recursion in the eigenbasis).
    pub model_at_switch: Model,
    /// One capture per class.
    pub classes: Vec<LogisticOptClassCapture>,
}

/// Everything the training phase captures for a linear-regression model.
#[derive(Debug, Clone)]
pub struct LinearProvenance {
    /// The deterministic mini-batch schedule shared with the update phase.
    pub schedule: BatchSchedule,
    /// Learning rate `η`.
    pub learning_rate: f64,
    /// Regularisation rate `λ`.
    pub regularization: f64,
    /// Initial parameters `w^{(0)}`.
    pub initial_model: Model,
    /// Per-iteration caches (length `τ`).
    pub iterations: Vec<LinearIterationCache>,
    /// PrIU-opt capture (present unless disabled in the config).
    pub opt: Option<LinearOptCapture>,
}

/// Everything the training phase captures for a (binary or multinomial)
/// logistic-regression model.
#[derive(Debug, Clone)]
pub struct LogisticProvenance {
    /// The deterministic mini-batch schedule shared with the update phase.
    pub schedule: BatchSchedule,
    /// Learning rate `η`.
    pub learning_rate: f64,
    /// Regularisation rate `λ`.
    pub regularization: f64,
    /// Initial parameters `w^{(0)}`.
    pub initial_model: Model,
    /// Per-iteration caches. With an opt capture present this only covers
    /// iterations `0..ts`; otherwise all `τ` iterations.
    pub iterations: Vec<LogisticIterationCache>,
    /// PrIU-opt capture (present unless disabled in the config).
    pub opt: Option<LogisticOptCapture>,
}

/// Memory accounting for captured provenance (Table 3 / Q8).
pub trait ProvenanceMemory {
    /// Total bytes of cached provenance information.
    fn provenance_bytes(&self) -> usize;
}

impl ProvenanceMemory for LinearProvenance {
    fn provenance_bytes(&self) -> usize {
        let per_iter: usize = self
            .iterations
            .iter()
            .map(|it| (it.gram.stored_values() + it.xy.len()) * 8)
            .sum();
        let opt = self.opt.as_ref().map_or(0, |o| {
            (o.eigen.values.len() + o.eigen.vectors.nrows() * o.eigen.vectors.ncols() + o.xty.len())
                * 8
        });
        per_iter + opt
    }
}

impl ProvenanceMemory for LogisticProvenance {
    fn provenance_bytes(&self) -> usize {
        let per_iter: usize = self
            .iterations
            .iter()
            .map(|it| {
                it.classes
                    .iter()
                    .map(|c| (c.gram.stored_values() + c.d.len()) * 8 + c.coefficients.len() * 16)
                    .sum::<usize>()
            })
            .sum();
        let opt = self.opt.as_ref().map_or(0, |o| {
            o.classes
                .iter()
                .map(|c| {
                    (c.eigen.values.len()
                        + c.eigen.vectors.nrows() * c.eigen.vectors.ncols()
                        + c.d_star.len())
                        * 8
                        + c.coefficients.len() * 16
                })
                .sum::<usize>()
                + o.model_at_switch.num_parameters() * 8
        });
        per_iter + opt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priu_data::catalog::Hyperparameters;

    fn rows() -> Matrix {
        Matrix::from_fn(6, 4, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0)
    }

    #[test]
    fn dense_cache_matches_weighted_gram() {
        let r = rows();
        let coeffs = vec![1.0; 6];
        let cache = GramCache::build(&r, &coeffs, Compression::None).unwrap();
        let w = Vector::from_fn(4, |i| i as f64 + 1.0);
        let expected = r.weighted_gram(Some(&coeffs)).matvec(&w).unwrap();
        let got = cache.apply(&w).unwrap();
        assert!((&got - &expected).norm2() < 1e-10);
        assert_eq!(cache.stored_values(), 16);
    }

    #[test]
    fn truncated_cache_approximates_dense_cache() {
        let r = rows();
        let coeffs = vec![-0.5; 6];
        let dense = GramCache::build(&r, &coeffs, Compression::None).unwrap();
        let exact = GramCache::build(&r, &coeffs, Compression::Exact { rank: 4 }).unwrap();
        let randomized = GramCache::build(
            &r,
            &coeffs,
            Compression::Randomized {
                rank: 4,
                oversample: 4,
            },
        )
        .unwrap();
        let w = Vector::ones(4);
        let d = dense.apply(&w).unwrap();
        assert!((&exact.apply(&w).unwrap() - &d).norm2() < 1e-8);
        assert!((&randomized.apply(&w).unwrap() - &d).norm2() < 1e-6);
        assert!(exact.stored_values() <= 2 * 4 * 4);
    }

    #[test]
    fn deflation_matches_rebuilding_from_the_survivors() {
        let r = rows();
        let coeffs = vec![-0.5; 6];
        let removed = [1usize, 4];
        let survivors = [0usize, 2, 3, 5];
        let w = Vector::from_fn(4, |i| i as f64 - 1.5);
        let expected = GramCache::build(
            &r.select_rows(&survivors),
            &vec![-0.5; survivors.len()],
            Compression::None,
        )
        .unwrap()
        .apply(&w)
        .unwrap();

        for compression in [Compression::None, Compression::Exact { rank: 4 }] {
            let full = GramCache::build(&r, &coeffs, compression).unwrap();
            let deflated = full
                .deflate(r.select_rows(&removed), vec![-0.5; removed.len()])
                .unwrap();
            let got = deflated.apply(&w).unwrap();
            assert!(
                (&got - &expected).norm2() < 1e-8,
                "deflation mismatch for {compression:?}"
            );
            assert!(deflated.stored_values() > 0);

            // Deflating twice composes (remove row 1, then row 4).
            let twice = full
                .deflate(r.select_rows(&[1]), vec![-0.5])
                .unwrap()
                .deflate(r.select_rows(&[4]), vec![-0.5])
                .unwrap();
            assert!((&twice.apply(&w).unwrap() - &expected).norm2() < 1e-8);
        }
    }

    #[test]
    fn auto_compression_resolves_against_feature_count() {
        // 4 features → Auto resolves to dense.
        let cache = GramCache::build(&rows(), &[1.0; 6], Compression::Auto).unwrap();
        assert!(matches!(cache, GramCache::Dense(_)));
    }

    #[test]
    fn provenance_memory_accounts_for_all_pieces() {
        let hyper = Hyperparameters {
            batch_size: 6,
            num_iterations: 2,
            learning_rate: 0.1,
            regularization: 0.01,
        };
        let schedule = BatchSchedule::new(6, hyper.batch_size, hyper.num_iterations, 0);
        let gram = GramCache::build(&rows(), &[1.0; 6], Compression::None).unwrap();
        let prov = LinearProvenance {
            schedule,
            learning_rate: hyper.learning_rate,
            regularization: hyper.regularization,
            initial_model: Model::zeros(crate::model::ModelKind::Linear, 4),
            iterations: vec![
                LinearIterationCache {
                    gram: gram.clone(),
                    xy: Vector::zeros(4),
                    batch_size: 6,
                },
                LinearIterationCache {
                    gram,
                    xy: Vector::zeros(4),
                    batch_size: 6,
                },
            ],
            opt: None,
        };
        // 2 iterations × (16 gram values + 4 xy values) × 8 bytes.
        assert_eq!(prov.provenance_bytes(), 2 * (16 + 4) * 8);
    }
}
