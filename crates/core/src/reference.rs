//! Reference implementation built directly on provenance-annotated matrices.
//!
//! This module is the executable counterpart of §4.1: the gradient-descent
//! update rule for linear regression is assembled as a provenance-annotated
//! expression (`Σ p_i² ∗ x_i x_iᵀ`, `Σ p_i² ∗ x_i y_i`), deletions are
//! propagated by *zeroing out* tokens through a [`Valuation`], and the model
//! is obtained by iterating the specialised expression. It is exponentially
//! more expensive than PrIU's cached-contribution path and exists to (a)
//! demonstrate the semantics and (b) give the test-suite an independent
//! oracle: specialising the annotated expression must agree exactly with
//! retraining on the surviving samples, and PrIU must agree with both.

use priu_data::dataset::DenseDataset;
use priu_linalg::{Matrix, Vector};
use priu_provenance::{
    AnnotatedMatrix, AnnotatedVector, Polynomial, Token, TokenRegistry, Valuation,
};

use crate::error::{CoreError, Result};
use crate::model::{Model, ModelKind};

/// A provenance-annotated full-batch gradient-descent "trainer" for linear
/// regression on small datasets.
#[derive(Debug, Clone)]
pub struct AnnotatedLinearGd {
    gram_expr: AnnotatedMatrix,
    moment_expr: AnnotatedVector,
    tokens: Vec<Token>,
    learning_rate: f64,
    regularization: f64,
    num_iterations: usize,
}

impl AnnotatedLinearGd {
    /// Builds the annotated expressions, allocating one provenance token per
    /// training sample (`p_i`), and annotating each sample's contribution to
    /// the update rule with `p_i²` exactly as in Eq. 7.
    ///
    /// # Errors
    /// Returns [`CoreError::LabelMismatch`] for non-regression datasets.
    pub fn build(
        dataset: &DenseDataset,
        learning_rate: f64,
        regularization: f64,
        num_iterations: usize,
    ) -> Result<Self> {
        let y = dataset
            .labels
            .as_continuous()
            .ok_or(CoreError::LabelMismatch {
                expected: "continuous labels for the annotated reference trainer",
            })?;
        let n = dataset.num_samples();
        let m = dataset.num_features();
        let mut registry = TokenRegistry::new();
        let tokens = registry.register_samples(n);

        let mut gram_expr = AnnotatedMatrix::zeros(m, m);
        let mut moment_expr = AnnotatedVector::zeros(m);
        for i in 0..n {
            let xi = dataset.x.row_vector(i);
            let annotation = Polynomial::token_power(tokens[i], 2);
            let outer = Matrix::outer(&xi, &xi);
            gram_expr = gram_expr.add(&AnnotatedMatrix::annotated(annotation.clone(), outer));
            moment_expr = moment_expr.add(&AnnotatedVector::annotated(annotation, xi.scaled(y[i])));
        }

        Ok(Self {
            gram_expr,
            moment_expr,
            tokens,
            learning_rate,
            regularization,
            num_iterations,
        })
    }

    /// The provenance tokens, indexed by sample.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// The annotated Gram expression `Σ p_i² ∗ x_i x_iᵀ`.
    pub fn gram_expression(&self) -> &AnnotatedMatrix {
        &self.gram_expr
    }

    /// Specialises the annotated expressions under a valuation and iterates
    /// the GD recursion over the surviving samples.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidRemoval`] if the valuation deletes every
    /// sample.
    pub fn model_for_valuation(&self, valuation: &Valuation) -> Result<Model> {
        let surviving = self
            .tokens
            .iter()
            .filter(|&&t| !valuation.is_deleted(t))
            .count();
        if surviving == 0 {
            return Err(CoreError::InvalidRemoval {
                index: self.tokens.len(),
                num_samples: self.tokens.len(),
            });
        }
        // Deletion propagation: zero out the removed tokens.
        let gram = self.gram_expr.specialize(valuation);
        let moment = self.moment_expr.specialize(valuation);
        let m = moment.len();
        let n_u = surviving as f64;
        let eta = self.learning_rate;
        let lambda = self.regularization;

        let mut w = Vector::zeros(m);
        for _ in 0..self.num_iterations {
            let gw = gram.matvec(&w)?;
            let mut next = w.scaled(1.0 - eta * lambda);
            next.axpy(-2.0 * eta / n_u, &gw)?;
            next.axpy(2.0 * eta / n_u, &moment)?;
            w = next;
        }
        Model::new(ModelKind::Linear, vec![w])
    }

    /// Convenience wrapper: deletes the given sample indices and returns the
    /// updated model.
    ///
    /// # Errors
    /// As [`Self::model_for_valuation`], plus [`CoreError::InvalidRemoval`]
    /// for out-of-range indices.
    pub fn update_after_deletion(&self, removed: &[usize]) -> Result<Model> {
        let mut valuation = Valuation::all_present();
        for &i in removed {
            let token = *self.tokens.get(i).ok_or(CoreError::InvalidRemoval {
                index: i,
                num_samples: self.tokens.len(),
            })?;
            valuation.delete(token);
        }
        self.model_for_valuation(&valuation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priu_data::dataset::Labels;
    use priu_data::synthetic::regression::{generate_regression, RegressionConfig};

    fn tiny() -> DenseDataset {
        generate_regression(&RegressionConfig {
            num_samples: 12,
            num_features: 3,
            noise_std: 0.01,
            seed: 77,
            ..Default::default()
        })
    }

    /// Plain GD over an explicit subset of the samples — the oracle.
    fn gd_on_subset(
        dataset: &DenseDataset,
        keep: &[usize],
        eta: f64,
        lambda: f64,
        iterations: usize,
    ) -> Vector {
        let y = dataset.labels.as_continuous().unwrap();
        let m = dataset.num_features();
        let n_u = keep.len() as f64;
        let mut w = Vector::zeros(m);
        for _ in 0..iterations {
            let mut grad = Vector::zeros(m);
            for &i in keep {
                let row = dataset.x.row(i);
                let residual: f64 =
                    row.iter().zip(w.iter()).map(|(a, b)| a * b).sum::<f64>() - y[i];
                for (j, &v) in row.iter().enumerate() {
                    grad[j] += v * residual;
                }
            }
            w.scale_mut(1.0 - eta * lambda);
            w.axpy(-2.0 * eta / n_u, &grad).unwrap();
        }
        w
    }

    #[test]
    fn no_deletion_matches_plain_gd() {
        let data = tiny();
        let reference = AnnotatedLinearGd::build(&data, 0.05, 0.01, 60).unwrap();
        let model = reference.update_after_deletion(&[]).unwrap();
        let keep: Vec<usize> = (0..data.num_samples()).collect();
        let oracle = gd_on_subset(&data, &keep, 0.05, 0.01, 60);
        assert!((&model.flatten() - &oracle).norm_inf() < 1e-10);
        assert_eq!(reference.tokens().len(), 12);
        assert_eq!(reference.gram_expression().num_terms(), 12);
    }

    #[test]
    fn zeroing_out_tokens_equals_retraining_on_survivors() {
        let data = tiny();
        let reference = AnnotatedLinearGd::build(&data, 0.05, 0.01, 60).unwrap();
        let removed = vec![1, 4, 9];
        let model = reference.update_after_deletion(&removed).unwrap();
        let keep: Vec<usize> = (0..data.num_samples())
            .filter(|i| !removed.contains(i))
            .collect();
        let oracle = gd_on_subset(&data, &keep, 0.05, 0.01, 60);
        assert!((&model.flatten() - &oracle).norm_inf() < 1e-10);
    }

    #[test]
    fn valuations_and_index_wrappers_agree() {
        let data = tiny();
        let reference = AnnotatedLinearGd::build(&data, 0.05, 0.01, 30).unwrap();
        let mut valuation = Valuation::all_present();
        valuation.delete(reference.tokens()[3]);
        let via_valuation = reference.model_for_valuation(&valuation).unwrap();
        let via_indices = reference.update_after_deletion(&[3]).unwrap();
        assert_eq!(via_valuation, via_indices);
    }

    #[test]
    fn deleting_everything_or_out_of_range_is_rejected() {
        let data = tiny();
        let reference = AnnotatedLinearGd::build(&data, 0.05, 0.01, 10).unwrap();
        let everything: Vec<usize> = (0..data.num_samples()).collect();
        assert!(reference.update_after_deletion(&everything).is_err());
        assert!(reference.update_after_deletion(&[999]).is_err());
    }

    #[test]
    fn wrong_labels_are_rejected() {
        let bad = DenseDataset::new(
            Matrix::zeros(4, 2),
            Labels::Binary(Vector::from_fn(4, |i| if i % 2 == 0 { 1.0 } else { -1.0 })),
        );
        assert!(AnnotatedLinearGd::build(&bad, 0.1, 0.1, 5).is_err());
    }
}
