//! Objective functions, gradients and Hessians for the three regression
//! families (Eq. 2-4), used by the trainers (gradient checks), the
//! influence-function baseline (Hessian solves) and the evaluation metrics.

use priu_data::dataset::{DenseDataset, Labels};
use priu_linalg::{Matrix, Vector};

use crate::error::{CoreError, Result};
use crate::model::{Model, ModelKind};

/// Softmax probabilities of a logit vector (numerically stabilised).
pub fn softmax(logits: &Vector) -> Vector {
    let max = logits.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let exps: Vec<f64> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    Vector::from_vec(exps.into_iter().map(|e| e / sum).collect())
}

/// Value of the regularised objective function `h(w)` (Eq. 2-4) over a dense
/// dataset.
///
/// # Errors
/// Returns [`CoreError::LabelMismatch`] if the labels do not match the model.
pub fn objective_value(model: &Model, dataset: &DenseDataset, regularization: f64) -> Result<f64> {
    let n = dataset.num_samples();
    if n == 0 {
        return Ok(0.0);
    }
    let reg = 0.5 * regularization * model.flatten().norm2_squared();
    let data_term = match (model.kind(), &dataset.labels) {
        (ModelKind::Linear, Labels::Continuous(y)) => {
            let mut sum = 0.0;
            for i in 0..n {
                let r = y[i] - model.predict_linear(dataset.x.row(i));
                sum += r * r;
            }
            sum / n as f64
        }
        (ModelKind::BinaryLogistic, Labels::Binary(y)) => {
            let mut sum = 0.0;
            for i in 0..n {
                let margin = y[i] * model.decision_value(dataset.x.row(i));
                sum += ln_1p_exp(-margin);
            }
            sum / n as f64
        }
        (
            ModelKind::MultinomialLogistic { num_classes },
            Labels::Multiclass {
                classes,
                num_classes: q,
            },
        ) if num_classes == *q => {
            let mut sum = 0.0;
            for i in 0..n {
                let logits = model.logits(dataset.x.row(i));
                let max = logits.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
                let lse = max + logits.iter().map(|&z| (z - max).exp()).sum::<f64>().ln();
                sum += lse - logits[classes[i] as usize];
            }
            sum / n as f64
        }
        _ => {
            return Err(CoreError::LabelMismatch {
                expected: "labels matching the model kind",
            })
        }
    };
    Ok(data_term + reg)
}

/// Numerically-stable `ln(1 + e^x)`.
fn ln_1p_exp(x: f64) -> f64 {
    if x > 0.0 {
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

/// Per-sample gradient `∇h_i(w)` of the *unregularised* loss, flattened to
/// the model's parameter layout. This is the quantity the influence-function
/// baseline sums over the removed samples.
///
/// # Errors
/// Returns [`CoreError::LabelMismatch`] on mismatched labels and
/// [`CoreError::InvalidRemoval`] if `i` is out of range.
pub fn sample_gradient(model: &Model, dataset: &DenseDataset, i: usize) -> Result<Vector> {
    let n = dataset.num_samples();
    if i >= n {
        return Err(CoreError::InvalidRemoval {
            index: i,
            num_samples: n,
        });
    }
    let x = dataset.x.row(i);
    match (model.kind(), &dataset.labels) {
        (ModelKind::Linear, Labels::Continuous(y)) => {
            // ∇ (y - xᵀw)² = 2 x (xᵀw - y)
            let r = model.predict_linear(x) - y[i];
            Ok(Vector::from_vec(x.iter().map(|&v| 2.0 * r * v).collect()))
        }
        (ModelKind::BinaryLogistic, Labels::Binary(y)) => {
            // ∇ ln(1+e^{-y wᵀx}) = -y x σ(-y wᵀx)
            let margin = y[i] * model.decision_value(x);
            let f = 1.0 / (1.0 + margin.exp());
            Ok(Vector::from_vec(x.iter().map(|&v| -y[i] * v * f).collect()))
        }
        (
            ModelKind::MultinomialLogistic { num_classes },
            Labels::Multiclass {
                classes,
                num_classes: q,
            },
        ) if num_classes == *q => {
            let probs = softmax(&model.logits(x));
            let mut grad = Vec::with_capacity(num_classes * x.len());
            for k in 0..num_classes {
                let indicator = if classes[i] as usize == k { 1.0 } else { 0.0 };
                let coeff = probs[k] - indicator;
                grad.extend(x.iter().map(|&v| coeff * v));
            }
            Ok(Vector::from_vec(grad))
        }
        _ => Err(CoreError::LabelMismatch {
            expected: "labels matching the model kind",
        }),
    }
}

/// Full gradient of the regularised objective `∇h(w)` over the dataset,
/// flattened to the model's parameter layout.
///
/// # Errors
/// Returns [`CoreError::LabelMismatch`] on mismatched labels.
pub fn full_gradient(model: &Model, dataset: &DenseDataset, regularization: f64) -> Result<Vector> {
    let n = dataset.num_samples();
    let mut grad = Vector::zeros(model.num_parameters());
    for i in 0..n {
        let g = sample_gradient(model, dataset, i)?;
        grad.axpy(1.0 / n as f64, &g)?;
    }
    grad.axpy(regularization, &model.flatten())?;
    Ok(grad)
}

/// Hessian of the regularised objective `∇²h(w)` over the dataset, in the
/// flattened parameter layout (an `m x m` matrix for linear / binary models
/// and an `mq x mq` block matrix for multinomial models).
///
/// # Errors
/// Returns [`CoreError::LabelMismatch`] on mismatched labels.
pub fn full_hessian(model: &Model, dataset: &DenseDataset, regularization: f64) -> Result<Matrix> {
    let n = dataset.num_samples();
    let m = model.num_features();
    match (model.kind(), &dataset.labels) {
        (ModelKind::Linear, Labels::Continuous(_)) => {
            // ∇² = (2/n) Σ x xᵀ + λ I
            let mut h = dataset.x.gram();
            h.scale_mut(2.0 / n as f64);
            h.add_diagonal_mut(regularization)?;
            Ok(h)
        }
        (ModelKind::BinaryLogistic, Labels::Binary(y)) => {
            // ∇² = (1/n) Σ σ'(margin) x xᵀ + λ I  with σ' = σ(z)(1-σ(z)).
            let mut weights = Vec::with_capacity(n);
            for i in 0..n {
                let margin = y[i] * model.decision_value(dataset.x.row(i));
                let s = 1.0 / (1.0 + (-margin).exp());
                weights.push(s * (1.0 - s) / n as f64);
            }
            let mut h = dataset.x.weighted_gram(Some(&weights));
            h.add_diagonal_mut(regularization)?;
            Ok(h)
        }
        (
            ModelKind::MultinomialLogistic { num_classes },
            Labels::Multiclass { num_classes: q, .. },
        ) if num_classes == *q => {
            // Block (k,l) = (1/n) Σ_i (σ_k δ_kl − σ_k σ_l) x_i x_iᵀ + λ I δ_kl.
            let dim = m * num_classes;
            let mut h = Matrix::zeros(dim, dim);
            for i in 0..n {
                let x = dataset.x.row(i);
                let probs = softmax(&model.logits(x));
                for k in 0..num_classes {
                    for l in 0..num_classes {
                        let coeff = if k == l {
                            probs[k] * (1.0 - probs[k])
                        } else {
                            -probs[k] * probs[l]
                        } / n as f64;
                        if coeff == 0.0 {
                            continue;
                        }
                        for a in 0..m {
                            let va = coeff * x[a];
                            if va == 0.0 {
                                continue;
                            }
                            for b in 0..m {
                                h[(k * m + a, l * m + b)] += va * x[b];
                            }
                        }
                    }
                }
            }
            h.add_diagonal_mut(regularization)?;
            Ok(h)
        }
        _ => Err(CoreError::LabelMismatch {
            expected: "labels matching the model kind",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priu_data::synthetic::classification::{
        generate_binary_classification, generate_multiclass_classification, ClassificationConfig,
    };
    use priu_data::synthetic::regression::{generate_regression, RegressionConfig};

    fn fd_gradient(model: &Model, dataset: &DenseDataset, regularization: f64) -> Vector {
        let flat = model.flatten();
        let eps = 1e-6;
        let to_model = |v: &Vector| {
            let weights = v.split(model.weights().len()).unwrap();
            Model::new(model.kind(), weights).unwrap()
        };
        Vector::from_fn(flat.len(), |j| {
            let mut plus = flat.clone();
            plus[j] += eps;
            let mut minus = flat.clone();
            minus[j] -= eps;
            let fp = objective_value(&to_model(&plus), dataset, regularization).unwrap();
            let fm = objective_value(&to_model(&minus), dataset, regularization).unwrap();
            (fp - fm) / (2.0 * eps)
        })
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let s = softmax(&Vector::from_vec(vec![1000.0, 1001.0, 999.0]));
        assert!((s.sum() - 1.0).abs() < 1e-12);
        assert!(s.iter().all(|&p| p.is_finite() && p >= 0.0));
        assert!(s[1] > s[0] && s[0] > s[2]);
    }

    #[test]
    fn linear_gradient_matches_finite_differences() {
        let data = generate_regression(&RegressionConfig {
            num_samples: 20,
            num_features: 4,
            seed: 1,
            ..Default::default()
        });
        let mut model = Model::zeros(ModelKind::Linear, 4);
        model.weights_mut()[0] = Vector::from_vec(vec![0.3, -0.2, 0.1, 0.5]);
        let g = full_gradient(&model, &data, 0.1).unwrap();
        let fd = fd_gradient(&model, &data, 0.1);
        assert!(
            (&g - &fd).norm_inf() < 1e-5,
            "analytic {:?} vs fd {:?}",
            g,
            fd
        );
    }

    #[test]
    fn binary_gradient_matches_finite_differences() {
        let data = generate_binary_classification(&ClassificationConfig {
            num_samples: 25,
            num_features: 3,
            seed: 2,
            ..Default::default()
        });
        let mut model = Model::zeros(ModelKind::BinaryLogistic, 3);
        model.weights_mut()[0] = Vector::from_vec(vec![0.2, 0.4, -0.3]);
        let g = full_gradient(&model, &data, 0.05).unwrap();
        let fd = fd_gradient(&model, &data, 0.05);
        assert!((&g - &fd).norm_inf() < 1e-5);
    }

    #[test]
    fn multinomial_gradient_matches_finite_differences() {
        let data = generate_multiclass_classification(&ClassificationConfig {
            num_samples: 30,
            num_features: 3,
            num_classes: 4,
            seed: 3,
            ..Default::default()
        });
        let mut model = Model::zeros(ModelKind::MultinomialLogistic { num_classes: 4 }, 3);
        for (k, w) in model.weights_mut().iter_mut().enumerate() {
            *w = Vector::from_fn(3, |j| 0.1 * (k as f64 - j as f64));
        }
        let g = full_gradient(&model, &data, 0.01).unwrap();
        let fd = fd_gradient(&model, &data, 0.01);
        assert!((&g - &fd).norm_inf() < 1e-5);
    }

    #[test]
    fn hessians_are_symmetric_and_regularised() {
        let data = generate_binary_classification(&ClassificationConfig {
            num_samples: 30,
            num_features: 4,
            seed: 4,
            ..Default::default()
        });
        let model = Model::zeros(ModelKind::BinaryLogistic, 4);
        let h = full_hessian(&model, &data, 0.5).unwrap();
        assert!(h.asymmetry().unwrap() < 1e-10);
        // With w = 0, σ' = 1/4, so diagonal ≥ λ.
        for i in 0..4 {
            assert!(h[(i, i)] >= 0.5);
        }

        let reg_data = generate_regression(&RegressionConfig {
            num_samples: 10,
            num_features: 3,
            seed: 5,
            ..Default::default()
        });
        let lin = Model::zeros(ModelKind::Linear, 3);
        let h = full_hessian(&lin, &reg_data, 0.2).unwrap();
        assert!(h.asymmetry().unwrap() < 1e-10);

        let mc_data = generate_multiclass_classification(&ClassificationConfig {
            num_samples: 15,
            num_features: 2,
            num_classes: 3,
            seed: 6,
            ..Default::default()
        });
        let mc = Model::zeros(ModelKind::MultinomialLogistic { num_classes: 3 }, 2);
        let h = full_hessian(&mc, &mc_data, 0.1).unwrap();
        assert_eq!(h.shape(), (6, 6));
        assert!(h.asymmetry().unwrap() < 1e-10);
    }

    #[test]
    fn label_mismatch_is_reported() {
        let data = generate_regression(&RegressionConfig {
            num_samples: 5,
            num_features: 2,
            seed: 7,
            ..Default::default()
        });
        let model = Model::zeros(ModelKind::BinaryLogistic, 2);
        assert!(matches!(
            objective_value(&model, &data, 0.1),
            Err(CoreError::LabelMismatch { .. })
        ));
        assert!(matches!(
            full_gradient(&model, &data, 0.1),
            Err(CoreError::LabelMismatch { .. })
        ));
        assert!(matches!(
            full_hessian(&model, &data, 0.1),
            Err(CoreError::LabelMismatch { .. })
        ));
        assert!(matches!(
            sample_gradient(&model, &data, 99),
            Err(CoreError::InvalidRemoval { .. })
        ));
    }

    #[test]
    fn empty_dataset_has_zero_objective() {
        let data = DenseDataset::new(Matrix::zeros(0, 2), Labels::Continuous(Vector::zeros(0)));
        let model = Model::zeros(ModelKind::Linear, 2);
        assert_eq!(objective_value(&model, &data, 0.3).unwrap(), 0.0);
    }
}
