//! Evaluation metrics used throughout §6: validation MSE / accuracy, and the
//! model-comparison measures (L2 distance, cosine similarity, coordinate
//! drift) of Q3/Q4.

use priu_data::dataset::{DenseDataset, Labels, SparseDataset};
use priu_linalg::stats::{coordinate_drift, cosine_similarity, l2_distance, CoordinateDrift};

use crate::error::{CoreError, Result};
use crate::model::{Model, ModelKind};

/// Mean squared error of a linear model over a dense dataset (the paper's
/// accuracy measure for regression: lower is better).
///
/// # Errors
/// Returns [`CoreError::LabelMismatch`] if the dataset is not a regression
/// dataset or the model is not linear.
pub fn mean_squared_error(model: &Model, dataset: &DenseDataset) -> Result<f64> {
    let y = dataset
        .labels
        .as_continuous()
        .ok_or(CoreError::LabelMismatch {
            expected: "continuous labels",
        })?;
    if model.kind() != ModelKind::Linear {
        return Err(CoreError::LabelMismatch {
            expected: "a linear model",
        });
    }
    let n = dataset.num_samples();
    if n == 0 {
        return Ok(0.0);
    }
    let mut sum = 0.0;
    for i in 0..n {
        let r = y[i] - model.predict_linear(dataset.x.row(i));
        sum += r * r;
    }
    Ok(sum / n as f64)
}

/// Classification accuracy of a binary or multinomial model over a dense
/// dataset (the paper's "validation accuracy").
///
/// # Errors
/// Returns [`CoreError::LabelMismatch`] if labels and model kind disagree.
pub fn classification_accuracy(model: &Model, dataset: &DenseDataset) -> Result<f64> {
    let n = dataset.num_samples();
    if n == 0 {
        return Ok(0.0);
    }
    let correct = match (&dataset.labels, model.kind()) {
        (Labels::Binary(y), ModelKind::BinaryLogistic) => (0..n)
            .filter(|&i| {
                let predicted = if model.decision_value(dataset.x.row(i)) >= 0.0 {
                    1.0
                } else {
                    -1.0
                };
                predicted == y[i]
            })
            .count(),
        (
            Labels::Multiclass {
                classes,
                num_classes,
            },
            ModelKind::MultinomialLogistic { num_classes: q },
        ) if *num_classes == q => (0..n)
            .filter(|&i| model.predict_class(dataset.x.row(i)) == classes[i] as usize)
            .count(),
        _ => {
            return Err(CoreError::LabelMismatch {
                expected: "classification labels matching the model kind",
            })
        }
    };
    Ok(correct as f64 / n as f64)
}

/// Classification accuracy of a binary model over a sparse dataset.
///
/// # Errors
/// Returns [`CoreError::LabelMismatch`] if labels and model kind disagree.
pub fn sparse_classification_accuracy(model: &Model, dataset: &SparseDataset) -> Result<f64> {
    let y = dataset.labels.as_binary().ok_or(CoreError::LabelMismatch {
        expected: "binary labels",
    })?;
    if model.kind() != ModelKind::BinaryLogistic {
        return Err(CoreError::LabelMismatch {
            expected: "a binary logistic model",
        });
    }
    let n = dataset.num_samples();
    if n == 0 {
        return Ok(0.0);
    }
    let correct = (0..n)
        .filter(|&i| {
            let predicted = if model.decision_value_sparse(&dataset.x, i) >= 0.0 {
                1.0
            } else {
                -1.0
            };
            predicted == y[i]
        })
        .count();
    Ok(correct as f64 / n as f64)
}

/// Structural comparison of two models of the same kind (§6.2 "Model
/// comparison"): L2 distance and cosine similarity of the flattened parameter
/// vectors, plus the fine-grained coordinate drift of Q4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelComparison {
    /// L2 norm of the parameter difference (the "distance" column).
    pub l2_distance: f64,
    /// Cosine of the angle between the parameter vectors (the "similarity"
    /// column).
    pub cosine_similarity: f64,
    /// Coordinate-wise sign flips / magnitude changes (Q4).
    pub drift: CoordinateDrift,
}

/// Compares two models parameter-wise.
///
/// # Errors
/// Returns [`CoreError::InvalidConfig`] if the models have different kinds or
/// sizes.
pub fn compare_models(reference: &Model, other: &Model) -> Result<ModelComparison> {
    if reference.kind() != other.kind() || reference.num_parameters() != other.num_parameters() {
        return Err(CoreError::InvalidConfig(
            "cannot compare models of different kinds or sizes".to_string(),
        ));
    }
    let a = reference.flatten();
    let b = other.flatten();
    Ok(ModelComparison {
        l2_distance: l2_distance(&a, &b)?,
        cosine_similarity: cosine_similarity(&a, &b)?,
        drift: coordinate_drift(&a, &b, 1e-9)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use priu_linalg::{Matrix, Vector};

    #[test]
    fn mse_of_perfect_model_is_zero() {
        let x = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let w = Vector::from_vec(vec![2.0, -1.0]);
        let y = x.matvec(&w).unwrap();
        let data = DenseDataset::new(x, Labels::Continuous(y));
        let model = Model::new(ModelKind::Linear, vec![w]).unwrap();
        assert!(mean_squared_error(&model, &data).unwrap() < 1e-24);
        let zero = Model::zeros(ModelKind::Linear, 2);
        assert!(mean_squared_error(&zero, &data).unwrap() > 0.1);
    }

    #[test]
    fn binary_accuracy_counts_correct_signs() {
        let x = Matrix::from_vec(4, 1, vec![1.0, 2.0, -1.0, -3.0]).unwrap();
        let y = Vector::from_vec(vec![1.0, 1.0, -1.0, 1.0]);
        let data = DenseDataset::new(x, Labels::Binary(y));
        let model =
            Model::new(ModelKind::BinaryLogistic, vec![Vector::from_vec(vec![1.0])]).unwrap();
        assert!((classification_accuracy(&model, &data).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn multiclass_accuracy() {
        let x = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, -1.0, -1.0]).unwrap();
        let data = DenseDataset::new(
            x,
            Labels::Multiclass {
                classes: vec![0, 1, 1],
                num_classes: 2,
            },
        );
        let model = Model::new(
            ModelKind::MultinomialLogistic { num_classes: 2 },
            vec![
                Vector::from_vec(vec![1.0, 0.0]),
                Vector::from_vec(vec![0.0, 1.0]),
            ],
        )
        .unwrap();
        // predictions: class 0, class 1, tie→argmax first max... (-1,-1) → class 0 ≠ 1.
        assert!((classification_accuracy(&model, &data).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_accuracy() {
        let dense = Matrix::from_vec(2, 3, vec![1.0, 0.0, 0.0, 0.0, 0.0, -2.0]).unwrap();
        let data = SparseDataset::new(
            priu_linalg::CsrMatrix::from_dense(&dense),
            Labels::Binary(Vector::from_vec(vec![1.0, -1.0])),
        );
        let model = Model::new(
            ModelKind::BinaryLogistic,
            vec![Vector::from_vec(vec![1.0, 0.0, 1.0])],
        )
        .unwrap();
        assert!((sparse_classification_accuracy(&model, &data).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn label_mismatches_are_rejected() {
        let reg = DenseDataset::new(Matrix::zeros(2, 1), Labels::Continuous(Vector::zeros(2)));
        let bin_model = Model::zeros(ModelKind::BinaryLogistic, 1);
        assert!(classification_accuracy(&bin_model, &reg).is_err());
        assert!(mean_squared_error(&bin_model, &reg).is_err());
        let lin_model = Model::zeros(ModelKind::Linear, 1);
        assert!(mean_squared_error(&lin_model, &reg).is_ok());
    }

    #[test]
    fn empty_datasets_give_zero_metrics() {
        let empty = DenseDataset::new(Matrix::zeros(0, 2), Labels::Continuous(Vector::zeros(0)));
        let model = Model::zeros(ModelKind::Linear, 2);
        assert_eq!(mean_squared_error(&model, &empty).unwrap(), 0.0);
    }

    #[test]
    fn compare_models_reports_distance_and_similarity() {
        let a = Model::new(ModelKind::Linear, vec![Vector::from_vec(vec![1.0, 0.0])]).unwrap();
        let b = Model::new(ModelKind::Linear, vec![Vector::from_vec(vec![0.0, 1.0])]).unwrap();
        let cmp = compare_models(&a, &b).unwrap();
        assert!((cmp.l2_distance - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!(cmp.cosine_similarity.abs() < 1e-12);
        assert_eq!(cmp.drift.sign_flips, 0);
        let same = compare_models(&a, &a).unwrap();
        assert_eq!(same.l2_distance, 0.0);
        assert!((same.cosine_similarity - 1.0).abs() < 1e-12);
        // Mismatched kinds are rejected.
        let c = Model::zeros(ModelKind::BinaryLogistic, 2);
        assert!(compare_models(&a, &c).is_err());
    }
}
