//! INFL: the influence-function baseline (Koh & Liang [30]) extended to
//! removing an arbitrary subset of training samples.
//!
//! The influence function estimates the parameter change caused by removing
//! sample `i` as `H_w^{-1} ∇ℓ_i(w) / n`, where `H_w` is the Hessian of the
//! regularised objective at the trained parameters. The natural multi-sample
//! extension — the one the paper evaluates and finds inaccurate for large
//! removal sets — simply sums the per-sample terms:
//!
//! ```text
//! w_upd ≈ w + (1/(n − Δn)) H_w^{-1} Σ_{i∈R} ∇ℓ_i(w)
//! ```
//!
//! One Hessian factorisation plus one solve; no iteration. It is therefore
//! fast (often faster than PrIU-opt, as in the paper's figures) but its
//! first-order Taylor reasoning degrades as `Δn` grows, which the Table 4
//! reproduction shows.

use priu_data::dataset::DenseDataset;
use priu_linalg::decomposition::{Cholesky, Lu};
use priu_linalg::Vector;

use crate::error::{CoreError, Result};
use crate::model::Model;
use crate::objective::{full_hessian, sample_gradient};
use crate::update::normalize_removed;

/// Estimates the updated model after removing `removed`, using the
/// influence-function approximation around the trained `model`.
///
/// # Errors
/// * [`CoreError::LabelMismatch`] if dataset labels and model kind disagree.
/// * [`CoreError::InvalidRemoval`] for invalid removal sets (including
///   removing every sample).
pub fn influence_update(
    dataset: &DenseDataset,
    model: &Model,
    regularization: f64,
    removed: &[usize],
) -> Result<Model> {
    let n = dataset.num_samples();
    let removed = normalize_removed(n, removed)?;
    if removed.len() >= n {
        return Err(CoreError::InvalidRemoval {
            index: n,
            num_samples: n,
        });
    }
    if removed.is_empty() {
        return Ok(model.clone());
    }

    // Σ_{i∈R} ∇ℓ_i(w) in the flattened parameter layout.
    let mut removed_gradient = Vector::zeros(model.num_parameters());
    for &i in &removed {
        removed_gradient.axpy(1.0, &sample_gradient(model, dataset, i)?)?;
    }

    // Hessian of the regularised objective at w.
    let hessian = full_hessian(model, dataset, regularization)?;

    // Solve H δ = Σ ∇ℓ_i; the regularised Hessian is positive definite in
    // exact arithmetic, but fall back to LU if Cholesky hits numerical
    // trouble.
    let delta = match Cholesky::new(&hessian) {
        Ok(chol) => chol.solve(&removed_gradient)?,
        Err(_) => Lu::new(&hessian)?.solve(&removed_gradient)?,
    };

    let scale = 1.0 / (n - removed.len()) as f64;
    let flat = model.flatten();
    let mut updated_flat = flat.clone();
    updated_flat.axpy(scale, &delta)?;
    let weights = updated_flat.split(model.weights().len())?;
    Model::new(model.kind(), weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::retrain::retrain_binary_logistic;
    use crate::config::TrainerConfig;
    use crate::metrics::compare_models;
    use crate::model::ModelKind;
    use crate::trainer::logistic::train_binary_logistic;
    use crate::update::priu_logistic::priu_update_logistic;
    use priu_data::catalog::Hyperparameters;
    use priu_data::dirty::random_subsets;
    use priu_data::synthetic::classification::{
        generate_binary_classification, ClassificationConfig,
    };

    fn data() -> DenseDataset {
        generate_binary_classification(&ClassificationConfig {
            num_samples: 600,
            num_features: 8,
            separation: 3.0,
            label_noise: 0.5,
            seed: 95,
            ..Default::default()
        })
    }

    fn config() -> TrainerConfig {
        TrainerConfig::from_hyper(Hyperparameters {
            batch_size: 60,
            num_iterations: 300,
            learning_rate: 0.3,
            regularization: 0.02,
        })
        .with_seed(14)
        .with_opt_capture(false)
    }

    #[test]
    fn empty_removal_returns_the_original_model() {
        let d = data();
        let trained = train_binary_logistic(&d, &config()).unwrap();
        let updated = influence_update(&d, &trained.model, 0.02, &[]).unwrap();
        assert_eq!(updated, trained.model);
    }

    #[test]
    fn reasonable_for_tiny_removals() {
        let d = data();
        let trained = train_binary_logistic(&d, &config()).unwrap();
        let removed = random_subsets(d.num_samples(), 0.002, 1, 1)[0].clone();
        let infl = influence_update(&d, &trained.model, 0.02, &removed).unwrap();
        let retrained = retrain_binary_logistic(&d, &trained.provenance, &removed).unwrap();
        let cmp = compare_models(&retrained, &infl).unwrap();
        assert!(
            cmp.cosine_similarity > 0.98,
            "similarity {}",
            cmp.cosine_similarity
        );
    }

    #[test]
    fn substantially_worse_than_priu_for_large_removals() {
        // The paper's Q5 finding: INFL degrades sharply when many samples are
        // removed while PrIU stays close to the retrained model.
        let d = data();
        let trained = train_binary_logistic(&d, &config()).unwrap();
        let removed = random_subsets(d.num_samples(), 0.2, 1, 2)[0].clone();
        let retrained = retrain_binary_logistic(&d, &trained.provenance, &removed).unwrap();
        let infl = influence_update(&d, &trained.model, 0.02, &removed).unwrap();
        let priu = priu_update_logistic(&d, &trained.provenance, &removed).unwrap();
        let infl_dist = compare_models(&retrained, &infl).unwrap().l2_distance;
        let priu_dist = compare_models(&retrained, &priu).unwrap().l2_distance;
        assert!(
            priu_dist < infl_dist,
            "PrIU distance {priu_dist} should beat INFL distance {infl_dist}"
        );
    }

    #[test]
    fn invalid_removals_are_rejected() {
        let d = data();
        let model = Model::zeros(ModelKind::BinaryLogistic, 8);
        assert!(influence_update(&d, &model, 0.1, &[10_000]).is_err());
        let everything: Vec<usize> = (0..d.num_samples()).collect();
        assert!(influence_update(&d, &model, 0.1, &everything).is_err());
    }
}
