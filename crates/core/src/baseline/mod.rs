//! Baselines the paper compares PrIU / PrIU-opt against.
//!
//! * [`retrain`] — **BaseL**: retraining from scratch with the same
//!   mini-batch schedule, excluding the removed samples from every batch.
//! * [`closed_form`] — the incremental closed-form (normal-equation) update
//!   for linear regression used by prior incremental-maintenance work
//!   [13, 22, 40].
//! * [`influence`] — **INFL**: the influence-function estimator of Koh &
//!   Liang [30], extended to removing an arbitrary subset of samples.

pub mod closed_form;
pub mod influence;
pub mod retrain;

pub use closed_form::{closed_form_full, closed_form_incremental, ClosedFormCapture};
pub use influence::influence_update;
pub use retrain::{
    retrain_binary_logistic, retrain_linear, retrain_multinomial_logistic,
    retrain_sparse_binary_logistic,
};
