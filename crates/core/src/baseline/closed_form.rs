//! The closed-form (normal equation) baseline for linear regression.
//!
//! Prior incremental-maintenance systems [13, 22, 40] maintain the linear
//! views `M = XᵀX` and `N = XᵀY`; a deletion updates them to
//! `M' = M − ΔXᵀΔX`, `N' = N − ΔXᵀΔY` and the model is recovered by solving
//! the regularised normal equations. The paper compares PrIU-opt against this
//! "Closed-form" approach in Figure 1.
//!
//! For the objective `h(w) = (1/n) Σ (y_i − x_iᵀw)² + (λ/2)‖w‖²` the
//! stationarity condition is `(2/n)(XᵀX w − XᵀY) + λ w = 0`, i.e.
//! `(XᵀX + (nλ/2) I) w = XᵀY`.

use priu_data::dataset::DenseDataset;
use priu_linalg::decomposition::{cholesky_factor_into, cholesky_solve_into, Cholesky};
use priu_linalg::{Matrix, Vector};

use crate::error::{CoreError, Result};
use crate::model::{Model, ModelKind};
use crate::update::normalize_removed;
use crate::workspace::Workspace;

/// The maintained views `M = XᵀX` and `N = XᵀY`, built offline.
#[derive(Debug, Clone)]
pub struct ClosedFormCapture {
    /// `XᵀX` over the full training data.
    pub xtx: Matrix,
    /// `XᵀY` over the full training data.
    pub xty: Vector,
    /// Number of training samples `n`.
    pub num_samples: usize,
    /// Regularisation rate `λ`.
    pub regularization: f64,
}

impl ClosedFormCapture {
    /// Builds the views from a regression dataset.
    ///
    /// # Errors
    /// Returns [`CoreError::LabelMismatch`] for non-regression datasets.
    pub fn build(dataset: &DenseDataset, regularization: f64) -> Result<Self> {
        let y = dataset
            .labels
            .as_continuous()
            .ok_or(CoreError::LabelMismatch {
                expected: "continuous labels for the closed-form baseline",
            })?;
        Ok(Self {
            xtx: dataset.x.gram(),
            xty: dataset.x.transpose_matvec(y)?,
            num_samples: dataset.num_samples(),
            regularization,
        })
    }
}

/// Solves the regularised normal equations for the *full* dataset (no
/// deletions) — used as a reference point and by tests.
///
/// # Errors
/// Propagates factorisation failures.
pub fn closed_form_full(capture: &ClosedFormCapture) -> Result<Model> {
    solve(
        capture.xtx.clone(),
        capture.xty.clone(),
        capture.num_samples,
        capture.regularization,
    )
}

/// Incrementally updates the closed-form solution after removing the given
/// samples: downdate the views with the removed block and re-solve
/// (`O(Δn·m² + m³)`).
///
/// # Errors
/// Label mismatches, invalid removals and factorisation failures are
/// reported as usual.
pub fn closed_form_incremental(
    dataset: &DenseDataset,
    capture: &ClosedFormCapture,
    removed: &[usize],
) -> Result<Model> {
    closed_form_incremental_with(dataset, capture, removed, &mut Workspace::new())
}

/// Like [`closed_form_incremental`], reusing a caller-owned [`Workspace`]:
/// the removed-row block, the downdated views, the blocked Cholesky factor
/// and the substitution all run on workspace buffers, so a warm (pre-sized)
/// workspace makes the whole update allocate only the produced model. This
/// is the entry point the linear engine's timed updates use.
///
/// # Errors
/// See [`closed_form_incremental`].
pub fn closed_form_incremental_with(
    dataset: &DenseDataset,
    capture: &ClosedFormCapture,
    removed: &[usize],
    ws: &mut Workspace,
) -> Result<Model> {
    let y = dataset
        .labels
        .as_continuous()
        .ok_or(CoreError::LabelMismatch {
            expected: "continuous labels for the closed-form baseline",
        })?;
    let removed = normalize_removed(dataset.num_samples(), removed)?;
    if removed.len() >= capture.num_samples {
        return Err(CoreError::InvalidRemoval {
            index: capture.num_samples,
            num_samples: capture.num_samples,
        });
    }
    let m = dataset.num_features();
    // ΔX into the batch-rows buffer, ΔY into a batch-sized buffer.
    ws.batch.clear();
    ws.batch.extend_from_slice(&removed);
    ws.select_batch_rows(&dataset.x);
    ws.prepare_batch(removed.len());
    ws.prepare_features(m);
    ws.prepare_square(m);
    let Workspace {
        rows: delta_x,
        b0: delta_y,
        m0: xty,
        mm0: xtx,
        mm1: factor,
        ..
    } = ws;
    for (slot, &i) in removed.iter().enumerate() {
        delta_y[slot] = y[i];
    }

    // Downdated views: M' = M − ΔXᵀΔX (the removed block's Gram goes into
    // the factor buffer, which the factorisation overwrites right after),
    // N' = N − ΔXᵀΔY.
    xtx.as_mut_slice().copy_from_slice(capture.xtx.as_slice());
    delta_x.weighted_gram_into(None, factor);
    xtx.axpy(-1.0, factor)?;
    delta_x.transpose_matvec_into(delta_y, xty)?;
    for (slot, full) in xty.iter_mut().zip(capture.xty.iter()) {
        *slot = full - *slot;
    }

    // Regularised normal equations via the blocked Cholesky `_into` pair.
    let n_u = capture.num_samples - removed.len();
    xtx.add_diagonal_mut(n_u as f64 * capture.regularization / 2.0)?;
    cholesky_factor_into(xtx, factor)?;
    let mut w = Vector::zeros(m);
    cholesky_solve_into(factor, xty, w.as_mut_slice())?;
    Model::new(ModelKind::Linear, vec![w])
}

/// Like [`closed_form_incremental_with`], additionally folding a block of
/// added rows into the views before solving — the bidirectional delta form
/// of normal-equation maintenance: `M' = M − ΔXᵀΔX + AᵀA`,
/// `N' = N − ΔXᵀΔY + AᵀY_A`, then one regularised solve with
/// `n' = n − |Δ| + |A|`. Cost `O((Δn + |A|)·m² + m³)`, independent of `n`.
///
/// # Errors
/// Label mismatches (on either the session dataset or the added block),
/// invalid removals and factorisation failures are reported as usual.
pub fn closed_form_delta_with(
    dataset: &DenseDataset,
    capture: &ClosedFormCapture,
    removed: &[usize],
    added: &DenseDataset,
    ws: &mut Workspace,
) -> Result<Model> {
    let y = dataset
        .labels
        .as_continuous()
        .ok_or(CoreError::LabelMismatch {
            expected: "continuous labels for the closed-form baseline",
        })?;
    let y_added = added
        .labels
        .as_continuous()
        .ok_or(CoreError::LabelMismatch {
            expected: "continuous labels for rows added to the closed-form baseline",
        })?;
    let removed = normalize_removed(dataset.num_samples(), removed)?;
    if removed.len() >= capture.num_samples {
        return Err(CoreError::InvalidRemoval {
            index: capture.num_samples,
            num_samples: capture.num_samples,
        });
    }
    let m = dataset.num_features();
    let k = added.num_samples();

    // Stage 1 — downdate the removed block, exactly as the incremental path.
    ws.batch.clear();
    ws.batch.extend_from_slice(&removed);
    ws.select_batch_rows(&dataset.x);
    ws.prepare_batch(removed.len());
    ws.prepare_features(m);
    ws.prepare_square(m);
    {
        let Workspace {
            rows: delta_x,
            b0: delta_y,
            m0: xty,
            mm0: xtx,
            mm1: factor,
            ..
        } = ws;
        for (slot, &i) in removed.iter().enumerate() {
            delta_y[slot] = y[i];
        }
        xtx.as_mut_slice().copy_from_slice(capture.xtx.as_slice());
        delta_x.weighted_gram_into(None, factor);
        xtx.axpy(-1.0, factor)?;
        delta_x.transpose_matvec_into(delta_y, xty)?;
        for (slot, full) in xty.iter_mut().zip(capture.xty.iter()) {
            *slot = full - *slot;
        }
    }

    // Stage 2 — fold the added block in (same buffers, re-staged; the
    // feature accumulators `m0`/`m1` survive the batch re-preparation).
    if k > 0 {
        ws.batch.clear();
        ws.batch.extend(0..k);
        ws.select_batch_rows(&added.x);
        ws.prepare_batch(k);
        let Workspace {
            rows: added_x,
            b0: added_y,
            m0: xty,
            m1: tmp,
            mm0: xtx,
            mm1: factor,
            ..
        } = ws;
        added_y.copy_from_slice(y_added);
        added_x.weighted_gram_into(None, factor);
        xtx.axpy(1.0, factor)?;
        added_x.transpose_matvec_into(added_y, tmp)?;
        for (acc, inc) in xty.iter_mut().zip(tmp.iter()) {
            *acc += *inc;
        }
    }

    // Regularised normal equations via the blocked Cholesky `_into` pair.
    let n_u = capture.num_samples - removed.len() + k;
    let Workspace {
        m0: xty,
        mm0: xtx,
        mm1: factor,
        ..
    } = ws;
    xtx.add_diagonal_mut(n_u as f64 * capture.regularization / 2.0)?;
    cholesky_factor_into(xtx, factor)?;
    let mut w = Vector::zeros(m);
    cholesky_solve_into(factor, xty, w.as_mut_slice())?;
    Model::new(ModelKind::Linear, vec![w])
}

fn solve(mut xtx: Matrix, xty: Vector, n: usize, regularization: f64) -> Result<Model> {
    xtx.add_diagonal_mut(n as f64 * regularization / 2.0)?;
    let chol = Cholesky::new(&xtx)?;
    let w = chol.solve(&xty)?;
    Model::new(ModelKind::Linear, vec![w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mean_squared_error;
    use priu_data::dataset::Labels;
    use priu_data::dirty::random_subsets;
    use priu_data::synthetic::regression::{generate_regression, RegressionConfig};

    fn dataset() -> DenseDataset {
        generate_regression(&RegressionConfig {
            num_samples: 400,
            num_features: 6,
            noise_std: 0.05,
            seed: 91,
            ..Default::default()
        })
    }

    #[test]
    fn full_solution_fits_the_data_well() {
        let data = dataset();
        let capture = ClosedFormCapture::build(&data, 1e-3).unwrap();
        let model = closed_form_full(&capture).unwrap();
        let mse = mean_squared_error(&model, &data).unwrap();
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    fn incremental_update_equals_rebuilding_from_scratch() {
        let data = dataset();
        let capture = ClosedFormCapture::build(&data, 1e-3).unwrap();
        let removed = random_subsets(data.num_samples(), 0.1, 1, 5)[0].clone();
        let incremental = closed_form_incremental(&data, &capture, &removed).unwrap();

        // Ground truth: rebuild the views over the surviving samples only.
        let kept: Vec<usize> = (0..data.num_samples())
            .filter(|i| !removed.contains(i))
            .collect();
        let remaining = data.select(&kept);
        let fresh_capture = ClosedFormCapture::build(&remaining, 1e-3).unwrap();
        let fresh = closed_form_full(&fresh_capture).unwrap();

        let diff = (&incremental.flatten() - &fresh.flatten()).norm_inf();
        assert!(diff < 1e-8, "difference {diff}");
    }

    #[test]
    fn delta_update_equals_rebuilding_from_scratch() {
        let data = dataset();
        let capture = ClosedFormCapture::build(&data, 1e-3).unwrap();
        let removed = random_subsets(data.num_samples(), 0.1, 1, 7)[0].clone();
        let added = generate_regression(&RegressionConfig {
            num_samples: 30,
            num_features: 6,
            noise_std: 0.05,
            seed: 97,
            ..Default::default()
        });
        let mut ws = Workspace::new();
        let delta = closed_form_delta_with(&data, &capture, &removed, &added, &mut ws).unwrap();

        // Ground truth: rebuild the views over survivors + added rows.
        let kept: Vec<usize> = (0..data.num_samples())
            .filter(|i| !removed.contains(i))
            .collect();
        let mut remaining = data.select(&kept);
        remaining.append(&added).unwrap();
        let fresh = closed_form_full(&ClosedFormCapture::build(&remaining, 1e-3).unwrap()).unwrap();
        let diff = (&delta.flatten() - &fresh.flatten()).norm_inf();
        assert!(diff < 1e-8, "difference {diff}");

        // An empty added block reduces to the removal-only incremental path.
        let empty = DenseDataset::new(Matrix::zeros(0, 6), Labels::Continuous(Vector::zeros(0)));
        let removal_only = closed_form_incremental(&data, &capture, &removed).unwrap();
        let via_delta = closed_form_delta_with(&data, &capture, &removed, &empty, &mut ws).unwrap();
        assert_eq!(removal_only, via_delta);
    }

    #[test]
    fn workspace_variant_matches_allocating_variant_bitwise() {
        let data = dataset();
        let capture = ClosedFormCapture::build(&data, 1e-3).unwrap();
        let removed = random_subsets(data.num_samples(), 0.08, 1, 9)[0].clone();
        let plain = closed_form_incremental(&data, &capture, &removed).unwrap();
        let mut ws = Workspace::sized_for(data.num_features(), removed.len(), 1);
        ws.reserve_decompositions(data.num_features());
        for _ in 0..2 {
            // Twice: a warm workspace must not change results either.
            let with_ws = closed_form_incremental_with(&data, &capture, &removed, &mut ws).unwrap();
            assert_eq!(plain, with_ws);
        }
    }

    #[test]
    fn rejects_wrong_labels_and_full_removal() {
        let data = dataset();
        let capture = ClosedFormCapture::build(&data, 1e-3).unwrap();
        let everything: Vec<usize> = (0..data.num_samples()).collect();
        assert!(closed_form_incremental(&data, &capture, &everything).is_err());

        let bad = DenseDataset::new(
            Matrix::zeros(5, 2),
            Labels::Binary(Vector::from_fn(5, |i| if i % 2 == 0 { 1.0 } else { -1.0 })),
        );
        assert!(ClosedFormCapture::build(&bad, 0.1).is_err());
    }
}
