//! BaseL: retraining from scratch after a deletion.
//!
//! The paper's baseline retrains with "the same standard method as before but
//! excluding the removed samples from each mini-batch". These routines do
//! exactly that: they replay the *same* deterministic batch schedule as the
//! original training run (taken from the captured provenance) with the
//! removal set filtered out of every batch, and they do **not** capture any
//! provenance — this is the cost PrIU is compared against.

use priu_data::dataset::{DenseDataset, Labels, SparseDataset};
use priu_linalg::Vector;

use crate::capture::{LinearProvenance, LogisticProvenance};
use crate::error::{CoreError, Result};
use crate::interpolation::PiecewiseLinearSigmoid;
use crate::model::{Model, ModelKind};
use crate::trainer::sparse::SparseLogisticProvenance;
use crate::update::{normalize_removed, removed_positions_into};
use crate::workspace::Workspace;

/// Retrains a linear-regression model from scratch on the surviving samples.
///
/// # Errors
/// Label mismatches and invalid removal indices are reported as usual.
pub fn retrain_linear(
    dataset: &DenseDataset,
    provenance: &LinearProvenance,
    removed: &[usize],
) -> Result<Model> {
    let y = match &dataset.labels {
        Labels::Continuous(y) => y,
        _ => {
            return Err(CoreError::LabelMismatch {
                expected: "continuous labels for linear regression",
            })
        }
    };
    let removed = normalize_removed(dataset.num_samples(), removed)?;
    let eta = provenance.learning_rate;
    let lambda = provenance.regularization;
    let m = dataset.num_features();
    let mut w = provenance.initial_model.weight().clone();

    for t in 0..provenance.schedule.num_iterations() {
        let (batch, b_u) = provenance.schedule.batch_excluding(t, &removed);
        if b_u == 0 {
            w.scale_mut(1.0 - eta * lambda);
            continue;
        }
        let mut grad = Vector::zeros(m);
        for &i in &batch {
            let row = dataset.x.row(i);
            let residual: f64 = row.iter().zip(w.iter()).map(|(a, b)| a * b).sum::<f64>() - y[i];
            for (j, &v) in row.iter().enumerate() {
                grad[j] += v * residual;
            }
        }
        w.scale_mut(1.0 - eta * lambda);
        w.axpy(-2.0 * eta / b_u as f64, &grad)?;
    }
    Model::new(ModelKind::Linear, vec![w])
}

/// Retrains a binary logistic-regression model from scratch on the surviving
/// samples.
///
/// # Errors
/// Label mismatches and invalid removal indices are reported as usual.
pub fn retrain_binary_logistic(
    dataset: &DenseDataset,
    provenance: &LogisticProvenance,
    removed: &[usize],
) -> Result<Model> {
    let y = match &dataset.labels {
        Labels::Binary(y) => y,
        _ => {
            return Err(CoreError::LabelMismatch {
                expected: "binary labels for binary logistic regression",
            })
        }
    };
    let removed = normalize_removed(dataset.num_samples(), removed)?;
    let eta = provenance.learning_rate;
    let lambda = provenance.regularization;
    let m = dataset.num_features();
    let mut w = provenance.initial_model.weight().clone();

    for t in 0..provenance.schedule.num_iterations() {
        let (batch, b_u) = provenance.schedule.batch_excluding(t, &removed);
        if b_u == 0 {
            w.scale_mut(1.0 - eta * lambda);
            continue;
        }
        let mut acc = Vector::zeros(m);
        for &i in &batch {
            let row = dataset.x.row(i);
            let margin: f64 = y[i] * row.iter().zip(w.iter()).map(|(a, b)| a * b).sum::<f64>();
            let coeff = y[i] * PiecewiseLinearSigmoid::exact(margin);
            for (j, &v) in row.iter().enumerate() {
                acc[j] += coeff * v;
            }
        }
        w.scale_mut(1.0 - eta * lambda);
        w.axpy(eta / b_u as f64, &acc)?;
    }
    Model::new(ModelKind::BinaryLogistic, vec![w])
}

/// Retrains a multinomial logistic-regression model from scratch on the
/// surviving samples.
///
/// # Errors
/// Label mismatches and invalid removal indices are reported as usual.
pub fn retrain_multinomial_logistic(
    dataset: &DenseDataset,
    provenance: &LogisticProvenance,
    removed: &[usize],
) -> Result<Model> {
    let (classes, q) = match &dataset.labels {
        Labels::Multiclass {
            classes,
            num_classes,
        } => (classes, *num_classes),
        _ => {
            return Err(CoreError::LabelMismatch {
                expected: "multiclass labels for multinomial logistic regression",
            })
        }
    };
    let removed = normalize_removed(dataset.num_samples(), removed)?;
    let eta = provenance.learning_rate;
    let lambda = provenance.regularization;
    let mut weights: Vec<Vector> = provenance.initial_model.weights().to_vec();

    for t in 0..provenance.schedule.num_iterations() {
        let (batch, b_u) = provenance.schedule.batch_excluding(t, &removed);
        if b_u == 0 {
            for w in &mut weights {
                w.scale_mut(1.0 - eta * lambda);
            }
            continue;
        }
        let rows = dataset.x.select_rows(&batch);
        let logits: Vec<Vector> = weights
            .iter()
            .map(|wk| rows.matvec(wk))
            .collect::<std::result::Result<_, _>>()?;
        let mut new_weights = Vec::with_capacity(q);
        for k in 0..q {
            let mut coeffs = Vec::with_capacity(batch.len());
            for (pos, &i) in batch.iter().enumerate() {
                let max = (0..q).fold(f64::NEG_INFINITY, |acc, c| acc.max(logits[c][pos]));
                let sum: f64 = (0..q).map(|c| (logits[c][pos] - max).exp()).sum();
                let p = (logits[k][pos] - max).exp() / sum;
                let indicator = if classes[i] as usize == k { 1.0 } else { 0.0 };
                coeffs.push(p - indicator);
            }
            let grad = rows.transpose_matvec(&Vector::from_vec(coeffs))?;
            let mut wk = weights[k].scaled(1.0 - eta * lambda);
            wk.axpy(-eta / b_u as f64, &grad)?;
            new_weights.push(wk);
        }
        weights = new_weights;
    }
    Model::new(ModelKind::MultinomialLogistic { num_classes: q }, weights)
}

/// Retrains a sparse binary logistic-regression model from scratch on the
/// surviving samples.
///
/// # Errors
/// Label mismatches and invalid removal indices are reported as usual.
pub fn retrain_sparse_binary_logistic(
    dataset: &SparseDataset,
    provenance: &SparseLogisticProvenance,
    removed: &[usize],
) -> Result<Model> {
    retrain_sparse_binary_logistic_with(dataset, provenance, removed, &mut Workspace::new())
}

/// Like [`retrain_sparse_binary_logistic`], reusing a caller-owned
/// [`Workspace`]. The retraining loop rides the same batched CSR kernels as
/// the sparse PrIU replay — one `rows_dot_into` gathers every survivor
/// margin, one `scatter_rows_into` applies the whole gradient — instead of
/// per-sample `row_dot` / `scatter_row` calls, keeping the BaseL-vs-PrIU
/// comparison apples-to-apples at every thread count. With warm buffers the
/// loop performs no heap allocation per iteration.
///
/// # Errors
/// See [`retrain_sparse_binary_logistic`].
pub fn retrain_sparse_binary_logistic_with(
    dataset: &SparseDataset,
    provenance: &SparseLogisticProvenance,
    removed: &[usize],
    ws: &mut Workspace,
) -> Result<Model> {
    let y = match &dataset.labels {
        Labels::Binary(y) => y,
        _ => {
            return Err(CoreError::LabelMismatch {
                expected: "binary labels for sparse logistic regression",
            })
        }
    };
    let removed = normalize_removed(dataset.num_samples(), removed)?;
    let eta = provenance.learning_rate;
    let lambda = provenance.regularization;
    let m = dataset.num_features();
    let mut w = provenance.initial_model.weight().clone();

    for t in 0..provenance.schedule.num_iterations() {
        provenance
            .schedule
            .batch_into(t, &mut ws.batch, &mut ws.idx_scratch);
        removed_positions_into(&ws.batch, &removed, &mut ws.positions);
        let b_u = ws.batch.len() - ws.positions.len();
        if b_u == 0 {
            w.scale_mut(1.0 - eta * lambda);
            continue;
        }
        ws.prepare_features(m);
        ws.prepare_sparse_batch(ws.batch.len());
        let Workspace {
            batch,
            positions,
            sel,
            b0: coeffs,
            m0: acc,
            ..
        } = ws;
        // Compact the surviving batch members.
        sel.clear();
        let mut next_removed = positions.iter().copied().peekable();
        for (pos, &i) in batch.iter().enumerate() {
            if next_removed.peek() == Some(&pos) {
                next_removed.next();
                continue;
            }
            sel.push(i);
        }
        // Gather all survivor margins with one batched kernel, then turn
        // them into scatter weights y_i · f(y_i · xᵀw).
        let coeffs = &mut coeffs[..sel.len()];
        dataset.x.rows_dot_into(sel, &w, coeffs)?;
        for (k, &i) in sel.iter().enumerate() {
            coeffs[k] = y[i] * PiecewiseLinearSigmoid::exact(y[i] * coeffs[k]);
        }
        // One chunk-ordered deterministic reduction applies the gradient.
        dataset.x.scatter_rows_into(sel, coeffs, acc)?;
        w.scale_mut(1.0 - eta * lambda);
        w.axpy(eta / b_u as f64, &*acc)?;
    }
    Model::new(ModelKind::BinaryLogistic, vec![w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainerConfig;
    use crate::trainer::linear::train_linear;
    use crate::trainer::logistic::train_binary_logistic;
    use priu_data::catalog::Hyperparameters;
    use priu_data::synthetic::classification::{
        generate_binary_classification, ClassificationConfig,
    };
    use priu_data::synthetic::regression::{generate_regression, RegressionConfig};

    fn config() -> TrainerConfig {
        TrainerConfig::from_hyper(Hyperparameters {
            batch_size: 40,
            num_iterations: 120,
            learning_rate: 0.05,
            regularization: 0.05,
        })
        .with_seed(5)
        .with_opt_capture(false)
    }

    #[test]
    fn retraining_with_empty_removal_matches_training_exactly_for_linear() {
        let data = generate_regression(&RegressionConfig {
            num_samples: 300,
            num_features: 5,
            seed: 81,
            ..Default::default()
        });
        let trained = train_linear(&data, &config()).unwrap();
        let retrained = retrain_linear(&data, &trained.provenance, &[]).unwrap();
        let diff = (&trained.model.flatten() - &retrained.flatten()).norm_inf();
        assert!(diff < 1e-10, "difference {diff}");
    }

    #[test]
    fn retraining_with_empty_removal_matches_training_for_binary_logistic() {
        let data = generate_binary_classification(&ClassificationConfig {
            num_samples: 300,
            num_features: 6,
            seed: 82,
            ..Default::default()
        });
        let mut cfg = config();
        cfg.hyper.learning_rate = 0.3;
        let trained = train_binary_logistic(&data, &cfg).unwrap();
        let retrained = retrain_binary_logistic(&data, &trained.provenance, &[]).unwrap();
        let diff = (&trained.model.flatten() - &retrained.flatten()).norm_inf();
        assert!(diff < 1e-10, "difference {diff}");
    }

    #[test]
    fn retraining_actually_changes_the_model_when_samples_are_removed() {
        let data = generate_regression(&RegressionConfig {
            num_samples: 200,
            num_features: 4,
            seed: 83,
            ..Default::default()
        });
        let trained = train_linear(&data, &config()).unwrap();
        let removed: Vec<usize> = (0..40).collect();
        let retrained = retrain_linear(&data, &trained.provenance, &removed).unwrap();
        assert_ne!(trained.model, retrained);
        assert!(retrained.is_finite());
    }

    #[test]
    fn sparse_retraining_on_the_kernel_layer_replays_training_exactly() {
        use priu_data::synthetic::sparse_text::{generate_sparse_binary, SparseConfig};
        // The trainer's GD step and the BaseL retraining loop now ride the
        // same batched CSR kernels, so an empty removal reproduces the
        // trained model bitwise — and the result is bitwise identical
        // across thread counts (mb-SGD batches stay single-chunk; the
        // kernels are deterministic regardless).
        let data = generate_sparse_binary(&SparseConfig {
            num_samples: 200,
            num_features: 150,
            nnz_per_row: 12,
            informative_fraction: 0.2,
            seed: 86,
        });
        let mut cfg = config();
        cfg.hyper.learning_rate = 0.3;
        let trained = crate::trainer::sparse::train_sparse_binary_logistic(&data, &cfg).unwrap();
        let removed = [2usize, 17, 40];
        let run = |threads: usize, removed: &[usize]| {
            priu_linalg::par::with_threads(threads, || {
                retrain_sparse_binary_logistic(&data, &trained.provenance, removed).unwrap()
            })
        };
        let empty = run(1, &[]);
        assert_eq!(trained.model, empty);
        assert_eq!(run(1, &removed), run(4, &removed));
        // The workspace variant is the same computation.
        let mut ws = Workspace::new();
        let with_ws =
            retrain_sparse_binary_logistic_with(&data, &trained.provenance, &removed, &mut ws)
                .unwrap();
        assert_eq!(run(1, &removed), with_ws);
    }

    #[test]
    fn mismatched_labels_are_rejected() {
        let data = generate_regression(&RegressionConfig {
            num_samples: 100,
            num_features: 3,
            seed: 84,
            ..Default::default()
        });
        let trained = train_linear(&data, &config()).unwrap();
        let bin = generate_binary_classification(&ClassificationConfig {
            num_samples: 100,
            num_features: 3,
            seed: 85,
            ..Default::default()
        });
        assert!(retrain_linear(&bin, &trained.provenance, &[]).is_err());
    }
}
