//! Caller-owned scratch buffers for the allocation-free hot paths.
//!
//! The GD trainer loop and the PrIU / PrIU-opt replay loops run the same
//! handful of kernels thousands of times per call. [`Workspace`] owns every
//! intermediate those loops need — the materialised batch indices, the
//! selected batch rows, batch-sized coefficient buffers and feature-sized
//! accumulators — so that after the first iteration warms the buffers, **no
//! further heap allocation happens per iteration**: all linear-algebra work
//! flows through the `_into` kernel variants of `priu_linalg`.
//!
//! Scope of the guarantee: it holds whenever the kernels execute on the
//! calling thread — i.e. always under `PRIU_THREADS=1` (multi-chunk
//! reductions borrow pooled thread-local scratch, amortised to zero), and
//! for any thread count when inputs stay on the single-chunk path (below
//! 512 rows, which covers both replay-loop operand shapes: batch-row blocks
//! and `m×m` cache applications with modest `m`). With `PRIU_THREADS > 1`
//! *and* larger operands, `priu_linalg::par` hands the kernel to its
//! persistent worker pool — the pool's threads are spawned once (lazily, on
//! the first such call) and each worker's scratch warms once; steady-state
//! parallel calls allocate nothing.
//!
//! The struct counts *growth events* (a buffer needing more capacity than it
//! had). A warmed workspace reports a stable [`Workspace::grow_events`]
//! across iterations, which the zero-allocation tests assert; the counting
//! global-allocator test in `tests/zero_alloc.rs` verifies the stronger
//! end-to-end property that update-call allocation totals are independent of
//! the iteration count.
//!
//! What is *not* covered: provenance capture storage. The trainers append a
//! freshly-built Gram cache and coefficient list per iteration — that data
//! outlives the loop by design and is exempt from the zero-allocation
//! guarantee (see DESIGN.md §3.3).

use priu_linalg::decomposition::EigenScratch;
use priu_linalg::Matrix;

/// Reusable scratch for the trainer and update hot loops.
///
/// Buffers are grouped by extent: index buffers, the batch-rows matrix,
/// batch-sized (`B`) float buffers and feature-sized (`m`) float buffers.
/// Callers inside `priu-core` access the fields directly (split borrows);
/// external callers only construct, pre-size and inspect.
#[derive(Debug, Default, Clone)]
pub struct Workspace {
    /// Materialised batch indices of the current iteration.
    pub(crate) batch: Vec<usize>,
    /// Working storage for batch derivation (`BatchSchedule::batch_into`).
    pub(crate) idx_scratch: Vec<usize>,
    /// Positions (within the batch) of removed samples.
    pub(crate) positions: Vec<usize>,
    /// Surviving batch-member sample indices, compacted (sparse replay).
    pub(crate) sel: Vec<usize>,
    /// Per-batch-member class labels (multinomial training).
    pub(crate) classes: Vec<usize>,
    /// Selected batch rows (`B x m`).
    pub(crate) rows: Matrix,
    /// Per-class logits over the batch (`q x B`, multinomial training).
    pub(crate) logits: Matrix,
    /// Batch-sized float buffers.
    pub(crate) b0: Vec<f64>,
    pub(crate) b1: Vec<f64>,
    pub(crate) b2: Vec<f64>,
    pub(crate) b3: Vec<f64>,
    /// Feature-sized float buffers.
    pub(crate) m0: Vec<f64>,
    pub(crate) m1: Vec<f64>,
    pub(crate) m2: Vec<f64>,
    /// Gram-cache apply scratch (rank- and removal-sized).
    pub(crate) g0: Vec<f64>,
    pub(crate) g1: Vec<f64>,
    /// Feature-square (`m x m`) matrix buffers for the offline
    /// decomposition paths (PrIU-opt capture Grams, closed-form views and
    /// their Cholesky factors).
    pub(crate) mm0: Matrix,
    pub(crate) mm1: Matrix,
    /// Symmetric eigendecomposition scratch — tridiag + QL pipeline plus
    /// the Jacobi fallback (PrIU-opt offline captures).
    pub(crate) eig: EigenScratch,
    grow_events: usize,
}

fn ensure_zeroed(buf: &mut Vec<f64>, len: usize, grew: &mut usize) {
    if buf.capacity() < len {
        *grew += 1;
    }
    buf.clear();
    buf.resize(len, 0.0);
}

/// Grow-only sizing without re-zeroing existing elements — for loops that
/// fully overwrite every element they later read, where a per-iteration
/// memset would be pure overhead.
fn ensure_len(buf: &mut Vec<f64>, len: usize, grew: &mut usize) {
    if buf.capacity() < len {
        *grew += 1;
    }
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

impl Workspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for a dense problem with `num_features`
    /// columns, batches of up to `batch_size` rows and `num_classes` weight
    /// vectors, with the growth counter reset — so the first hot-loop
    /// iteration is already allocation-free. Engines call this before
    /// starting the update timer.
    pub fn sized_for(num_features: usize, batch_size: usize, num_classes: usize) -> Self {
        let mut ws = Self::new();
        ws.batch.reserve(batch_size);
        // Batch derivation's dense-draw branch (taken when `4·B >= n`)
        // scratches over all `n <= 4·B` indices; the sparse Floyd branch
        // needs only `B`. Reserving `4·B` covers both.
        ws.idx_scratch.reserve(batch_size.saturating_mul(4).max(64));
        ws.positions.reserve(batch_size);
        ws.sel.reserve(batch_size);
        ws.classes.reserve(batch_size);
        ws.rows.reshape_zeroed(batch_size, num_features);
        ws.logits.reshape_zeroed(num_classes.max(1), batch_size);
        for buf in [&mut ws.b0, &mut ws.b1, &mut ws.b2, &mut ws.b3] {
            buf.reserve(batch_size);
        }
        for buf in [&mut ws.m0, &mut ws.m1, &mut ws.m2, &mut ws.g0, &mut ws.g1] {
            buf.reserve(num_features);
        }
        ws.grow_events = 0;
        ws
    }

    /// Number of times a buffer needed more capacity than it had. Stable
    /// across iterations once the workspace is warm — the cheap runtime
    /// signal behind the zero-allocation guarantee.
    pub fn grow_events(&self) -> usize {
        self.grow_events
    }

    /// Resets the growth counter (typically right after warm-up).
    pub fn reset_grow_events(&mut self) {
        self.grow_events = 0;
    }

    /// Extends the Gram-apply scratch reservation to cover `rows` deflation
    /// rows (chained sessions can carry corrections larger than a batch;
    /// engines call this with the provenance's maximum before the timer
    /// starts).
    pub fn reserve_gram_scratch(&mut self, rows: usize) {
        if self.g1.capacity() < rows {
            self.g1.reserve(rows.saturating_sub(self.g1.len()));
        }
    }

    /// Pre-sizes the offline decomposition buffers for `num_features ×
    /// num_features` problems — the `m × m` matrix pair (Gram / Cholesky
    /// factor) and the symmetric eigendecomposition scratch. Engines call this
    /// before the offline timer (PrIU-opt capture) and before a timed
    /// closed-form update, so neither allocates buffers inside the timed
    /// region.
    pub fn reserve_decompositions(&mut self, num_features: usize) {
        self.mm0.reshape_zeroed(num_features, num_features);
        self.mm1.reshape_zeroed(num_features, num_features);
        self.eig.reserve(num_features);
    }

    /// Sizes and zeroes the feature-extent accumulators (`m0`-`m2`).
    pub(crate) fn prepare_features(&mut self, num_features: usize) {
        for buf in [&mut self.m0, &mut self.m1, &mut self.m2] {
            ensure_zeroed(buf, num_features, &mut self.grow_events);
        }
    }

    /// Sizes and zeroes the batch-extent buffers (`b0`-`b3`).
    pub(crate) fn prepare_batch(&mut self, batch_len: usize) {
        for buf in [&mut self.b0, &mut self.b1, &mut self.b2, &mut self.b3] {
            ensure_zeroed(buf, batch_len, &mut self.grow_events);
        }
    }

    /// Sizes the batch-extent buffers the sparse replay loops use
    /// (`b0`-`b2`) without zeroing: those loops overwrite every element
    /// they read, so the per-iteration memset of [`Workspace::prepare_batch`]
    /// would be wasted work in the hot path. Callers index only
    /// `[..batch_len]`.
    pub(crate) fn prepare_sparse_batch(&mut self, batch_len: usize) {
        for buf in [&mut self.b0, &mut self.b1, &mut self.b2] {
            ensure_len(buf, batch_len, &mut self.grow_events);
        }
    }

    /// Selects the current `batch` rows of `x` into the rows buffer.
    pub(crate) fn select_batch_rows(&mut self, x: &Matrix) {
        if self.rows.capacity() < self.batch.len() * x.ncols() {
            self.grow_events += 1;
        }
        x.select_rows_into(&self.batch, &mut self.rows);
    }

    /// Shapes the two `m × m` decomposition matrices without zeroing
    /// (every consumer either fully overwrites `mm0` or hands the buffers
    /// to kernels that reshape them itself — a memset here would be pure
    /// overhead inside the timed closed-form update), counting capacity
    /// growth like every other buffer.
    pub(crate) fn prepare_square(&mut self, num_features: usize) {
        for buf in [&mut self.mm0, &mut self.mm1] {
            if buf.capacity() < num_features * num_features {
                self.grow_events += 1;
            }
            buf.reshape_for_overwrite(num_features, num_features);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_is_counted_once_per_capacity_increase() {
        let mut ws = Workspace::new();
        ws.prepare_features(16);
        ws.prepare_batch(8);
        let after_first = ws.grow_events();
        assert!(after_first > 0);
        // Same sizes: warm, no growth.
        ws.prepare_features(16);
        ws.prepare_batch(8);
        assert_eq!(ws.grow_events(), after_first);
        // Smaller sizes reuse capacity.
        ws.prepare_features(4);
        ws.prepare_batch(2);
        assert_eq!(ws.grow_events(), after_first);
        // Larger sizes grow again.
        ws.prepare_features(64);
        assert!(ws.grow_events() > after_first);
    }

    #[test]
    fn sized_for_makes_the_first_iteration_warm() {
        let mut ws = Workspace::sized_for(32, 10, 3);
        assert_eq!(ws.grow_events(), 0);
        ws.prepare_features(32);
        ws.prepare_batch(10);
        let x = Matrix::from_fn(20, 32, |i, j| (i + j) as f64);
        ws.batch.extend_from_slice(&[1, 3, 5]);
        ws.select_batch_rows(&x);
        assert_eq!(ws.grow_events(), 0);
    }
}
