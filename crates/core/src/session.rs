//! High-level sessions: train once (capturing provenance), then run any
//! number of timed deletion updates with any of the competing methods.
//!
//! This is the API the examples and the benchmark harness use; it mirrors the
//! paper's experimental protocol: provenance collection happens offline
//! during training and is *not* counted in the reported update times, which
//! only cover the online work of each method.

use std::time::{Duration, Instant};

use priu_data::dataset::{DenseDataset, SparseDataset};

use crate::baseline::closed_form::{closed_form_incremental, ClosedFormCapture};
use crate::baseline::influence::influence_update;
use crate::baseline::retrain::{
    retrain_binary_logistic, retrain_linear, retrain_multinomial_logistic,
    retrain_sparse_binary_logistic,
};
use crate::capture::ProvenanceMemory;
use crate::config::TrainerConfig;
use crate::error::Result;
use crate::model::Model;
use crate::trainer::linear::{train_linear, TrainedLinear};
use crate::trainer::logistic::{train_binary_logistic, train_multinomial_logistic, TrainedLogistic};
use crate::trainer::sparse::{train_sparse_binary_logistic, TrainedSparseLogistic};
use crate::update::priu_linear::priu_update_linear;
use crate::update::priu_logistic::priu_update_logistic;
use crate::update::priu_opt_linear::priu_opt_update_linear;
use crate::update::priu_opt_logistic::priu_opt_update_logistic;
use crate::update::sparse_logistic::priu_update_sparse_logistic;

/// The result of one timed incremental-update (or retraining) run.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// The updated model.
    pub model: Model,
    /// Wall-clock time of the online update work.
    pub duration: Duration,
}

fn timed<F: FnOnce() -> Result<Model>>(f: F) -> Result<UpdateOutcome> {
    let start = Instant::now();
    let model = f()?;
    Ok(UpdateOutcome {
        model,
        duration: start.elapsed(),
    })
}

/// A linear-regression session: dataset + trained model + captured
/// provenance + the closed-form baseline's materialised views.
#[derive(Debug, Clone)]
pub struct LinearSession {
    dataset: DenseDataset,
    config: TrainerConfig,
    trained: TrainedLinear,
    closed_form: ClosedFormCapture,
    training_time: Duration,
}

impl LinearSession {
    /// Trains the initial model and captures provenance (offline phase).
    ///
    /// # Errors
    /// Propagates training failures (label mismatch, divergence).
    pub fn fit(dataset: DenseDataset, config: TrainerConfig) -> Result<Self> {
        let start = Instant::now();
        let trained = train_linear(&dataset, &config)?;
        let closed_form = ClosedFormCapture::build(&dataset, config.hyper.regularization)?;
        Ok(Self {
            dataset,
            config,
            trained,
            closed_form,
            training_time: start.elapsed(),
        })
    }

    /// The training dataset.
    pub fn dataset(&self) -> &DenseDataset {
        &self.dataset
    }

    /// The initially trained model `M_init`.
    pub fn initial_model(&self) -> &Model {
        &self.trained.model
    }

    /// Wall-clock time of the offline phase (training + provenance capture).
    pub fn training_time(&self) -> Duration {
        self.training_time
    }

    /// Bytes of captured provenance (Q8 / Table 3).
    pub fn provenance_bytes(&self) -> usize {
        self.trained.provenance.provenance_bytes()
    }

    /// PrIU incremental update (Eq. 13/14).
    ///
    /// # Errors
    /// Propagates update failures.
    pub fn priu(&self, removed: &[usize]) -> Result<UpdateOutcome> {
        timed(|| priu_update_linear(&self.dataset, &self.trained.provenance, removed))
    }

    /// PrIU-opt incremental update (Eq. 15-18).
    ///
    /// # Errors
    /// Propagates update failures (including a missing opt capture).
    pub fn priu_opt(&self, removed: &[usize]) -> Result<UpdateOutcome> {
        timed(|| priu_opt_update_linear(&self.dataset, &self.trained.provenance, removed))
    }

    /// BaseL: retrain from scratch on the surviving samples.
    ///
    /// # Errors
    /// Propagates retraining failures.
    pub fn retrain(&self, removed: &[usize]) -> Result<UpdateOutcome> {
        timed(|| retrain_linear(&self.dataset, &self.trained.provenance, removed))
    }

    /// Closed-form incremental update of the regularised normal equations.
    ///
    /// # Errors
    /// Propagates factorisation failures.
    pub fn closed_form(&self, removed: &[usize]) -> Result<UpdateOutcome> {
        timed(|| closed_form_incremental(&self.dataset, &self.closed_form, removed))
    }

    /// INFL: influence-function estimate of the updated model.
    ///
    /// # Errors
    /// Propagates Hessian-solve failures.
    pub fn influence(&self, removed: &[usize]) -> Result<UpdateOutcome> {
        timed(|| {
            influence_update(
                &self.dataset,
                &self.trained.model,
                self.config.hyper.regularization,
                removed,
            )
        })
    }
}

/// A binary logistic-regression session.
#[derive(Debug, Clone)]
pub struct BinaryLogisticSession {
    dataset: DenseDataset,
    config: TrainerConfig,
    trained: TrainedLogistic,
    training_time: Duration,
}

/// A multinomial logistic-regression session.
#[derive(Debug, Clone)]
pub struct MultinomialSession {
    dataset: DenseDataset,
    config: TrainerConfig,
    trained: TrainedLogistic,
    training_time: Duration,
}

macro_rules! logistic_session_impl {
    ($name:ident, $retrain:ident) => {
        impl $name {
            /// The training dataset.
            pub fn dataset(&self) -> &DenseDataset {
                &self.dataset
            }

            /// The initially trained model `M_init`.
            pub fn initial_model(&self) -> &Model {
                &self.trained.model
            }

            /// Wall-clock time of the offline phase (training + capture).
            pub fn training_time(&self) -> Duration {
                self.training_time
            }

            /// Bytes of captured provenance (Q8 / Table 3).
            pub fn provenance_bytes(&self) -> usize {
                self.trained.provenance.provenance_bytes()
            }

            /// PrIU incremental update (Eq. 19/20).
            ///
            /// # Errors
            /// Propagates update failures.
            pub fn priu(&self, removed: &[usize]) -> Result<UpdateOutcome> {
                timed(|| priu_update_logistic(&self.dataset, &self.trained.provenance, removed))
            }

            /// PrIU-opt incremental update (§5.4).
            ///
            /// # Errors
            /// Propagates update failures (including a missing opt capture).
            pub fn priu_opt(&self, removed: &[usize]) -> Result<UpdateOutcome> {
                timed(|| {
                    priu_opt_update_logistic(&self.dataset, &self.trained.provenance, removed)
                })
            }

            /// BaseL: retrain from scratch on the surviving samples.
            ///
            /// # Errors
            /// Propagates retraining failures.
            pub fn retrain(&self, removed: &[usize]) -> Result<UpdateOutcome> {
                timed(|| $retrain(&self.dataset, &self.trained.provenance, removed))
            }

            /// INFL: influence-function estimate of the updated model.
            ///
            /// # Errors
            /// Propagates Hessian-solve failures.
            pub fn influence(&self, removed: &[usize]) -> Result<UpdateOutcome> {
                timed(|| {
                    influence_update(
                        &self.dataset,
                        &self.trained.model,
                        self.config.hyper.regularization,
                        removed,
                    )
                })
            }
        }
    };
}

logistic_session_impl!(BinaryLogisticSession, retrain_binary_logistic);
logistic_session_impl!(MultinomialSession, retrain_multinomial_logistic);

impl BinaryLogisticSession {
    /// Trains the initial model and captures provenance (offline phase).
    ///
    /// # Errors
    /// Propagates training failures.
    pub fn fit(dataset: DenseDataset, config: TrainerConfig) -> Result<Self> {
        let start = Instant::now();
        let trained = train_binary_logistic(&dataset, &config)?;
        Ok(Self {
            dataset,
            config,
            trained,
            training_time: start.elapsed(),
        })
    }
}

impl MultinomialSession {
    /// Trains the initial model and captures provenance (offline phase).
    ///
    /// # Errors
    /// Propagates training failures.
    pub fn fit(dataset: DenseDataset, config: TrainerConfig) -> Result<Self> {
        let start = Instant::now();
        let trained = train_multinomial_logistic(&dataset, &config)?;
        Ok(Self {
            dataset,
            config,
            trained,
            training_time: start.elapsed(),
        })
    }
}

/// A sparse binary logistic-regression session (RCV1-style workloads).
#[derive(Debug, Clone)]
pub struct SparseLogisticSession {
    dataset: SparseDataset,
    trained: TrainedSparseLogistic,
    training_time: Duration,
}

impl SparseLogisticSession {
    /// Trains the initial model and captures provenance (offline phase).
    ///
    /// # Errors
    /// Propagates training failures.
    pub fn fit(dataset: SparseDataset, config: TrainerConfig) -> Result<Self> {
        let start = Instant::now();
        let trained = train_sparse_binary_logistic(&dataset, &config)?;
        Ok(Self {
            dataset,
            trained,
            training_time: start.elapsed(),
        })
    }

    /// The training dataset.
    pub fn dataset(&self) -> &SparseDataset {
        &self.dataset
    }

    /// The initially trained model `M_init`.
    pub fn initial_model(&self) -> &Model {
        &self.trained.model
    }

    /// Wall-clock time of the offline phase (training + capture).
    pub fn training_time(&self) -> Duration {
        self.training_time
    }

    /// Bytes of captured provenance (coefficients only, §5.3).
    pub fn provenance_bytes(&self) -> usize {
        self.trained.provenance.provenance_bytes()
    }

    /// PrIU incremental update via the linearised rule (Eq. 11).
    ///
    /// # Errors
    /// Propagates update failures.
    pub fn priu(&self, removed: &[usize]) -> Result<UpdateOutcome> {
        timed(|| priu_update_sparse_logistic(&self.dataset, &self.trained.provenance, removed))
    }

    /// BaseL: retrain from scratch on the surviving samples.
    ///
    /// # Errors
    /// Propagates retraining failures.
    pub fn retrain(&self, removed: &[usize]) -> Result<UpdateOutcome> {
        timed(|| retrain_sparse_binary_logistic(&self.dataset, &self.trained.provenance, removed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::compare_models;
    use priu_data::catalog::Hyperparameters;
    use priu_data::dirty::random_subsets;
    use priu_data::synthetic::classification::{
        generate_binary_classification, generate_multiclass_classification, ClassificationConfig,
    };
    use priu_data::synthetic::regression::{generate_regression, RegressionConfig};
    use priu_data::synthetic::sparse_text::{generate_sparse_binary, SparseConfig};

    fn hyper() -> Hyperparameters {
        Hyperparameters {
            batch_size: 50,
            num_iterations: 150,
            learning_rate: 0.05,
            regularization: 0.02,
        }
    }

    #[test]
    fn linear_session_runs_all_methods() {
        let data = generate_regression(&RegressionConfig {
            num_samples: 300,
            num_features: 6,
            seed: 1,
            ..Default::default()
        });
        let session = LinearSession::fit(data, TrainerConfig::from_hyper(hyper())).unwrap();
        let removed = random_subsets(300, 0.05, 1, 1)[0].clone();
        let priu = session.priu(&removed).unwrap();
        let opt = session.priu_opt(&removed).unwrap();
        let retrain = session.retrain(&removed).unwrap();
        let closed = session.closed_form(&removed).unwrap();
        let infl = session.influence(&removed).unwrap();
        for outcome in [&priu, &opt, &retrain, &closed, &infl] {
            assert!(outcome.model.is_finite());
            assert!(outcome.duration > Duration::ZERO);
        }
        let cmp = compare_models(&retrain.model, &priu.model).unwrap();
        assert!(cmp.cosine_similarity > 0.999);
        assert!(session.provenance_bytes() > 0);
        assert!(session.training_time() > Duration::ZERO);
        assert_eq!(session.dataset().num_samples(), 300);
        assert!(session.initial_model().is_finite());
    }

    #[test]
    fn binary_session_runs_all_methods() {
        let data = generate_binary_classification(&ClassificationConfig {
            num_samples: 300,
            num_features: 6,
            separation: 3.0,
            seed: 2,
            ..Default::default()
        });
        let mut h = hyper();
        h.learning_rate = 0.3;
        let session = BinaryLogisticSession::fit(data, TrainerConfig::from_hyper(h)).unwrap();
        let removed = random_subsets(300, 0.05, 1, 2)[0].clone();
        let priu = session.priu(&removed).unwrap();
        let opt = session.priu_opt(&removed).unwrap();
        let retrain = session.retrain(&removed).unwrap();
        let infl = session.influence(&removed).unwrap();
        assert!(priu.model.is_finite() && opt.model.is_finite());
        assert!(retrain.model.is_finite() && infl.model.is_finite());
        let cmp = compare_models(&retrain.model, &priu.model).unwrap();
        assert!(cmp.cosine_similarity > 0.99);
    }

    #[test]
    fn multinomial_session_runs_all_methods() {
        let data = generate_multiclass_classification(&ClassificationConfig {
            num_samples: 400,
            num_features: 8,
            num_classes: 3,
            separation: 3.0,
            seed: 3,
            ..Default::default()
        });
        let mut h = hyper();
        h.learning_rate = 0.3;
        let session = MultinomialSession::fit(data, TrainerConfig::from_hyper(h)).unwrap();
        let removed = random_subsets(400, 0.02, 1, 3)[0].clone();
        let priu = session.priu(&removed).unwrap();
        let retrain = session.retrain(&removed).unwrap();
        let cmp = compare_models(&retrain.model, &priu.model).unwrap();
        assert!(cmp.cosine_similarity > 0.99);
    }

    #[test]
    fn sparse_session_runs_priu_and_retrain() {
        let data = generate_sparse_binary(&SparseConfig {
            num_samples: 300,
            num_features: 200,
            nnz_per_row: 15,
            informative_fraction: 0.2,
            seed: 4,
        });
        let mut h = hyper();
        h.learning_rate = 0.3;
        let session = SparseLogisticSession::fit(data, TrainerConfig::from_hyper(h)).unwrap();
        let removed = random_subsets(300, 0.05, 1, 4)[0].clone();
        let priu = session.priu(&removed).unwrap();
        let retrain = session.retrain(&removed).unwrap();
        let cmp = compare_models(&retrain.model, &priu.model).unwrap();
        assert!(cmp.cosine_similarity > 0.99);
        assert!(session.provenance_bytes() > 0);
        assert!(session.training_time() > Duration::ZERO);
        assert_eq!(session.dataset().num_samples(), 300);
        assert!(session.initial_model().is_finite());
    }
}
