//! Deprecated session aliases.
//!
//! The four per-family session structs of early releases were unified behind
//! the [`crate::engine`] API: one [`crate::engine::SessionBuilder`], one
//! [`crate::engine::DeletionEngine`] trait, one [`crate::engine::Method`]
//! registry. The old type names remain as thin aliases for one release so
//! downstream code keeps compiling; the per-method inherent functions
//! (`.priu()`, `.retrain()`, ...) are replaced by
//! `update(Method::Priu, removed)` and friends on the trait.

use crate::engine;

/// Deprecated alias of [`engine::LinearEngine`].
#[deprecated(
    since = "0.1.0",
    note = "use engine::SessionBuilder / engine::LinearEngine with the DeletionEngine trait"
)]
pub type LinearSession = engine::LinearEngine;

/// Deprecated alias of [`engine::LogisticEngine`] (binary labels).
#[deprecated(
    since = "0.1.0",
    note = "use engine::SessionBuilder / engine::LogisticEngine with the DeletionEngine trait"
)]
pub type BinaryLogisticSession = engine::LogisticEngine;

/// Deprecated alias of [`engine::LogisticEngine`] (multiclass labels).
#[deprecated(
    since = "0.1.0",
    note = "use engine::SessionBuilder / engine::LogisticEngine with the DeletionEngine trait"
)]
pub type MultinomialSession = engine::LogisticEngine;

/// Deprecated alias of [`engine::SparseLogisticEngine`].
#[deprecated(
    since = "0.1.0",
    note = "use engine::SessionBuilder / engine::SparseLogisticEngine with the DeletionEngine trait"
)]
pub type SparseLogisticSession = engine::SparseLogisticEngine;

/// Moved: the outcome type now lives in [`crate::engine`] and additionally
/// carries the [`engine::Method`] that produced it plus the removal count.
pub use engine::UpdateOutcome;
