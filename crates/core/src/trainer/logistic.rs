//! Binary and multinomial logistic-regression training (Eq. 6) with
//! provenance capture via piecewise-linear interpolation (§4.2, §5.3, §5.4).
//!
//! The trainers run the *exact* non-linear mb-SGD update to produce the
//! initial model; at every iteration they additionally capture the
//! linearisation of the non-linearity around the current trajectory —
//! per-sample coefficients `(a_{i,(t)}, b'_{i,(t)})`, the aggregated
//! Gram-form `C^{(t)}` (possibly truncated, Eq. 20) and moment vector
//! `D^{(t)}` — which is all the incremental update (Eq. 19) needs.
//!
//! For the multinomial case the softmax probability of class `k` is written
//! as `σ(w_kᵀx_i − L_{i,k})` with `L_{i,k} = ln Σ_{j≠k} e^{w_jᵀx_i}` captured
//! during training, reducing the multi-dimensional interpolation of [51] to
//! the same 1-D interpolant per class (see `DESIGN.md` §2.6 for why this
//! substitution preserves the paper's structure).

use priu_data::dataset::{DenseDataset, Labels};
use priu_data::minibatch::BatchSchedule;
use priu_linalg::decomposition::eigen::SymmetricEigen;
use priu_linalg::{Matrix, Vector};

use crate::capture::{
    ClassIterationCache, GramCache, LogisticIterationCache, LogisticOptCapture,
    LogisticOptClassCapture, LogisticProvenance,
};
use crate::config::{Compression, TrainerConfig};
use crate::error::{CoreError, Result};
use crate::interpolation::PiecewiseLinearSigmoid;
use crate::model::{Model, ModelKind};
use crate::workspace::Workspace;

/// The result of training a logistic-regression model with provenance
/// capture.
#[derive(Debug, Clone)]
pub struct TrainedLogistic {
    /// The trained model `M_init`.
    pub model: Model,
    /// The captured provenance, consumed by `update::priu_logistic` and
    /// `update::priu_opt_logistic`.
    pub provenance: LogisticProvenance,
}

/// Builds one class's per-iteration cache from batch rows and coefficients.
/// Borrows its inputs — `transpose_matvec` consumes the coefficient slice
/// directly, so nothing is cloned beyond what the cache stores.
fn build_class_cache(
    rows: &Matrix,
    a: &[f64],
    b_prime: &[f64],
    compression: crate::config::Compression,
) -> Result<ClassIterationCache> {
    let d = rows.transpose_matvec(b_prime)?;
    let gram = GramCache::build(rows, a, compression)?;
    let coefficients = a.iter().copied().zip(b_prime.iter().copied()).collect();
    Ok(ClassIterationCache {
        gram,
        d,
        coefficients,
    })
}

/// Runs one exact binary-logistic mb-SGD step (Eq. 6) on the batch staged
/// in `ws.batch`, selecting rows from `x`/`y` and mutating `w` in place.
/// The single definition of the step: the trainer loop calls it per
/// scheduled iteration, the delta engine for appended explicit batches.
///
/// With `capture` set the iteration's linearised provenance — the `(a, b')`
/// coefficients around the *current* trajectory plus the aggregated Gram
/// form — is built and returned (allocates: it is storage). With `None` the
/// step touches only workspace buffers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn binary_logistic_step(
    x: &Matrix,
    y: &Vector,
    w: &mut Vector,
    eta: f64,
    lambda: f64,
    interp: &PiecewiseLinearSigmoid,
    capture: Option<Compression>,
    ws: &mut Workspace,
) -> Result<Option<LogisticIterationCache>> {
    let m = x.ncols();
    let b = ws.batch.len();
    ws.select_batch_rows(x);
    ws.prepare_batch(b);
    ws.prepare_features(m);
    let Workspace {
        batch,
        rows,
        b0: xw,
        b1: update_coeffs,
        b2: a_coeffs,
        b3: b_coeffs,
        m0: grad,
        ..
    } = ws;

    rows.matvec_into(w, xw)?;
    // Exact update: w ← (1-ηλ) w + (η/B) Σ y_i x_i f(y_i wᵀ x_i).
    for pos in 0..b {
        let yi = y[batch[pos]];
        let margin = yi * xw[pos];
        update_coeffs[pos] = yi * PiecewiseLinearSigmoid::exact(margin);
        let seg = interp.coefficients(margin);
        // Contribution of sample i: a·x xᵀ w + b'·x with b' = intercept·y.
        a_coeffs[pos] = seg.slope;
        b_coeffs[pos] = seg.intercept * yi;
    }
    rows.transpose_matvec_into(update_coeffs, grad)?;
    // Fused parameter step (bitwise identical to scale_mut + axpy on
    // every SIMD level).
    w.scale_add(1.0 - eta * lambda, eta / b as f64, grad)?;

    let Some(compression) = capture else {
        return Ok(None);
    };
    let cache = build_class_cache(&ws.rows, &ws.b2, &ws.b3, compression)?;
    Ok(Some(LogisticIterationCache {
        classes: vec![cache],
        batch_size: b,
    }))
}

/// Runs one exact multinomial mb-SGD step on the batch staged in `ws.batch`
/// (all class logits computed up front, so in-place weight updates never
/// feed an updated class back in), mutating `weights` in place. As with
/// [`binary_logistic_step`], `capture` controls whether the per-class
/// linearised provenance is built and returned.
#[allow(clippy::too_many_arguments)]
pub(crate) fn multinomial_logistic_step(
    x: &Matrix,
    classes: &[u32],
    q: usize,
    weights: &mut [Vector],
    eta: f64,
    lambda: f64,
    interp: &PiecewiseLinearSigmoid,
    capture: Option<Compression>,
    ws: &mut Workspace,
) -> Result<Option<LogisticIterationCache>> {
    let m = x.ncols();
    let b = ws.batch.len();
    ws.select_batch_rows(x);
    ws.prepare_batch(b);
    ws.prepare_features(m);
    ws.classes.clear();
    ws.classes
        .extend(ws.batch.iter().map(|&i| classes[i] as usize));
    // Per-class logits over the batch, one row of the logits buffer per
    // class.
    ws.logits.reshape_zeroed(q, b);
    for (k, wk) in weights.iter().enumerate() {
        ws.rows.matvec_into(wk, ws.logits.row_mut(k))?;
    }

    let mut class_caches = capture.map(|_| Vec::with_capacity(q));
    // Pre-compute per-sample log-sum-exp over all classes.
    {
        let Workspace {
            logits, b0: lse, ..
        } = ws;
        for i in 0..b {
            let max = (0..q).fold(f64::NEG_INFINITY, |acc, k| acc.max(logits[(k, i)]));
            let sum: f64 = (0..q).map(|k| (logits[(k, i)] - max).exp()).sum();
            lse[i] = max + sum.ln();
        }
    }

    for k in 0..q {
        let Workspace {
            classes: batch_classes,
            logits,
            b0: lse,
            b1: exact_coeffs,
            b2: a_coeffs,
            b3: b_coeffs,
            m0: grad,
            rows,
            ..
        } = ws;
        for i in 0..b {
            let z = logits[(k, i)];
            let p = (z - lse[i]).exp();
            let indicator = if batch_classes[i] == k { 1.0 } else { 0.0 };
            exact_coeffs[i] = p - indicator;

            // Scalarised softmax: p = σ(z − L) with L the log-sum-exp of
            // the *other* classes; clamp for numerical safety when p≈1.
            let l_other = lse[i] + (1.0 - p).max(1e-300).ln();
            let u = z - l_other;
            let seg = interp.sigmoid_coefficients(u);
            // Gradient contribution: x (σ(u) − 1[y=k]) ≈ α x xᵀ w_k +
            // (β − α·L − 1[y=k]) x; cast into the Eq. 19 form
            // `+ a x xᵀ w + b' x` with a = −α, b' = 1[y=k] − β + α·L.
            a_coeffs[i] = -seg.slope;
            b_coeffs[i] = indicator - seg.intercept + seg.slope * l_other;
        }
        // Exact update for class k (the logits were computed up front, so
        // updating in place never feeds an updated weight back in).
        rows.transpose_matvec_into(exact_coeffs, grad)?;
        // Fused parameter step (bitwise identical to scale_mut + axpy).
        weights[k].scale_add(1.0 - eta * lambda, -eta / b as f64, grad)?;

        if let (Some(caches), Some(compression)) = (class_caches.as_mut(), capture) {
            caches.push(build_class_cache(&ws.rows, &ws.b2, &ws.b3, compression)?);
        }
    }

    Ok(class_caches.map(|classes| LogisticIterationCache {
        classes,
        batch_size: b,
    }))
}

/// Trains a binary logistic-regression model (labels in `{-1, +1}`) with
/// mb-SGD while capturing PrIU provenance.
///
/// # Errors
/// * [`CoreError::LabelMismatch`] for non-binary labels.
/// * [`CoreError::Diverged`] if parameters become non-finite.
pub fn train_binary_logistic(
    dataset: &DenseDataset,
    config: &TrainerConfig,
) -> Result<TrainedLogistic> {
    train_binary_logistic_with(dataset, config, &mut Workspace::new())
}

/// Like [`train_binary_logistic`], reusing a caller-owned [`Workspace`]:
/// once the buffers are warm, the mb-SGD step performs no heap allocation
/// per iteration (provenance capture storage still allocates — it outlives
/// the loop by design).
///
/// # Errors
/// See [`train_binary_logistic`].
pub fn train_binary_logistic_with(
    dataset: &DenseDataset,
    config: &TrainerConfig,
    ws: &mut Workspace,
) -> Result<TrainedLogistic> {
    let y = match &dataset.labels {
        Labels::Binary(y) => y,
        _ => {
            return Err(CoreError::LabelMismatch {
                expected: "binary (+1/-1) labels for binary logistic regression",
            })
        }
    };
    let n = dataset.num_samples();
    let m = dataset.num_features();
    let hyper = &config.hyper;
    let schedule = BatchSchedule::new(n, hyper.batch_size, hyper.num_iterations, config.seed);
    let eta = hyper.learning_rate;
    let lambda = hyper.regularization;
    let interp = &config.interpolation;
    let ts = config.opt_switch_iteration();

    let initial_model = Model::zeros(ModelKind::BinaryLogistic, m);
    let mut w = Vector::zeros(m);
    let mut iterations = Vec::with_capacity(hyper.num_iterations);
    let mut opt: Option<LogisticOptCapture> = None;

    for t in 0..hyper.num_iterations {
        // PrIU-opt freeze point: capture full-data linearisation at w^{(ts)}.
        if config.capture_opt && t == ts {
            opt = Some(capture_binary_opt(dataset, y, &w, interp, ts, m, ws)?);
        }

        schedule.batch_into(t, &mut ws.batch, &mut ws.idx_scratch);
        let cache = binary_logistic_step(
            &dataset.x,
            y,
            &mut w,
            eta,
            lambda,
            interp,
            Some(config.compression),
            ws,
        )?
        .expect("capture was requested");
        if t % 32 == 0 && !w.is_finite() {
            return Err(CoreError::Diverged { iteration: t });
        }
        iterations.push(cache);
    }
    if !w.is_finite() {
        return Err(CoreError::Diverged {
            iteration: hyper.num_iterations,
        });
    }

    let model = Model::new(ModelKind::BinaryLogistic, vec![w])?;
    Ok(TrainedLogistic {
        model,
        provenance: LogisticProvenance {
            schedule,
            learning_rate: eta,
            regularization: lambda,
            initial_model,
            iterations,
            opt,
        },
    })
}

fn capture_binary_opt(
    dataset: &DenseDataset,
    y: &Vector,
    w: &Vector,
    interp: &PiecewiseLinearSigmoid,
    ts: usize,
    m: usize,
    ws: &mut Workspace,
) -> Result<LogisticOptCapture> {
    let n = dataset.num_samples();
    let xw = dataset.x.matvec(w)?;
    let mut a_all = Vec::with_capacity(n);
    let mut b_all = Vec::with_capacity(n);
    for i in 0..n {
        let margin = y[i] * xw[i];
        let seg = interp.coefficients(margin);
        a_all.push(seg.slope);
        b_all.push(seg.intercept * y[i]);
    }
    // The frozen C* and its eigendecomposition run on workspace buffers;
    // only the capture's stored pieces are allocated.
    ws.prepare_square(m);
    let Workspace { mm0, eig, .. } = ws;
    dataset.x.weighted_gram_into(Some(&a_all), mm0);
    let eigen = SymmetricEigen::new_with(mm0, eig)?;
    let d_star = dataset.x.transpose_matvec(&b_all)?;
    let coefficients = a_all.into_iter().zip(b_all).collect();
    Ok(LogisticOptCapture {
        switch_iteration: ts,
        model_at_switch: Model::new(ModelKind::BinaryLogistic, vec![w.clone()])?,
        classes: vec![LogisticOptClassCapture {
            eigen,
            d_star,
            coefficients,
        }],
    })
    .map(|mut capture| {
        // Defensive: ensure the eigen dimension matches the feature count.
        debug_assert_eq!(capture.classes[0].eigen.values.len(), m);
        capture.switch_iteration = ts;
        capture
    })
}

/// Trains a multinomial logistic-regression model with mb-SGD while
/// capturing PrIU provenance (one set of caches per class).
///
/// # Errors
/// * [`CoreError::LabelMismatch`] for non-multiclass labels.
/// * [`CoreError::Diverged`] if parameters become non-finite.
pub fn train_multinomial_logistic(
    dataset: &DenseDataset,
    config: &TrainerConfig,
) -> Result<TrainedLogistic> {
    train_multinomial_logistic_with(dataset, config, &mut Workspace::new())
}

/// Like [`train_multinomial_logistic`], reusing a caller-owned
/// [`Workspace`] so the mb-SGD step is allocation-free once warm.
///
/// # Errors
/// See [`train_multinomial_logistic`].
pub fn train_multinomial_logistic_with(
    dataset: &DenseDataset,
    config: &TrainerConfig,
    ws: &mut Workspace,
) -> Result<TrainedLogistic> {
    let (classes, q) = match &dataset.labels {
        Labels::Multiclass {
            classes,
            num_classes,
        } => (classes, *num_classes),
        _ => {
            return Err(CoreError::LabelMismatch {
                expected: "multiclass labels for multinomial logistic regression",
            })
        }
    };
    let n = dataset.num_samples();
    let m = dataset.num_features();
    let hyper = &config.hyper;
    let schedule = BatchSchedule::new(n, hyper.batch_size, hyper.num_iterations, config.seed);
    let eta = hyper.learning_rate;
    let lambda = hyper.regularization;
    let interp = &config.interpolation;
    let ts = config.opt_switch_iteration();

    let initial_model = Model::zeros(ModelKind::MultinomialLogistic { num_classes: q }, m);
    let mut weights: Vec<Vector> = vec![Vector::zeros(m); q];
    let mut iterations = Vec::with_capacity(hyper.num_iterations);
    let mut opt: Option<LogisticOptCapture> = None;

    for t in 0..hyper.num_iterations {
        if config.capture_opt && t == ts {
            opt = Some(capture_multinomial_opt(
                dataset, classes, q, &weights, interp, ts, ws,
            )?);
        }

        schedule.batch_into(t, &mut ws.batch, &mut ws.idx_scratch);
        let cache = multinomial_logistic_step(
            &dataset.x,
            classes,
            q,
            &mut weights,
            eta,
            lambda,
            interp,
            Some(config.compression),
            ws,
        )?
        .expect("capture was requested");

        if t % 32 == 0 && weights.iter().any(|w| !w.is_finite()) {
            return Err(CoreError::Diverged { iteration: t });
        }

        iterations.push(cache);
    }
    if weights.iter().any(|w| !w.is_finite()) {
        return Err(CoreError::Diverged {
            iteration: hyper.num_iterations,
        });
    }

    let model = Model::new(ModelKind::MultinomialLogistic { num_classes: q }, weights)?;
    Ok(TrainedLogistic {
        model,
        provenance: LogisticProvenance {
            schedule,
            learning_rate: eta,
            regularization: lambda,
            initial_model,
            iterations,
            opt,
        },
    })
}

fn capture_multinomial_opt(
    dataset: &DenseDataset,
    classes: &[u32],
    q: usize,
    weights: &[Vector],
    interp: &PiecewiseLinearSigmoid,
    ts: usize,
    ws: &mut Workspace,
) -> Result<LogisticOptCapture> {
    let n = dataset.num_samples();
    let logits: Vec<Vector> = weights
        .iter()
        .map(|wk| dataset.x.matvec(wk))
        .collect::<std::result::Result<_, _>>()?;
    let mut lse = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)] // `i` spans all q logit vectors
    for i in 0..n {
        let max = (0..q).fold(f64::NEG_INFINITY, |acc, k| acc.max(logits[k][i]));
        let sum: f64 = (0..q).map(|k| (logits[k][i] - max).exp()).sum();
        lse.push(max + sum.ln());
    }
    let mut class_captures = Vec::with_capacity(q);
    #[allow(clippy::needless_range_loop)] // `k` spans logits and per-class captures
    for k in 0..q {
        let mut a_all = Vec::with_capacity(n);
        let mut b_all = Vec::with_capacity(n);
        for i in 0..n {
            let z = logits[k][i];
            let p = (z - lse[i]).exp();
            let indicator = if classes[i] as usize == k { 1.0 } else { 0.0 };
            let l_other = lse[i] + (1.0 - p).max(1e-300).ln();
            let u = z - l_other;
            let seg = interp.sigmoid_coefficients(u);
            a_all.push(-seg.slope);
            b_all.push(indicator - seg.intercept + seg.slope * l_other);
        }
        ws.prepare_square(dataset.num_features());
        let Workspace { mm0, eig, .. } = ws;
        dataset.x.weighted_gram_into(Some(&a_all), mm0);
        let eigen = SymmetricEigen::new_with(mm0, eig)?;
        let d_star = dataset.x.transpose_matvec(&b_all)?;
        class_captures.push(LogisticOptClassCapture {
            eigen,
            d_star,
            coefficients: a_all.into_iter().zip(b_all).collect(),
        });
    }
    Ok(LogisticOptCapture {
        switch_iteration: ts,
        model_at_switch: Model::new(
            ModelKind::MultinomialLogistic { num_classes: q },
            weights.to_vec(),
        )?,
        classes: class_captures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::classification_accuracy;
    use priu_data::catalog::Hyperparameters;
    use priu_data::synthetic::classification::{
        generate_binary_classification, generate_multiclass_classification, ClassificationConfig,
    };

    fn binary_data() -> DenseDataset {
        generate_binary_classification(&ClassificationConfig {
            num_samples: 600,
            num_features: 8,
            separation: 3.0,
            label_noise: 0.3,
            seed: 21,
            ..Default::default()
        })
    }

    fn multi_data() -> DenseDataset {
        generate_multiclass_classification(&ClassificationConfig {
            num_samples: 800,
            num_features: 10,
            num_classes: 4,
            separation: 3.0,
            label_noise: 0.3,
            seed: 22,
        })
    }

    fn config(iters: usize) -> TrainerConfig {
        TrainerConfig::from_hyper(Hyperparameters {
            batch_size: 64,
            num_iterations: iters,
            learning_rate: 0.3,
            regularization: 0.01,
        })
        .with_seed(3)
    }

    #[test]
    fn binary_training_beats_chance_substantially() {
        let data = binary_data();
        let trained = train_binary_logistic(&data, &config(300)).unwrap();
        let acc = classification_accuracy(&trained.model, &data).unwrap();
        assert!(acc > 0.8, "accuracy {acc}");
        assert_eq!(trained.provenance.iterations.len(), 300);
        assert!(trained.provenance.opt.is_some());
        assert_eq!(
            trained.provenance.opt.as_ref().unwrap().switch_iteration,
            210
        );
    }

    #[test]
    fn multinomial_training_beats_chance_substantially() {
        let data = multi_data();
        let trained = train_multinomial_logistic(&data, &config(300)).unwrap();
        let acc = classification_accuracy(&trained.model, &data).unwrap();
        assert!(acc > 0.6, "accuracy {acc} (chance is 0.25)");
        assert_eq!(trained.provenance.iterations[0].classes.len(), 4);
        assert!(trained.provenance.opt.is_some());
        assert_eq!(trained.provenance.opt.as_ref().unwrap().classes.len(), 4);
    }

    #[test]
    fn training_is_deterministic() {
        let data = binary_data();
        let a = train_binary_logistic(&data, &config(50)).unwrap();
        let b = train_binary_logistic(&data, &config(50)).unwrap();
        assert_eq!(a.model, b.model);
    }

    #[test]
    fn captured_linearisation_tracks_exact_update() {
        // Replaying the captured linearised rule (Eq. 9) from w0 must land
        // close to the exact model (Theorem 4: error O((Δx)²)).
        let data = binary_data();
        let cfg = config(150);
        let trained = train_binary_logistic(&data, &cfg).unwrap();
        let prov = &trained.provenance;
        let mut w = Vector::zeros(data.num_features());
        let eta = prov.learning_rate;
        let lambda = prov.regularization;
        for it in &prov.iterations {
            let cache = &it.classes[0];
            let b = it.batch_size as f64;
            let cw = cache.gram.apply(&w).unwrap();
            let mut next = w.scaled(1.0 - eta * lambda);
            next.axpy(eta / b, &cw).unwrap();
            next.axpy(eta / b, &cache.d).unwrap();
            w = next;
        }
        let diff = (&w - trained.model.weight()).norm2();
        assert!(diff < 1e-6, "linearised trajectory differs by {diff}");
    }

    #[test]
    fn label_mismatch_and_divergence_are_reported() {
        let data = binary_data();
        assert!(matches!(
            train_multinomial_logistic(&data, &config(10)),
            Err(CoreError::LabelMismatch { .. })
        ));
        let multi = multi_data();
        assert!(matches!(
            train_binary_logistic(&multi, &config(10)),
            Err(CoreError::LabelMismatch { .. })
        ));
    }

    #[test]
    fn opt_capture_can_be_disabled() {
        let data = binary_data();
        let trained = train_binary_logistic(&data, &config(40).with_opt_capture(false)).unwrap();
        assert!(trained.provenance.opt.is_none());
    }
}
