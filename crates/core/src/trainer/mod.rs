//! Training with provenance capture.
//!
//! The trainers run the *exact* mb-SGD update rules (Eq. 5/6) to produce the
//! initial model `M_init`, and simultaneously capture the per-iteration
//! provenance intermediates PrIU needs for later incremental updates:
//! Gram-form sample contributions, moment vectors, linearisation
//! coefficients, and (optionally) the PrIU-opt eigendecompositions.

pub mod linear;
pub mod logistic;
pub mod sparse;

pub use linear::{train_linear, TrainedLinear};
pub use logistic::{train_binary_logistic, train_multinomial_logistic, TrainedLogistic};
pub use sparse::{train_sparse_binary_logistic, SparseLogisticProvenance, TrainedSparseLogistic};
