//! Sparse binary logistic-regression training (the RCV1-style path of §5.3).
//!
//! For sparse datasets PrIU does not cache Gram-form intermediates (their
//! truncated factors would be dense); it only records the per-iteration
//! linearisation coefficients and replays the linearised update rule
//! (Eq. 11) over the surviving samples, so the expected speed-up over
//! retraining is marginal — which is exactly what the paper reports (~10%).

use priu_data::dataset::{Labels, SparseDataset};
use priu_data::minibatch::BatchSchedule;
use priu_linalg::{CsrMatrix, Vector};

use crate::config::TrainerConfig;
use crate::error::{CoreError, Result};
use crate::interpolation::PiecewiseLinearSigmoid;
use crate::model::{Model, ModelKind};
use crate::workspace::Workspace;

/// Provenance captured while training a sparse binary logistic model: the
/// mini-batch schedule plus, per iteration, the `(a, b')` linearisation
/// coefficients of every batch member (in batch order).
#[derive(Debug, Clone)]
pub struct SparseLogisticProvenance {
    /// The deterministic mini-batch schedule shared with the update phase.
    pub schedule: BatchSchedule,
    /// Learning rate `η`.
    pub learning_rate: f64,
    /// Regularisation rate `λ`.
    pub regularization: f64,
    /// Initial parameters `w^{(0)}`.
    pub initial_model: Model,
    /// Per-iteration `(a, b')` coefficients, aligned with the batch order.
    pub coefficients: Vec<Vec<(f64, f64)>>,
}

impl SparseLogisticProvenance {
    /// Bytes of cached provenance (coefficients only; Q8 accounting).
    pub fn provenance_bytes(&self) -> usize {
        self.coefficients.iter().map(|c| c.len() * 16).sum()
    }
}

/// Runs one exact sparse binary-logistic mb-SGD step on the batch staged in
/// `ws.batch` (gather margins, scatter gradient — the batched CSR kernels),
/// mutating `w` in place. The single definition of the step: the trainer
/// loop calls it per scheduled iteration, the delta engine for appended
/// explicit batches. With `capture` set the iteration's `(a, b')`
/// linearisation coefficients are collected and returned (allocates: it is
/// storage); with `false` the step touches only workspace buffers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sparse_logistic_step(
    x: &CsrMatrix,
    y: &Vector,
    w: &mut Vector,
    eta: f64,
    lambda: f64,
    interp: &PiecewiseLinearSigmoid,
    capture: bool,
    ws: &mut Workspace,
) -> Result<Option<Vec<(f64, f64)>>> {
    let m = x.ncols();
    let b = ws.batch.len() as f64;
    ws.prepare_features(m);
    ws.prepare_sparse_batch(ws.batch.len());
    let Workspace {
        batch,
        b0: dots,
        b1: alphas,
        m0: acc,
        ..
    } = ws;
    let dots = &mut dots[..batch.len()];
    let alphas = &mut alphas[..batch.len()];
    // Gather phase: all per-sample margins in one parallel kernel.
    x.rows_dot_into(batch, w, dots)?;
    let mut iter_coeffs = capture.then(|| Vec::with_capacity(batch.len()));
    for (pos, &i) in batch.iter().enumerate() {
        let margin = y[i] * dots[pos];
        let f = PiecewiseLinearSigmoid::exact(margin);
        alphas[pos] = y[i] * f;
        if let Some(coeffs) = iter_coeffs.as_mut() {
            let seg = interp.coefficients(margin);
            coeffs.push((seg.slope, seg.intercept * y[i]));
        }
    }
    // Scatter phase: the batch gradient as one chunk-ordered reduction.
    x.scatter_rows_into(batch, alphas, acc)?;
    // Fused parameter step (bitwise identical to scale_mut + axpy).
    w.scale_add(1.0 - eta * lambda, eta / b, acc)?;
    Ok(iter_coeffs)
}

/// The result of training a sparse binary logistic model.
#[derive(Debug, Clone)]
pub struct TrainedSparseLogistic {
    /// The trained model `M_init`.
    pub model: Model,
    /// The captured provenance, consumed by `update::sparse_logistic`.
    pub provenance: SparseLogisticProvenance,
}

/// Trains a binary logistic-regression model over a sparse (CSR) dataset with
/// mb-SGD, capturing the linearisation coefficients per iteration.
///
/// # Errors
/// * [`CoreError::LabelMismatch`] for non-binary labels.
/// * [`CoreError::Diverged`] if parameters become non-finite.
pub fn train_sparse_binary_logistic(
    dataset: &SparseDataset,
    config: &TrainerConfig,
) -> Result<TrainedSparseLogistic> {
    train_sparse_binary_logistic_with(dataset, config, &mut Workspace::new())
}

/// Like [`train_sparse_binary_logistic`], reusing a caller-owned
/// [`Workspace`] so the mb-SGD step is allocation-free once warm (the
/// captured coefficient lists still allocate — they are storage).
///
/// # Errors
/// See [`train_sparse_binary_logistic`].
pub fn train_sparse_binary_logistic_with(
    dataset: &SparseDataset,
    config: &TrainerConfig,
    ws: &mut Workspace,
) -> Result<TrainedSparseLogistic> {
    let y = match &dataset.labels {
        Labels::Binary(y) => y,
        _ => {
            return Err(CoreError::LabelMismatch {
                expected: "binary (+1/-1) labels for sparse logistic regression",
            })
        }
    };
    let n = dataset.num_samples();
    let m = dataset.num_features();
    let hyper = &config.hyper;
    let schedule = BatchSchedule::new(n, hyper.batch_size, hyper.num_iterations, config.seed);
    let eta = hyper.learning_rate;
    let lambda = hyper.regularization;
    let interp = &config.interpolation;

    let initial_model = Model::zeros(ModelKind::BinaryLogistic, m);
    let mut w = Vector::zeros(m);
    let mut coefficients = Vec::with_capacity(hyper.num_iterations);

    for t in 0..hyper.num_iterations {
        schedule.batch_into(t, &mut ws.batch, &mut ws.idx_scratch);
        let iter_coeffs =
            sparse_logistic_step(&dataset.x, y, &mut w, eta, lambda, interp, true, ws)?
                .expect("capture was requested");
        if t % 32 == 0 && !w.is_finite() {
            return Err(CoreError::Diverged { iteration: t });
        }
        coefficients.push(iter_coeffs);
    }
    if !w.is_finite() {
        return Err(CoreError::Diverged {
            iteration: hyper.num_iterations,
        });
    }

    let model = Model::new(ModelKind::BinaryLogistic, vec![w])?;
    Ok(TrainedSparseLogistic {
        model,
        provenance: SparseLogisticProvenance {
            schedule,
            learning_rate: eta,
            regularization: lambda,
            initial_model,
            coefficients,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::sparse_classification_accuracy;
    use priu_data::catalog::Hyperparameters;
    use priu_data::synthetic::sparse_text::{generate_sparse_binary, SparseConfig};

    fn data() -> SparseDataset {
        generate_sparse_binary(&SparseConfig {
            num_samples: 500,
            num_features: 400,
            nnz_per_row: 20,
            informative_fraction: 0.2,
            seed: 31,
        })
    }

    fn config() -> TrainerConfig {
        TrainerConfig::from_hyper(Hyperparameters {
            batch_size: 50,
            num_iterations: 300,
            learning_rate: 0.3,
            regularization: 1e-3,
        })
        .with_seed(4)
    }

    #[test]
    fn sparse_training_beats_chance() {
        let d = data();
        let trained = train_sparse_binary_logistic(&d, &config()).unwrap();
        let acc = sparse_classification_accuracy(&trained.model, &d).unwrap();
        assert!(acc > 0.7, "accuracy {acc}");
        assert_eq!(trained.provenance.coefficients.len(), 300);
        assert_eq!(trained.provenance.coefficients[0].len(), 50);
        assert!(trained.provenance.provenance_bytes() > 0);
    }

    #[test]
    fn sparse_training_is_deterministic() {
        let d = data();
        let a = train_sparse_binary_logistic(&d, &config()).unwrap();
        let b = train_sparse_binary_logistic(&d, &config()).unwrap();
        assert_eq!(a.model, b.model);
    }

    #[test]
    fn wrong_labels_are_rejected() {
        let d = data();
        let bad = SparseDataset::new(
            d.x.clone(),
            Labels::Continuous(Vector::zeros(d.num_samples())),
        );
        assert!(matches!(
            train_sparse_binary_logistic(&bad, &config()),
            Err(CoreError::LabelMismatch { .. })
        ));
    }
}
