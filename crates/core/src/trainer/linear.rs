//! Linear-regression training (Eq. 5) with provenance capture (§5.1, §5.2).

use priu_data::dataset::{DenseDataset, Labels};
use priu_data::minibatch::BatchSchedule;
use priu_linalg::decomposition::eigen::SymmetricEigen;
use priu_linalg::{Matrix, Vector};

use crate::capture::{GramCache, LinearIterationCache, LinearOptCapture, LinearProvenance};
use crate::config::{Compression, TrainerConfig};
use crate::error::{CoreError, Result};
use crate::model::{Model, ModelKind};
use crate::workspace::Workspace;

/// Runs one mb-SGD step (Eq. 5) on the batch currently staged in
/// `ws.batch`, selecting rows from `x`/`y` and mutating `w` in place. This
/// is the *single* definition of the linear GD step: the trainer loop calls
/// it per scheduled iteration, and the delta engine calls it for appended
/// explicit batches — so appended-iteration replays agree with training by
/// construction.
///
/// With `capture` set the iteration's provenance (Gram cache + moment
/// vector) is built and returned — that storage allocates by design. With
/// `None` the step touches only workspace buffers, so a warm workspace makes
/// it allocation-free (the delta engine's model-only addition fast path).
pub(crate) fn linear_step(
    x: &Matrix,
    y: &Vector,
    w: &mut Vector,
    eta: f64,
    lambda: f64,
    capture: Option<Compression>,
    ws: &mut Workspace,
) -> Result<Option<LinearIterationCache>> {
    let m = x.ncols();
    let b = ws.batch.len();
    ws.select_batch_rows(x);
    ws.prepare_batch(b);
    ws.prepare_features(m);
    let Workspace {
        batch,
        rows,
        b0: residuals,
        b1: y_batch,
        m0: grad,
        ..
    } = ws;

    // Gradient step: w ← (1-ηλ) w − (2η/B) Σ x_i (x_iᵀ w − y_i).
    rows.matvec_into(w, residuals)?;
    for (pos, &i) in batch.iter().enumerate() {
        y_batch[pos] = y[i];
        residuals[pos] -= y[i];
    }
    rows.transpose_matvec_into(residuals, grad)?;
    // Fused parameter step (bitwise identical to scale_mut + axpy on
    // every SIMD level — one pass over w instead of two).
    w.scale_add(1.0 - eta * lambda, -2.0 * eta / b as f64, grad)?;

    let Some(compression) = capture else {
        return Ok(None);
    };
    // Provenance capture for this iteration (allocates: it is storage).
    let xy = rows.transpose_matvec(y_batch)?;
    let b2 = &mut ws.b2;
    b2.clear();
    b2.resize(b, 1.0);
    let gram = GramCache::build(&ws.rows, b2, compression)?;
    Ok(Some(LinearIterationCache {
        gram,
        xy,
        batch_size: b,
    }))
}

/// The result of training a linear-regression model with provenance capture.
#[derive(Debug, Clone)]
pub struct TrainedLinear {
    /// The trained model `M_init`.
    pub model: Model,
    /// The captured provenance, consumed by `update::priu_linear` and
    /// `update::priu_opt_linear`.
    pub provenance: LinearProvenance,
}

/// Trains a linear-regression model with mb-SGD (Eq. 5) while caching, per
/// iteration, the batch Gram matrix `Σ_{i∈B_t} x_i x_iᵀ` (possibly truncated,
/// Eq. 14) and the moment vector `Σ_{i∈B_t} x_i y_i` (Eq. 13). When
/// `config.capture_opt` is set the PrIU-opt offline structures (§5.2) — the
/// eigendecomposition of the full Gram matrix `XᵀX` and `XᵀY` — are captured
/// as well.
///
/// # Errors
/// * [`CoreError::LabelMismatch`] if the dataset is not a regression dataset.
/// * [`CoreError::Diverged`] if the parameters become non-finite (learning
///   rate too large for the data).
pub fn train_linear(dataset: &DenseDataset, config: &TrainerConfig) -> Result<TrainedLinear> {
    train_linear_with(dataset, config, &mut Workspace::new())
}

/// Like [`train_linear`], reusing a caller-owned [`Workspace`]: once the
/// buffers are warm, the GD step itself performs no heap allocation per
/// iteration (provenance capture storage still allocates — it outlives the
/// loop by design).
///
/// # Errors
/// See [`train_linear`].
pub fn train_linear_with(
    dataset: &DenseDataset,
    config: &TrainerConfig,
    ws: &mut Workspace,
) -> Result<TrainedLinear> {
    let y = match &dataset.labels {
        Labels::Continuous(y) => y,
        _ => {
            return Err(CoreError::LabelMismatch {
                expected: "continuous labels for linear regression",
            })
        }
    };
    let n = dataset.num_samples();
    let m = dataset.num_features();
    let hyper = &config.hyper;
    let schedule = BatchSchedule::new(n, hyper.batch_size, hyper.num_iterations, config.seed);
    let eta = hyper.learning_rate;
    let lambda = hyper.regularization;

    let initial_model = Model::zeros(ModelKind::Linear, m);
    let mut w = Vector::zeros(m);
    let mut iterations = Vec::with_capacity(hyper.num_iterations);

    for t in 0..hyper.num_iterations {
        schedule.batch_into(t, &mut ws.batch, &mut ws.idx_scratch);
        let cache = linear_step(
            &dataset.x,
            y,
            &mut w,
            eta,
            lambda,
            Some(config.compression),
            ws,
        )?
        .expect("capture was requested");
        if t % 32 == 0 && !w.is_finite() {
            return Err(CoreError::Diverged { iteration: t });
        }
        iterations.push(cache);
    }
    if !w.is_finite() {
        return Err(CoreError::Diverged {
            iteration: hyper.num_iterations,
        });
    }

    // PrIU-opt offline capture: eigendecomposition of M = XᵀX and N = XᵀY.
    // The Gram matrix and the Jacobi sweep run on workspace buffers
    // (`weighted_gram_into` + `SymmetricEigen::new_with`), so with a
    // pre-sized workspace the capture allocates only what it stores.
    let opt = if config.capture_opt {
        ws.prepare_square(m);
        let Workspace { mm0, eig, .. } = ws;
        dataset.x.weighted_gram_into(None, mm0);
        let eigen = SymmetricEigen::new_with(mm0, eig)?;
        let xty = dataset.x.transpose_matvec(y)?;
        Some(LinearOptCapture { eigen, xty })
    } else {
        None
    };

    let model = Model::new(ModelKind::Linear, vec![w])?;
    Ok(TrainedLinear {
        model,
        provenance: LinearProvenance {
            schedule,
            learning_rate: eta,
            regularization: lambda,
            initial_model,
            iterations,
            opt,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::ProvenanceMemory;
    use crate::config::Compression;
    use crate::metrics;
    use priu_data::catalog::Hyperparameters;
    use priu_data::synthetic::regression::{generate_regression, RegressionConfig};

    fn dataset() -> DenseDataset {
        generate_regression(&RegressionConfig {
            num_samples: 400,
            num_features: 6,
            noise_std: 0.05,
            seed: 11,
            ..Default::default()
        })
    }

    fn config() -> TrainerConfig {
        TrainerConfig::from_hyper(Hyperparameters {
            batch_size: 40,
            num_iterations: 300,
            learning_rate: 0.05,
            regularization: 0.01,
        })
        .with_seed(5)
    }

    #[test]
    fn training_reduces_mse_substantially() {
        let data = dataset();
        let trained = train_linear(&data, &config()).unwrap();
        let mse = metrics::mean_squared_error(&trained.model, &data).unwrap();
        let baseline_mse =
            metrics::mean_squared_error(&Model::zeros(ModelKind::Linear, 6), &data).unwrap();
        assert!(
            mse < baseline_mse * 0.05,
            "trained mse {mse} vs baseline {baseline_mse}"
        );
        assert!(trained.model.is_finite());
        assert_eq!(trained.provenance.iterations.len(), 300);
        assert!(trained.provenance.opt.is_some());
        assert!(trained.provenance.provenance_bytes() > 0);
    }

    #[test]
    fn training_is_deterministic() {
        let data = dataset();
        let a = train_linear(&data, &config()).unwrap();
        let b = train_linear(&data, &config()).unwrap();
        assert_eq!(a.model, b.model);
        let c = train_linear(&data, &config().with_seed(6)).unwrap();
        assert_ne!(a.model, c.model);
    }

    #[test]
    fn compressed_capture_trains_to_the_same_model() {
        let data = dataset();
        let dense = train_linear(&data, &config()).unwrap();
        let compressed = train_linear(
            &data,
            &config().with_compression(Compression::Exact { rank: 2 }),
        )
        .unwrap();
        // Compression only changes what is cached, not the training trajectory.
        assert_eq!(dense.model, compressed.model);
        // A rank-2 cache stores 2·m·r = 24 values per iteration vs m² = 36.
        assert!(compressed.provenance.provenance_bytes() < dense.provenance.provenance_bytes());
    }

    #[test]
    fn opt_capture_can_be_disabled() {
        let data = dataset();
        let trained = train_linear(&data, &config().with_opt_capture(false)).unwrap();
        assert!(trained.provenance.opt.is_none());
    }

    #[test]
    fn wrong_labels_are_rejected() {
        let data = DenseDataset::new(
            priu_linalg::Matrix::zeros(10, 2),
            Labels::Binary(Vector::from_fn(10, |i| if i % 2 == 0 { 1.0 } else { -1.0 })),
        );
        assert!(matches!(
            train_linear(&data, &config()),
            Err(CoreError::LabelMismatch { .. })
        ));
    }

    #[test]
    fn divergence_is_detected() {
        let data = dataset();
        let bad = TrainerConfig::from_hyper(Hyperparameters {
            batch_size: 40,
            num_iterations: 200,
            learning_rate: 50.0,
            regularization: 0.0,
        });
        assert!(matches!(
            train_linear(&data, &bad),
            Err(CoreError::Diverged { .. })
        ));
    }
}
