//! # priu-core
//!
//! The core of the PrIU reproduction (Wu, Tannen, Davidson, SIGMOD 2020):
//! provenance-based incremental updates of regression models after deleting
//! subsets of their training samples.
//!
//! ## What the library does
//!
//! 1. **Train** a linear-regression, binary-logistic or multinomial-logistic
//!    model with mini-batch SGD (Eq. 5/6) while *capturing provenance*: the
//!    per-iteration contributions of the training samples to the update rule
//!    (Gram forms and interpolation coefficients, §4.1/§4.2), optionally
//!    compressed with truncated SVD (§5.1/§5.3).
//! 2. **Delete** an arbitrary subset of training samples (data cleaning,
//!    interpretability probes, deletion diagnostics).
//! 3. **Update** the model parameters *incrementally* with
//!    [`update::priu`] / [`update::priu_opt`] instead of retraining, obtaining
//!    a model provably close to the retrained one (Theorems 5/8/9) at a small
//!    fraction of the cost.
//!
//! The crate also contains the paper's comparison points — retraining from
//! scratch ([`baseline::retrain`]), the closed-form ridge update
//! ([`baseline::closed_form`]) and the influence-function extension
//! ([`baseline::influence`]) — plus the evaluation metrics of §6 and the
//! provenance memory accounting of Q8.
//!
//! ## Quick start
//!
//! ```
//! use priu_core::prelude::*;
//! use priu_data::prelude::*;
//!
//! // A small synthetic regression dataset standing in for UCI SGEMM.
//! let spec = DatasetCatalog::sgemm_original().scaled(0.02);
//! let dataset = spec.generate();
//! let dense = dataset.as_dense().unwrap();
//!
//! // Train once, capturing provenance.
//! let config = TrainerConfig::from_hyper(spec.hyper).with_seed(7);
//! let session = LinearSession::fit(dense.clone(), config).unwrap();
//!
//! // Delete 1% of the training samples and update incrementally.
//! let removed = random_subsets(dense.num_samples(), 0.01, 1, 3)[0].clone();
//! let updated = session.priu(&removed).unwrap();
//! let retrained = session.retrain(&removed).unwrap();
//! let cmp = compare_models(&updated.model, &retrained.model).unwrap();
//! assert!(cmp.cosine_similarity > 0.99);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod capture;
pub mod config;
pub mod error;
pub mod interpolation;
pub mod metrics;
pub mod model;
pub mod objective;
pub mod reference;
pub mod session;
pub mod trainer;
pub mod update;

pub use config::{Compression, TrainerConfig};
pub use error::{CoreError, Result};
pub use metrics::{compare_models, ModelComparison};
pub use model::{Model, ModelKind};
pub use session::{
    BinaryLogisticSession, LinearSession, MultinomialSession, SparseLogisticSession, UpdateOutcome,
};

/// Convenience prelude bringing the most commonly used types into scope.
pub mod prelude {
    pub use crate::baseline::influence::influence_update;
    pub use crate::capture::ProvenanceMemory;
    pub use crate::config::{Compression, TrainerConfig};
    pub use crate::error::{CoreError, Result};
    pub use crate::interpolation::PiecewiseLinearSigmoid;
    pub use crate::metrics::{compare_models, ModelComparison};
    pub use crate::model::{Model, ModelKind};
    pub use crate::session::{
        BinaryLogisticSession, LinearSession, MultinomialSession, SparseLogisticSession,
        UpdateOutcome,
    };
}
