//! # priu-core
//!
//! The core of the PrIU reproduction (Wu, Tannen, Davidson, SIGMOD 2020):
//! provenance-based incremental updates of regression models after deleting
//! subsets of their training samples.
//!
//! ## What the library does
//!
//! 1. **Train** a linear-regression, binary-logistic or multinomial-logistic
//!    model with mini-batch SGD (Eq. 5/6) while *capturing provenance*: the
//!    per-iteration contributions of the training samples to the update rule
//!    (Gram forms and interpolation coefficients, §4.1/§4.2), optionally
//!    compressed with truncated SVD (§5.1/§5.3).
//! 2. **Delete** an arbitrary subset of training samples (data cleaning,
//!    interpretability probes, deletion diagnostics).
//! 3. **Update** the model parameters with any registered
//!    [`engine::Method`] — PrIU, PrIU-opt, BaseL retraining, the closed-form
//!    ridge update or the influence-function estimate — through one uniform
//!    [`engine::DeletionEngine`] API, obtaining a model provably close to the
//!    retrained one (Theorems 5/8/9) at a small fraction of the cost.
//!
//! ## Quick start
//!
//! Train once through the [`engine::SessionBuilder`] (the model family
//! follows the labels), then answer any number of deletion requests:
//!
//! ```
//! use priu_core::prelude::*;
//! use priu_data::prelude::*;
//!
//! // A small synthetic regression dataset standing in for UCI SGEMM.
//! let spec = DatasetCatalog::sgemm_original().scaled(0.02);
//! let dataset = spec.generate();
//! let dense = dataset.as_dense().unwrap();
//!
//! // Train once, capturing provenance (the offline phase).
//! let config = TrainerConfig::from_hyper(spec.hyper);
//! let session = SessionBuilder::dense(dense.clone(), config)
//!     .seed(7)
//!     .fit()
//!     .unwrap();
//!
//! // Discover what this session can do: closed-form is linear-only, so it
//! // is present here but absent on logistic sessions.
//! assert!(session.supports(Method::ClosedForm));
//!
//! // Delete 1% of the training samples and update incrementally.
//! let removed = random_subsets(session.num_samples(), 0.01, 1, 3)[0].clone();
//! let updated = session.update(Method::Priu, &removed).unwrap();
//! let retrained = session.update(Method::Retrain, &removed).unwrap();
//! let cmp = compare_models(&updated.model, &retrained.model).unwrap();
//! assert!(cmp.cosine_similarity > 0.99);
//!
//! // Or run every supported method at once, keyed by `Method`.
//! let report = session.run_all(&removed).unwrap();
//! assert!(report.get(Method::Retrain).unwrap().duration >= report.get(Method::Priu).unwrap().duration / 1000);
//!
//! // Chained deletions: consume the outcome into a new session over the
//! // survivors (the paper's Fig. 4 repeated-deletion scenario).
//! let chained = session.apply(Method::Priu, &removed).unwrap();
//! assert_eq!(chained.session.num_samples(), session.num_samples() - removed.len());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod capture;
pub mod config;
pub mod engine;
pub mod error;
pub mod interpolation;
pub mod metrics;
pub mod model;
pub mod objective;
pub mod reference;
pub mod session;
pub mod snapshot;
pub mod trainer;
pub mod update;
pub mod workspace;

pub use config::{Compression, TrainerConfig};
pub use engine::{
    CaptureSnapshot, ChainedUpdate, DeletionEngine, Delta, DeltaRows, LinearEngine, LogisticEngine,
    Method, MethodReport, Session, SessionBuilder, SparseLogisticEngine, UpdateOutcome,
};
pub use error::{CoreError, Result};
pub use metrics::{compare_models, ModelComparison};
pub use model::{Model, ModelKind};
pub use priu_data::dataset::TaskKind;
pub use workspace::Workspace;

/// Convenience prelude bringing the most commonly used types into scope.
pub mod prelude {
    pub use crate::baseline::influence::influence_update;
    pub use crate::capture::ProvenanceMemory;
    pub use crate::config::{Compression, TrainerConfig};
    pub use crate::engine::{
        CaptureSnapshot, ChainedUpdate, DeletionEngine, Delta, DeltaRows, LinearEngine,
        LogisticEngine, Method, MethodReport, Session, SessionBuilder, SparseLogisticEngine,
        UpdateOutcome,
    };
    pub use crate::error::{CoreError, Result};
    pub use crate::interpolation::PiecewiseLinearSigmoid;
    pub use crate::metrics::{compare_models, ModelComparison};
    pub use crate::model::{Model, ModelKind};
}
