//! Bit-exact serialization of sessions for durability snapshots.
//!
//! The server's durability layer (PR 9) persists whole sessions — dataset,
//! trained model, captured provenance, closed-form views — and must restore
//! them *bitwise identical*: recovery redoes WAL deltas through the same
//! `apply_delta` replay as the live path, so any rounding introduced by the
//! codec would diverge the recovered chain. Every `f64` therefore round-trips
//! through [`f64::to_bits`]; every integer is fixed-width little-endian.
//! There is no varint cleverness and no compression — snapshots are already
//! dominated by the dense provenance caches, and a transparent format keeps
//! the corruption story simple (the WAL layer checksums the whole blob).
//!
//! Layout discipline: each composite type has a `put_*` / `get_*` pair in
//! this module when its fields are public, while the engine structs (private
//! fields) implement their halves in their own modules via
//! [`SnapshotWriter`] / [`SnapshotReader`]. A one-byte tag disambiguates
//! every enum. Decode failures surface as [`CoreError::Snapshot`] — a typed
//! error the recovery path can log and skip, never a panic.

use priu_data::catalog::Hyperparameters;
use priu_data::dataset::{DenseDataset, Labels, SparseDataset};
use priu_data::minibatch::BatchSchedule;
use priu_linalg::decomposition::eigen::SymmetricEigen;
use priu_linalg::decomposition::TruncatedGram;
use priu_linalg::{CsrMatrix, Matrix, Vector};

use crate::baseline::closed_form::ClosedFormCapture;
use crate::capture::{
    ClassIterationCache, GramCache, LinearIterationCache, LinearOptCapture, LinearProvenance,
    LogisticIterationCache, LogisticOptCapture, LogisticOptClassCapture, LogisticProvenance,
};
use crate::config::{Compression, TrainerConfig};
use crate::error::{CoreError, Result};
use crate::interpolation::PiecewiseLinearSigmoid;
use crate::model::{Model, ModelKind};
use crate::trainer::sparse::SparseLogisticProvenance;

/// Append-only byte sink for snapshot encoding.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` by its bit pattern (lossless, NaN-preserving).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
}

/// Bounds-checked cursor over snapshot bytes.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

fn corrupt(what: &str) -> CoreError {
    CoreError::Snapshot(format!("snapshot truncated or corrupt: {what}"))
}

impl<'a> SnapshotReader<'a> {
    /// A reader over the full byte slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// Consumes the next `n` raw bytes (a nested blob with its own codec).
    ///
    /// # Errors
    /// [`CoreError::Snapshot`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self.at.checked_add(n).ok_or_else(|| corrupt(what))?;
        let slice = self.bytes.get(self.at..end).ok_or_else(|| corrupt(what))?;
        self.at = end;
        Ok(slice)
    }

    /// Reads a raw byte.
    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn usize(&mut self, what: &str) -> Result<usize> {
        usize::try_from(self.u64(what)?).map_err(|_| corrupt(what))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a bool byte (strictly 0 or 1).
    pub fn bool(&mut self, what: &str) -> Result<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(corrupt(&format!("{what}: bad bool byte {other}"))),
        }
    }

    /// Reads a length prefix that must be coverable by the remaining bytes
    /// at `elem_bytes` each — rejects lying prefixes before any allocation.
    pub fn len(&mut self, elem_bytes: usize, what: &str) -> Result<usize> {
        let n = self.usize(what)?;
        let need = n.checked_mul(elem_bytes).ok_or_else(|| corrupt(what))?;
        if need > self.remaining() {
            return Err(corrupt(&format!(
                "{what}: length {n} exceeds remaining bytes"
            )));
        }
        Ok(n)
    }

    /// Fails unless every byte has been consumed.
    pub fn finish(self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(corrupt(&format!("{} trailing bytes", self.remaining())))
        }
    }
}

// --- primitives -----------------------------------------------------------

/// Encodes a vector (length + bit patterns).
pub fn put_vector(w: &mut SnapshotWriter, v: &Vector) {
    w.usize(v.len());
    for &x in v.as_slice() {
        w.f64(x);
    }
}

/// Decodes a vector.
pub fn get_vector(r: &mut SnapshotReader<'_>, what: &str) -> Result<Vector> {
    let n = r.len(8, what)?;
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(r.f64(what)?);
    }
    Ok(Vector::from_vec(data))
}

/// Encodes a dense matrix (shape + row-major bit patterns).
pub fn put_matrix(w: &mut SnapshotWriter, m: &Matrix) {
    w.usize(m.nrows());
    w.usize(m.ncols());
    for &x in m.as_slice() {
        w.f64(x);
    }
}

/// Decodes a dense matrix.
pub fn get_matrix(r: &mut SnapshotReader<'_>, what: &str) -> Result<Matrix> {
    let rows = r.usize(what)?;
    let cols = r.usize(what)?;
    let total = rows.checked_mul(cols).ok_or_else(|| corrupt(what))?;
    if total.checked_mul(8).ok_or_else(|| corrupt(what))? > r.remaining() {
        return Err(corrupt(&format!("{what}: matrix larger than payload")));
    }
    let mut data = Vec::with_capacity(total);
    for _ in 0..total {
        data.push(r.f64(what)?);
    }
    Ok(Matrix::from_vec(rows, cols, data)?)
}

fn put_usize_slice(w: &mut SnapshotWriter, s: &[usize]) {
    w.usize(s.len());
    for &x in s {
        w.usize(x);
    }
}

fn get_usize_vec(r: &mut SnapshotReader<'_>, what: &str) -> Result<Vec<usize>> {
    let n = r.len(8, what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.usize(what)?);
    }
    Ok(out)
}

fn put_pairs(w: &mut SnapshotWriter, pairs: &[(f64, f64)]) {
    w.usize(pairs.len());
    for &(a, b) in pairs {
        w.f64(a);
        w.f64(b);
    }
}

fn get_pairs(r: &mut SnapshotReader<'_>, what: &str) -> Result<Vec<(f64, f64)>> {
    let n = r.len(16, what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((r.f64(what)?, r.f64(what)?));
    }
    Ok(out)
}

// --- datasets -------------------------------------------------------------

const LABELS_CONTINUOUS: u8 = 1;
const LABELS_BINARY: u8 = 2;
const LABELS_MULTICLASS: u8 = 3;

/// Encodes typed labels.
pub fn put_labels(w: &mut SnapshotWriter, labels: &Labels) {
    match labels {
        Labels::Continuous(v) => {
            w.u8(LABELS_CONTINUOUS);
            put_vector(w, v);
        }
        Labels::Binary(v) => {
            w.u8(LABELS_BINARY);
            put_vector(w, v);
        }
        Labels::Multiclass {
            classes,
            num_classes,
        } => {
            w.u8(LABELS_MULTICLASS);
            w.usize(*num_classes);
            w.usize(classes.len());
            for &c in classes {
                w.u32(c);
            }
        }
    }
}

/// Decodes typed labels.
pub fn get_labels(r: &mut SnapshotReader<'_>, what: &str) -> Result<Labels> {
    match r.u8(what)? {
        LABELS_CONTINUOUS => Ok(Labels::Continuous(get_vector(r, what)?)),
        LABELS_BINARY => Ok(Labels::Binary(get_vector(r, what)?)),
        LABELS_MULTICLASS => {
            let num_classes = r.usize(what)?;
            let n = r.len(4, what)?;
            let mut classes = Vec::with_capacity(n);
            for _ in 0..n {
                classes.push(r.u32(what)?);
            }
            Ok(Labels::Multiclass {
                classes,
                num_classes,
            })
        }
        tag => Err(corrupt(&format!("{what}: bad labels tag {tag}"))),
    }
}

/// Encodes a dense dataset.
pub fn put_dense_dataset(w: &mut SnapshotWriter, d: &DenseDataset) {
    put_matrix(w, &d.x);
    put_labels(w, &d.labels);
}

/// Decodes a dense dataset.
pub fn get_dense_dataset(r: &mut SnapshotReader<'_>, what: &str) -> Result<DenseDataset> {
    let x = get_matrix(r, what)?;
    let labels = get_labels(r, what)?;
    if labels.len() != x.nrows() {
        return Err(corrupt(&format!("{what}: label/row count mismatch")));
    }
    Ok(DenseDataset::new(x, labels))
}

/// Encodes a CSR matrix.
pub fn put_csr(w: &mut SnapshotWriter, m: &CsrMatrix) {
    w.usize(m.nrows());
    w.usize(m.ncols());
    put_usize_slice(w, m.row_ptr());
    put_usize_slice(w, m.col_idx());
    w.usize(m.values().len());
    for &x in m.values() {
        w.f64(x);
    }
}

/// Decodes a CSR matrix, revalidating its structural invariants.
pub fn get_csr(r: &mut SnapshotReader<'_>, what: &str) -> Result<CsrMatrix> {
    let rows = r.usize(what)?;
    let cols = r.usize(what)?;
    let row_ptr = get_usize_vec(r, what)?;
    let col_idx = get_usize_vec(r, what)?;
    let n = r.len(8, what)?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(r.f64(what)?);
    }
    Ok(CsrMatrix::from_raw(rows, cols, row_ptr, col_idx, values)?)
}

/// Encodes a sparse dataset.
pub fn put_sparse_dataset(w: &mut SnapshotWriter, d: &SparseDataset) {
    put_csr(w, &d.x);
    put_labels(w, &d.labels);
}

/// Decodes a sparse dataset.
pub fn get_sparse_dataset(r: &mut SnapshotReader<'_>, what: &str) -> Result<SparseDataset> {
    let x = get_csr(r, what)?;
    let labels = get_labels(r, what)?;
    if labels.len() != x.nrows() {
        return Err(corrupt(&format!("{what}: label/row count mismatch")));
    }
    Ok(SparseDataset::new(x, labels))
}

// --- model / config -------------------------------------------------------

const KIND_LINEAR: u8 = 1;
const KIND_BINARY: u8 = 2;
const KIND_MULTINOMIAL: u8 = 3;

/// Encodes a model (kind + per-class weight vectors).
pub fn put_model(w: &mut SnapshotWriter, m: &Model) {
    match m.kind() {
        ModelKind::Linear => w.u8(KIND_LINEAR),
        ModelKind::BinaryLogistic => w.u8(KIND_BINARY),
        ModelKind::MultinomialLogistic { num_classes } => {
            w.u8(KIND_MULTINOMIAL);
            w.usize(num_classes);
        }
    }
    w.usize(m.weights().len());
    for v in m.weights() {
        put_vector(w, v);
    }
}

/// Decodes a model.
pub fn get_model(r: &mut SnapshotReader<'_>, what: &str) -> Result<Model> {
    let kind = match r.u8(what)? {
        KIND_LINEAR => ModelKind::Linear,
        KIND_BINARY => ModelKind::BinaryLogistic,
        KIND_MULTINOMIAL => ModelKind::MultinomialLogistic {
            num_classes: r.usize(what)?,
        },
        tag => return Err(corrupt(&format!("{what}: bad model kind tag {tag}"))),
    };
    let n = r.len(8, what)?;
    let mut weights = Vec::with_capacity(n);
    for _ in 0..n {
        weights.push(get_vector(r, what)?);
    }
    Model::new(kind, weights)
}

const COMPRESSION_NONE: u8 = 1;
const COMPRESSION_EXACT: u8 = 2;
const COMPRESSION_RANDOMIZED: u8 = 3;
const COMPRESSION_AUTO: u8 = 4;

/// Encodes a trainer configuration.
pub fn put_trainer_config(w: &mut SnapshotWriter, c: &TrainerConfig) {
    w.usize(c.hyper.batch_size);
    w.usize(c.hyper.num_iterations);
    w.f64(c.hyper.learning_rate);
    w.f64(c.hyper.regularization);
    w.u64(c.seed);
    match c.compression {
        Compression::None => w.u8(COMPRESSION_NONE),
        Compression::Exact { rank } => {
            w.u8(COMPRESSION_EXACT);
            w.usize(rank);
        }
        Compression::Randomized { rank, oversample } => {
            w.u8(COMPRESSION_RANDOMIZED);
            w.usize(rank);
            w.usize(oversample);
        }
        Compression::Auto => w.u8(COMPRESSION_AUTO),
    }
    w.f64(c.interpolation.half_range());
    w.usize(c.interpolation.num_intervals());
    w.f64(c.opt_capture_fraction);
    w.bool(c.capture_opt);
}

/// Decodes a trainer configuration. The interpolation grid is rebuilt from
/// `(half_range, num_intervals)` — its derived step is a pure function of
/// those, so the grid is bitwise identical to the encoded one.
pub fn get_trainer_config(r: &mut SnapshotReader<'_>, what: &str) -> Result<TrainerConfig> {
    let hyper = Hyperparameters {
        batch_size: r.usize(what)?,
        num_iterations: r.usize(what)?,
        learning_rate: r.f64(what)?,
        regularization: r.f64(what)?,
    };
    let seed = r.u64(what)?;
    let compression = match r.u8(what)? {
        COMPRESSION_NONE => Compression::None,
        COMPRESSION_EXACT => Compression::Exact {
            rank: r.usize(what)?,
        },
        COMPRESSION_RANDOMIZED => Compression::Randomized {
            rank: r.usize(what)?,
            oversample: r.usize(what)?,
        },
        COMPRESSION_AUTO => Compression::Auto,
        tag => return Err(corrupt(&format!("{what}: bad compression tag {tag}"))),
    };
    let half_range = r.f64(what)?;
    let num_intervals = r.usize(what)?;
    Ok(TrainerConfig {
        hyper,
        seed,
        compression,
        interpolation: PiecewiseLinearSigmoid::new(half_range, num_intervals),
        opt_capture_fraction: r.f64(what)?,
        capture_opt: r.bool(what)?,
    })
}

// --- schedules ------------------------------------------------------------

/// Encodes a mini-batch schedule (explicit batches included verbatim).
pub fn put_schedule(w: &mut SnapshotWriter, s: &BatchSchedule) {
    w.usize(s.num_samples());
    w.usize(s.batch_size());
    w.usize(s.num_iterations());
    w.u64(s.seed());
    match s.explicit_batches() {
        None => w.bool(false),
        Some(batches) => {
            w.bool(true);
            w.usize(batches.len());
            for b in batches {
                put_usize_slice(w, b);
            }
        }
    }
}

/// Decodes a mini-batch schedule.
pub fn get_schedule(r: &mut SnapshotReader<'_>, what: &str) -> Result<BatchSchedule> {
    let num_samples = r.usize(what)?;
    let batch_size = r.usize(what)?;
    let num_iterations = r.usize(what)?;
    let seed = r.u64(what)?;
    let explicit = if r.bool(what)? {
        let n = r.len(8, what)?;
        let mut batches = Vec::with_capacity(n);
        for _ in 0..n {
            batches.push(get_usize_vec(r, what)?);
        }
        Some(batches)
    } else {
        None
    };
    if num_samples == 0 || batch_size == 0 {
        return Err(corrupt(&format!("{what}: empty schedule")));
    }
    Ok(BatchSchedule::from_parts(
        num_samples,
        batch_size,
        num_iterations,
        seed,
        explicit,
    ))
}

// --- provenance caches ----------------------------------------------------

const GRAM_DENSE: u8 = 1;
const GRAM_TRUNCATED: u8 = 2;
const GRAM_DEFLATED: u8 = 3;

fn put_truncated(w: &mut SnapshotWriter, t: &TruncatedGram) {
    put_matrix(w, t.p());
    put_matrix(w, t.v());
}

fn get_truncated(r: &mut SnapshotReader<'_>, what: &str) -> Result<TruncatedGram> {
    let p = get_matrix(r, what)?;
    let v = get_matrix(r, what)?;
    Ok(TruncatedGram::from_parts(p, v)?)
}

/// Encodes a Gram-form cache.
pub fn put_gram_cache(w: &mut SnapshotWriter, g: &GramCache) {
    match g {
        GramCache::Dense(m) => {
            w.u8(GRAM_DENSE);
            put_matrix(w, m);
        }
        GramCache::Truncated(t) => {
            w.u8(GRAM_TRUNCATED);
            put_truncated(w, t);
        }
        GramCache::Deflated {
            base,
            rows,
            coefficients,
        } => {
            w.u8(GRAM_DEFLATED);
            put_truncated(w, base);
            put_matrix(w, rows);
            w.usize(coefficients.len());
            for &c in coefficients {
                w.f64(c);
            }
        }
    }
}

/// Decodes a Gram-form cache.
pub fn get_gram_cache(r: &mut SnapshotReader<'_>, what: &str) -> Result<GramCache> {
    match r.u8(what)? {
        GRAM_DENSE => Ok(GramCache::Dense(get_matrix(r, what)?)),
        GRAM_TRUNCATED => Ok(GramCache::Truncated(get_truncated(r, what)?)),
        GRAM_DEFLATED => {
            let base = get_truncated(r, what)?;
            let rows = get_matrix(r, what)?;
            let n = r.len(8, what)?;
            let mut coefficients = Vec::with_capacity(n);
            for _ in 0..n {
                coefficients.push(r.f64(what)?);
            }
            if coefficients.len() != rows.nrows() {
                return Err(corrupt(&format!("{what}: deflation row/coeff mismatch")));
            }
            Ok(GramCache::Deflated {
                base,
                rows,
                coefficients,
            })
        }
        tag => Err(corrupt(&format!("{what}: bad gram cache tag {tag}"))),
    }
}

fn put_eigen(w: &mut SnapshotWriter, e: &SymmetricEigen) {
    put_vector(w, &e.values);
    put_matrix(w, &e.vectors);
}

fn get_eigen(r: &mut SnapshotReader<'_>, what: &str) -> Result<SymmetricEigen> {
    Ok(SymmetricEigen {
        values: get_vector(r, what)?,
        vectors: get_matrix(r, what)?,
    })
}

/// Encodes the full linear-regression provenance.
pub fn put_linear_provenance(w: &mut SnapshotWriter, p: &LinearProvenance) {
    put_schedule(w, &p.schedule);
    w.f64(p.learning_rate);
    w.f64(p.regularization);
    put_model(w, &p.initial_model);
    w.usize(p.iterations.len());
    for it in &p.iterations {
        put_gram_cache(w, &it.gram);
        put_vector(w, &it.xy);
        w.usize(it.batch_size);
    }
    match &p.opt {
        None => w.bool(false),
        Some(opt) => {
            w.bool(true);
            put_eigen(w, &opt.eigen);
            put_vector(w, &opt.xty);
        }
    }
}

/// Decodes the full linear-regression provenance.
pub fn get_linear_provenance(r: &mut SnapshotReader<'_>, what: &str) -> Result<LinearProvenance> {
    let schedule = get_schedule(r, what)?;
    let learning_rate = r.f64(what)?;
    let regularization = r.f64(what)?;
    let initial_model = get_model(r, what)?;
    let n = r.len(1, what)?;
    let mut iterations = Vec::with_capacity(n);
    for _ in 0..n {
        iterations.push(LinearIterationCache {
            gram: get_gram_cache(r, what)?,
            xy: get_vector(r, what)?,
            batch_size: r.usize(what)?,
        });
    }
    let opt = if r.bool(what)? {
        Some(LinearOptCapture {
            eigen: get_eigen(r, what)?,
            xty: get_vector(r, what)?,
        })
    } else {
        None
    };
    Ok(LinearProvenance {
        schedule,
        learning_rate,
        regularization,
        initial_model,
        iterations,
        opt,
    })
}

/// Encodes the full logistic-regression provenance.
pub fn put_logistic_provenance(w: &mut SnapshotWriter, p: &LogisticProvenance) {
    put_schedule(w, &p.schedule);
    w.f64(p.learning_rate);
    w.f64(p.regularization);
    put_model(w, &p.initial_model);
    w.usize(p.iterations.len());
    for it in &p.iterations {
        w.usize(it.classes.len());
        for c in &it.classes {
            put_gram_cache(w, &c.gram);
            put_vector(w, &c.d);
            put_pairs(w, &c.coefficients);
        }
        w.usize(it.batch_size);
    }
    match &p.opt {
        None => w.bool(false),
        Some(opt) => {
            w.bool(true);
            w.usize(opt.switch_iteration);
            put_model(w, &opt.model_at_switch);
            w.usize(opt.classes.len());
            for c in &opt.classes {
                put_eigen(w, &c.eigen);
                put_vector(w, &c.d_star);
                put_pairs(w, &c.coefficients);
            }
        }
    }
}

/// Decodes the full logistic-regression provenance.
pub fn get_logistic_provenance(
    r: &mut SnapshotReader<'_>,
    what: &str,
) -> Result<LogisticProvenance> {
    let schedule = get_schedule(r, what)?;
    let learning_rate = r.f64(what)?;
    let regularization = r.f64(what)?;
    let initial_model = get_model(r, what)?;
    let n = r.len(1, what)?;
    let mut iterations = Vec::with_capacity(n);
    for _ in 0..n {
        let num_classes = r.len(1, what)?;
        let mut classes = Vec::with_capacity(num_classes);
        for _ in 0..num_classes {
            classes.push(ClassIterationCache {
                gram: get_gram_cache(r, what)?,
                d: get_vector(r, what)?,
                coefficients: get_pairs(r, what)?,
            });
        }
        iterations.push(LogisticIterationCache {
            classes,
            batch_size: r.usize(what)?,
        });
    }
    let opt = if r.bool(what)? {
        let switch_iteration = r.usize(what)?;
        let model_at_switch = get_model(r, what)?;
        let num_classes = r.len(1, what)?;
        let mut classes = Vec::with_capacity(num_classes);
        for _ in 0..num_classes {
            classes.push(LogisticOptClassCapture {
                eigen: get_eigen(r, what)?,
                d_star: get_vector(r, what)?,
                coefficients: get_pairs(r, what)?,
            });
        }
        Some(LogisticOptCapture {
            switch_iteration,
            model_at_switch,
            classes,
        })
    } else {
        None
    };
    Ok(LogisticProvenance {
        schedule,
        learning_rate,
        regularization,
        initial_model,
        iterations,
        opt,
    })
}

/// Encodes the sparse-logistic provenance (schedule + per-iteration
/// coefficient lists; the sparse path keeps no Gram caches).
pub fn put_sparse_provenance(w: &mut SnapshotWriter, p: &SparseLogisticProvenance) {
    put_schedule(w, &p.schedule);
    w.f64(p.learning_rate);
    w.f64(p.regularization);
    put_model(w, &p.initial_model);
    w.usize(p.coefficients.len());
    for per_iter in &p.coefficients {
        put_pairs(w, per_iter);
    }
}

/// Decodes the sparse-logistic provenance.
pub fn get_sparse_provenance(
    r: &mut SnapshotReader<'_>,
    what: &str,
) -> Result<SparseLogisticProvenance> {
    let schedule = get_schedule(r, what)?;
    let learning_rate = r.f64(what)?;
    let regularization = r.f64(what)?;
    let initial_model = get_model(r, what)?;
    let n = r.len(1, what)?;
    let mut coefficients = Vec::with_capacity(n);
    for _ in 0..n {
        coefficients.push(get_pairs(r, what)?);
    }
    Ok(SparseLogisticProvenance {
        schedule,
        learning_rate,
        regularization,
        initial_model,
        coefficients,
    })
}

/// Encodes the closed-form normal-equation views.
pub fn put_closed_form(w: &mut SnapshotWriter, c: &ClosedFormCapture) {
    put_matrix(w, &c.xtx);
    put_vector(w, &c.xty);
    w.usize(c.num_samples);
    w.f64(c.regularization);
}

/// Decodes the closed-form normal-equation views.
pub fn get_closed_form(r: &mut SnapshotReader<'_>, what: &str) -> Result<ClosedFormCapture> {
    Ok(ClosedFormCapture {
        xtx: get_matrix(r, what)?,
        xty: get_vector(r, what)?,
        num_samples: r.usize(what)?,
        regularization: r.f64(what)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_bitwise() {
        let mut w = SnapshotWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        put_vector(&mut w, &Vector::from_vec(vec![1.5, -2.25, 1e-308]));
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.u8("t").unwrap(), 7);
        assert_eq!(r.u32("t").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("t").unwrap(), u64::MAX - 3);
        assert_eq!(r.f64("t").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64("t").unwrap().to_bits(), f64::NAN.to_bits());
        assert!(r.bool("t").unwrap());
        let v = get_vector(&mut r, "t").unwrap();
        assert_eq!(v.as_slice(), &[1.5, -2.25, 1e-308]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_bad_tags_are_typed_errors() {
        let mut w = SnapshotWriter::new();
        put_vector(&mut w, &Vector::from_vec(vec![1.0, 2.0]));
        let bytes = w.into_bytes();
        // Every truncation offset fails cleanly, never panics.
        for cut in 0..bytes.len() {
            let mut r = SnapshotReader::new(&bytes[..cut]);
            assert!(matches!(
                get_vector(&mut r, "vec"),
                Err(CoreError::Snapshot(_))
            ));
        }
        // A lying length prefix is rejected before allocation.
        let mut w = SnapshotWriter::new();
        w.u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert!(get_vector(&mut r, "vec").is_err());
        // Unknown enum tags decode to errors.
        let mut r = SnapshotReader::new(&[9u8]);
        assert!(get_labels(&mut r, "labels").is_err());
    }

    #[test]
    fn schedule_round_trips_with_and_without_explicit_batches() {
        for schedule in [
            BatchSchedule::new(10, 4, 6, 42),
            BatchSchedule::new(10, 4, 6, 42).restrict(&[1, 5]),
        ] {
            let mut w = SnapshotWriter::new();
            put_schedule(&mut w, &schedule);
            let bytes = w.into_bytes();
            let mut r = SnapshotReader::new(&bytes);
            let back = get_schedule(&mut r, "schedule").unwrap();
            r.finish().unwrap();
            assert_eq!(back, schedule);
        }
    }
}
