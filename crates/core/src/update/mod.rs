//! Incremental model updates after deleting training samples.
//!
//! * [`priu_linear`] — PrIU for linear regression (Eq. 13/14).
//! * [`priu_opt_linear`] — PrIU-opt for linear regression (Eq. 15-18).
//! * [`priu_logistic`] — PrIU for binary / multinomial logistic regression
//!   (Eq. 19/20).
//! * [`priu_opt_logistic`] — PrIU-opt for logistic regression (§5.4: early
//!   provenance termination + incremental eigenvalue updates).
//! * [`sparse_logistic`] — the sparse-dataset path (§5.3: linearised update
//!   rule only).

pub mod priu_linear;
pub mod priu_logistic;
pub mod priu_opt_linear;
pub mod priu_opt_logistic;
pub mod sparse_logistic;

pub use priu_linear::priu_update_linear;
pub use priu_logistic::priu_update_logistic;
pub use priu_opt_linear::priu_opt_update_linear;
pub use priu_opt_logistic::priu_opt_update_logistic;
pub use sparse_logistic::priu_update_sparse_logistic;

use crate::error::{CoreError, Result};

/// Validates and normalises a removal set: every index must be in range; the
/// result is sorted and deduplicated.
pub(crate) fn normalize_removed(num_samples: usize, removed: &[usize]) -> Result<Vec<usize>> {
    let mut sorted = removed.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if let Some(&bad) = sorted.iter().find(|&&i| i >= num_samples) {
        return Err(CoreError::InvalidRemoval {
            index: bad,
            num_samples,
        });
    }
    Ok(sorted)
}

/// Positions (indices into `batch`) of the batch members that belong to the
/// removal set. Both slices must be sorted ascending.
pub(crate) fn removed_positions(batch: &[usize], removed_sorted: &[usize]) -> Vec<usize> {
    let mut positions = Vec::new();
    removed_positions_into(batch, removed_sorted, &mut positions);
    positions
}

/// [`removed_positions`] into a reused buffer — the allocation-free variant
/// the replay loops call per iteration.
pub(crate) fn removed_positions_into(
    batch: &[usize],
    removed_sorted: &[usize],
    positions: &mut Vec<usize>,
) {
    positions.clear();
    let mut r = 0;
    for (pos, &sample) in batch.iter().enumerate() {
        while r < removed_sorted.len() && removed_sorted[r] < sample {
            r += 1;
        }
        if r < removed_sorted.len() && removed_sorted[r] == sample {
            positions.push(pos);
        }
    }
}

/// Returns `items` with the entries at the given positions removed. The
/// counterpart of [`removed_positions`] used by deletion propagation to drop
/// removed batch members from per-batch coefficient lists. `positions` must
/// be sorted ascending.
pub(crate) fn drop_positions<T: Copy>(items: &[T], positions: &[usize]) -> Vec<T> {
    let mut kept = Vec::with_capacity(items.len() - positions.len());
    let mut next_removed = 0usize;
    for (pos, &item) in items.iter().enumerate() {
        if next_removed < positions.len() && positions[next_removed] == pos {
            next_removed += 1;
        } else {
            kept.push(item);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_positions_removes_exactly_the_marked_entries() {
        assert_eq!(drop_positions(&[10, 11, 12, 13], &[1, 3]), vec![10, 12]);
        assert_eq!(drop_positions(&[10, 11], &[]), vec![10, 11]);
        assert_eq!(drop_positions(&[10, 11], &[0, 1]), Vec::<i32>::new());
    }

    #[test]
    fn normalize_sorts_dedups_and_validates() {
        assert_eq!(normalize_removed(10, &[5, 1, 5, 3]).unwrap(), vec![1, 3, 5]);
        assert!(normalize_removed(4, &[4]).is_err());
        assert!(normalize_removed(4, &[]).unwrap().is_empty());
    }

    #[test]
    fn removed_positions_intersects_sorted_lists() {
        let batch = vec![2, 4, 7, 9, 12];
        assert_eq!(removed_positions(&batch, &[4, 9, 100]), vec![1, 3]);
        assert_eq!(removed_positions(&batch, &[]), Vec::<usize>::new());
        assert_eq!(removed_positions(&batch, &[1, 3, 5]), Vec::<usize>::new());
        assert_eq!(
            removed_positions(&batch, &[2, 4, 7, 9, 12]),
            vec![0, 1, 2, 3, 4]
        );
    }
}
