//! PrIU incremental update for linear regression (Eq. 13/14).
//!
//! The provenance captured during training contains, per iteration `t`, the
//! batch Gram matrix `G_t = Σ_{i∈B_t} x_i x_iᵀ` (possibly truncated to
//! `P_t V_tᵀ`) and the moment vector `h_t = Σ_{i∈B_t} x_i y_i`. Zeroing out
//! the removed samples' provenance tokens turns Eq. 8 into
//!
//! ```text
//! w ← [(1-ηλ)I − (2η/B_U)(G_t − ΔX_tᵀΔX_t)] w + (2η/B_U)(h_t − Δh_t)
//! ```
//!
//! where `ΔX_t` / `Δh_t` are built from the removed samples that fall in
//! batch `t`. The associativity trick of §5.1 keeps everything matrix-vector:
//! the cost per iteration is `O(r·m + ΔB·m)` instead of the `O(B·m)` of
//! retraining.

use priu_data::dataset::{DenseDataset, Labels};

use crate::capture::LinearProvenance;
use crate::error::{CoreError, Result};
use crate::model::{Model, ModelKind};
use crate::update::{normalize_removed, removed_positions_into};
use crate::workspace::Workspace;

/// Incrementally updates a linear-regression model after removing the given
/// training samples, using the captured provenance.
///
/// # Errors
/// * [`CoreError::LabelMismatch`] if the dataset is not a regression dataset.
/// * [`CoreError::InvalidRemoval`] for out-of-range removal indices.
pub fn priu_update_linear(
    dataset: &DenseDataset,
    provenance: &LinearProvenance,
    removed: &[usize],
) -> Result<Model> {
    priu_update_linear_with(dataset, provenance, removed, &mut Workspace::new())
}

/// Like [`priu_update_linear`], reusing a caller-owned [`Workspace`]: with
/// warm buffers the replay loop performs zero heap allocation per iteration
/// (batch derivation, Gram-cache application and the removed-sample deltas
/// all flow through the workspace).
///
/// # Errors
/// See [`priu_update_linear`].
pub fn priu_update_linear_with(
    dataset: &DenseDataset,
    provenance: &LinearProvenance,
    removed: &[usize],
    ws: &mut Workspace,
) -> Result<Model> {
    let y = match &dataset.labels {
        Labels::Continuous(y) => y,
        _ => {
            return Err(CoreError::LabelMismatch {
                expected: "continuous labels for linear regression",
            })
        }
    };
    let n = dataset.num_samples();
    let removed = normalize_removed(n, removed)?;
    let eta = provenance.learning_rate;
    let lambda = provenance.regularization;
    let m = dataset.num_features();

    let mut w = provenance.initial_model.weight().clone();
    for (t, cache) in provenance.iterations.iter().enumerate() {
        provenance
            .schedule
            .batch_into(t, &mut ws.batch, &mut ws.idx_scratch);
        removed_positions_into(&ws.batch, &removed, &mut ws.positions);
        let b_u = cache.batch_size - ws.positions.len();
        if b_u == 0 {
            // The whole batch was deleted: only the regularisation shrink
            // applies at this iteration.
            w.scale_mut(1.0 - eta * lambda);
            continue;
        }

        ws.prepare_features(m);
        let Workspace {
            batch,
            positions,
            m0: gw,
            m1: delta_gw,
            m2: delta_xy,
            g0,
            g1,
            ..
        } = ws;

        // Cached full-batch contribution.
        cache.gram.apply_into(&w, gw, g0, g1)?;

        // Removed contribution, assembled on the fly from the raw samples.
        for &pos in positions.iter() {
            let i = batch[pos];
            let row = dataset.x.row(i);
            let dot: f64 = row.iter().zip(w.iter()).map(|(a, b)| a * b).sum();
            for (j, &v) in row.iter().enumerate() {
                delta_gw[j] += v * dot;
                delta_xy[j] += v * y[i];
            }
        }

        // In-place: every right-hand side was computed from the old `w`.
        // The shrink and the first axpy fuse into one pass (bitwise
        // identical to scale_mut + axpy on every SIMD level).
        let scale = 2.0 * eta / b_u as f64;
        w.scale_add(1.0 - eta * lambda, -scale, gw)?;
        w.axpy(scale, &*delta_gw)?;
        w.axpy(scale, &cache.xy)?;
        w.axpy(-scale, &*delta_xy)?;
    }

    Model::new(ModelKind::Linear, vec![w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::retrain::retrain_linear;
    use crate::config::{Compression, TrainerConfig};
    use crate::metrics::compare_models;
    use crate::trainer::linear::train_linear;
    use priu_data::catalog::Hyperparameters;
    use priu_data::dirty::random_subsets;
    use priu_data::synthetic::regression::{generate_regression, RegressionConfig};

    fn dataset() -> DenseDataset {
        generate_regression(&RegressionConfig {
            num_samples: 500,
            num_features: 8,
            noise_std: 0.1,
            seed: 42,
            ..Default::default()
        })
    }

    fn config() -> TrainerConfig {
        TrainerConfig::from_hyper(Hyperparameters {
            batch_size: 50,
            num_iterations: 250,
            learning_rate: 0.05,
            regularization: 0.05,
        })
        .with_seed(9)
    }

    #[test]
    fn removing_nothing_reproduces_the_original_model() {
        let data = dataset();
        let trained = train_linear(&data, &config()).unwrap();
        let updated = priu_update_linear(&data, &trained.provenance, &[]).unwrap();
        let cmp = compare_models(&trained.model, &updated).unwrap();
        assert!(cmp.l2_distance < 1e-9, "distance {}", cmp.l2_distance);
    }

    #[test]
    fn matches_retraining_closely_for_small_deletions() {
        let data = dataset();
        let cfg = config();
        let trained = train_linear(&data, &cfg).unwrap();
        let removed = random_subsets(data.num_samples(), 0.02, 1, 7)[0].clone();
        let updated = priu_update_linear(&data, &trained.provenance, &removed).unwrap();
        let retrained = retrain_linear(&data, &trained.provenance, &removed).unwrap();
        let cmp = compare_models(&retrained, &updated).unwrap();
        // PrIU for linear regression replays the exact update rule, so the
        // only error source is floating-point accumulation.
        assert!(cmp.l2_distance < 1e-8, "distance {}", cmp.l2_distance);
        assert!(cmp.cosine_similarity > 0.999999);
    }

    #[test]
    fn matches_retraining_for_large_deletions_with_truncated_capture() {
        let data = dataset();
        let cfg = config().with_compression(Compression::Exact { rank: 8 });
        let trained = train_linear(&data, &cfg).unwrap();
        let removed = random_subsets(data.num_samples(), 0.2, 1, 11)[0].clone();
        let updated = priu_update_linear(&data, &trained.provenance, &removed).unwrap();
        let retrained = retrain_linear(&data, &trained.provenance, &removed).unwrap();
        let cmp = compare_models(&retrained, &updated).unwrap();
        // Full-rank truncation (rank = m) is exact.
        assert!(cmp.l2_distance < 1e-8, "distance {}", cmp.l2_distance);
    }

    #[test]
    fn duplicate_and_unsorted_removals_are_normalised() {
        let data = dataset();
        let trained = train_linear(&data, &config()).unwrap();
        let a = priu_update_linear(&data, &trained.provenance, &[10, 3, 10, 7]).unwrap();
        let b = priu_update_linear(&data, &trained.provenance, &[3, 7, 10]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_removals_are_rejected() {
        let data = dataset();
        let trained = train_linear(&data, &config()).unwrap();
        assert!(matches!(
            priu_update_linear(&data, &trained.provenance, &[9999]),
            Err(CoreError::InvalidRemoval { .. })
        ));
    }
}
