//! PrIU-opt incremental update for linear regression (§5.2, Eq. 15-18).
//!
//! When the feature space is small, the mb-SGD update can be approximated by
//! its full-gradient (GD) counterpart, which diagonalises in the eigenbasis
//! of `M = XᵀX`:
//!
//! 1. offline (during training): eigendecompose `M = Q diag(c) Qᵀ` and cache
//!    `N = XᵀY`;
//! 2. online (per deletion): approximate the eigenvalues of
//!    `M' = M − ΔXᵀΔX` by `c'_i = (Qᵀ M' Q)_{ii}` (Eq. 18, the incremental
//!    eigenvalue update of Ning et al.), update `N' = N − ΔXᵀΔY`, and run the
//!    per-coordinate scalar recursion of Eq. 17 — `O(min{Δn,m}·m² + τ·m)`
//!    total, independent of `n`.

use priu_data::dataset::{DenseDataset, Labels};

use crate::capture::LinearProvenance;
use crate::error::{CoreError, Result};
use crate::model::{Model, ModelKind};
use crate::update::normalize_removed;
use crate::workspace::Workspace;

/// Incrementally updates a linear-regression model after removing the given
/// training samples, using the PrIU-opt eigen-recursion.
///
/// # Errors
/// * [`CoreError::MissingCapture`] if the provenance was captured without the
///   PrIU-opt structures.
/// * [`CoreError::LabelMismatch`] / [`CoreError::InvalidRemoval`] as usual.
pub fn priu_opt_update_linear(
    dataset: &DenseDataset,
    provenance: &LinearProvenance,
    removed: &[usize],
) -> Result<Model> {
    priu_opt_update_linear_with(dataset, provenance, removed, &mut Workspace::new())
}

/// Like [`priu_opt_update_linear`], reusing a caller-owned [`Workspace`] for
/// the removed-row block and the eigenbasis vectors. The per-iteration work
/// is a scalar recursion and allocates nothing; the per-*deletion* setup
/// (eigenvalue downdate) allocates independently of the iteration count.
///
/// # Errors
/// See [`priu_opt_update_linear`].
pub fn priu_opt_update_linear_with(
    dataset: &DenseDataset,
    provenance: &LinearProvenance,
    removed: &[usize],
    ws: &mut Workspace,
) -> Result<Model> {
    let y = match &dataset.labels {
        Labels::Continuous(y) => y,
        _ => {
            return Err(CoreError::LabelMismatch {
                expected: "continuous labels for linear regression",
            })
        }
    };
    let opt = provenance
        .opt
        .as_ref()
        .ok_or(CoreError::MissingCapture("PrIU-opt linear capture"))?;
    let n = dataset.num_samples();
    let removed = normalize_removed(n, removed)?;
    let delta_n = removed.len();
    if delta_n >= n {
        return Err(CoreError::InvalidRemoval {
            index: n,
            num_samples: n,
        });
    }
    let n_u = (n - delta_n) as f64;
    let eta = provenance.learning_rate;
    let lambda = provenance.regularization;
    let tau = provenance.schedule.num_iterations();

    // ΔX, ΔY and the downdated quantities.
    ws.batch.clear();
    ws.batch.extend_from_slice(&removed);
    ws.select_batch_rows(&dataset.x);
    let delta_x = &ws.rows;
    ws.b0.clear();
    ws.b0.extend(removed.iter().map(|&i| y[i]));
    let delta_y = &ws.b0;
    // The exact eigenvalues of M' = X_Uᵀ X_U are non-negative; the diagonal
    // approximation of Eq. 18 can dip below zero for high-leverage removals,
    // which would make the recursion expansive, so clamp at zero.
    let mut c_prime = opt.eigen.downdated_eigenvalues(delta_x)?;
    c_prime.map_mut(|c| c.max(0.0));
    let mut n_prime = opt.xty.clone();
    let delta_xty = delta_x.transpose_matvec(delta_y)?;
    n_prime.axpy(-1.0, &delta_xty)?;

    // Work in the eigenbasis: z = Qᵀ w, b̃ = Qᵀ N'.
    let q = &opt.eigen.vectors;
    let w0 = provenance.initial_model.weight();
    let m = w0.len();
    ws.prepare_features(m);
    let Workspace {
        m0: z, m1: b_tilde, ..
    } = ws;
    q.transpose_matvec_into(w0, z)?;
    q.transpose_matvec_into(&n_prime, b_tilde)?;

    // Per-coordinate scalar recursion of Eq. 17 (constant learning rate).
    for i in 0..m {
        let decay = 1.0 - eta * lambda - 2.0 * eta * c_prime[i] / n_u;
        let forcing = 2.0 * eta * b_tilde[i] / n_u;
        let mut zi = z[i];
        for _ in 0..tau {
            zi = decay * zi + forcing;
        }
        z[i] = zi;
    }

    let w = q.matvec(z)?;
    Model::new(ModelKind::Linear, vec![w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::retrain::retrain_linear;
    use crate::config::TrainerConfig;
    use crate::metrics::{compare_models, mean_squared_error};
    use crate::trainer::linear::train_linear;
    use priu_data::catalog::Hyperparameters;
    use priu_data::dirty::random_subsets;
    use priu_data::synthetic::regression::{generate_regression, RegressionConfig};

    fn dataset() -> DenseDataset {
        generate_regression(&RegressionConfig {
            num_samples: 600,
            num_features: 10,
            noise_std: 0.1,
            seed: 17,
            ..Default::default()
        })
    }

    fn config() -> TrainerConfig {
        TrainerConfig::from_hyper(Hyperparameters {
            batch_size: 60,
            num_iterations: 400,
            learning_rate: 0.05,
            regularization: 0.05,
        })
        .with_seed(2)
    }

    #[test]
    fn close_to_retraining_for_small_deletions() {
        let data = dataset();
        let trained = train_linear(&data, &config()).unwrap();
        let removed = random_subsets(data.num_samples(), 0.01, 1, 5)[0].clone();
        let updated = priu_opt_update_linear(&data, &trained.provenance, &removed).unwrap();
        let retrained = retrain_linear(&data, &trained.provenance, &removed).unwrap();
        let cmp = compare_models(&retrained, &updated).unwrap();
        assert!(
            cmp.cosine_similarity > 0.999,
            "similarity {}",
            cmp.cosine_similarity
        );
        // PrIU-opt swaps mb-SGD for its GD approximation, so the updated
        // parameters sit within the SGD noise ball around the retrained ones
        // rather than coinciding exactly (§5.2, "statistically the same").
        assert!(cmp.l2_distance < 0.2, "distance {}", cmp.l2_distance);
        // Predictive quality matches retraining (Q1/Q3).
        let kept: Vec<usize> = (0..data.num_samples())
            .filter(|i| !removed.contains(i))
            .collect();
        let remaining = data.select(&kept);
        let mse_updated = mean_squared_error(&updated, &remaining).unwrap();
        let mse_retrained = mean_squared_error(&retrained, &remaining).unwrap();
        assert!(
            mse_updated < 1.5 * mse_retrained + 0.01,
            "mse updated {mse_updated} vs retrained {mse_retrained}"
        );
    }

    #[test]
    fn removing_nothing_stays_close_to_the_original_model() {
        // PrIU-opt approximates mb-SGD by GD, so even the empty deletion is
        // only statistically identical (§5.2); the models must still be very
        // similar in direction and predictive quality.
        let data = dataset();
        let trained = train_linear(&data, &config()).unwrap();
        let updated = priu_opt_update_linear(&data, &trained.provenance, &[]).unwrap();
        let cmp = compare_models(&trained.model, &updated).unwrap();
        assert!(
            cmp.cosine_similarity > 0.999,
            "similarity {}",
            cmp.cosine_similarity
        );
    }

    #[test]
    fn missing_capture_is_reported() {
        let data = dataset();
        let trained = train_linear(&data, &config().with_opt_capture(false)).unwrap();
        assert!(matches!(
            priu_opt_update_linear(&data, &trained.provenance, &[0]),
            Err(CoreError::MissingCapture(_))
        ));
    }

    #[test]
    fn removing_everything_is_rejected() {
        let data = dataset();
        let trained = train_linear(&data, &config()).unwrap();
        let everything: Vec<usize> = (0..data.num_samples()).collect();
        assert!(priu_opt_update_linear(&data, &trained.provenance, &everything).is_err());
    }
}
