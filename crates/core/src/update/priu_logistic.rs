//! PrIU incremental update for binary and multinomial logistic regression
//! (Eq. 19/20).
//!
//! Per iteration and per class, the captured provenance holds the linearised
//! Gram form `C_t = Σ a_{i,(t)} x_i x_iᵀ` (possibly truncated to
//! `P_t V_tᵀ`), the moment vector `D_t = Σ b'_{i,(t)} x_i`, and the
//! per-sample coefficients. Deleting the samples in `R` replays
//!
//! ```text
//! w ← [(1-ηλ)I + (η/B_U)(C_t − ΔC_t)] w + (η/B_U)(D_t − ΔD_t)
//! ```
//!
//! with `ΔC_t w` and `ΔD_t` assembled on the fly from the removed samples'
//! rows and stored coefficients — `O(r·m + ΔB·m)` per class per iteration.

use priu_data::dataset::DenseDataset;

use crate::capture::LogisticProvenance;
use crate::error::Result;
use crate::model::Model;
use crate::update::{normalize_removed, removed_positions_into};
use crate::workspace::Workspace;

/// Incrementally updates a (binary or multinomial) logistic-regression model
/// after removing the given training samples.
///
/// # Errors
/// Returns [`crate::error::CoreError::InvalidRemoval`] for out-of-range
/// indices and propagates linear-algebra failures.
pub fn priu_update_logistic(
    dataset: &DenseDataset,
    provenance: &LogisticProvenance,
    removed: &[usize],
) -> Result<Model> {
    priu_update_logistic_with(dataset, provenance, removed, &mut Workspace::new())
}

/// Like [`priu_update_logistic`], reusing a caller-owned [`Workspace`]: with
/// warm buffers the replay loop performs zero heap allocation per iteration
/// and per class.
///
/// # Errors
/// See [`priu_update_logistic`].
pub fn priu_update_logistic_with(
    dataset: &DenseDataset,
    provenance: &LogisticProvenance,
    removed: &[usize],
    ws: &mut Workspace,
) -> Result<Model> {
    let n = dataset.num_samples();
    let removed = normalize_removed(n, removed)?;
    priu_update_logistic_range(
        dataset,
        provenance,
        &removed,
        0,
        provenance.iterations.len(),
        provenance.initial_model.clone(),
        ws,
    )
}

/// Replays the incremental update over iterations `[start, end)` starting
/// from `model`. Used both by the full PrIU update and by PrIU-opt, which
/// replays `[0, ts)` with this routine and switches to the eigen-recursion
/// afterwards.
#[allow(clippy::too_many_arguments)]
pub(crate) fn priu_update_logistic_range(
    dataset: &DenseDataset,
    provenance: &LogisticProvenance,
    removed_sorted: &[usize],
    start: usize,
    end: usize,
    model: Model,
    ws: &mut Workspace,
) -> Result<Model> {
    let eta = provenance.learning_rate;
    let lambda = provenance.regularization;
    let m = dataset.num_features();
    let mut model = model;

    for t in start..end {
        let cache = &provenance.iterations[t];
        provenance
            .schedule
            .batch_into(t, &mut ws.batch, &mut ws.idx_scratch);
        removed_positions_into(&ws.batch, removed_sorted, &mut ws.positions);
        let b_u = cache.batch_size - ws.positions.len();
        if b_u == 0 {
            for w in model.weights_mut() {
                w.scale_mut(1.0 - eta * lambda);
            }
            continue;
        }
        let scale = eta / b_u as f64;

        let weights = model.weights_mut();
        for (k, class_cache) in cache.classes.iter().enumerate() {
            ws.prepare_features(m);
            let Workspace {
                batch,
                positions,
                m0: cw,
                m1: delta_cw,
                m2: delta_d,
                g0,
                g1,
                ..
            } = ws;
            let w = &weights[k];
            class_cache.gram.apply_into(w, cw, g0, g1)?;

            for &pos in positions.iter() {
                let i = batch[pos];
                let (a, b_prime) = class_cache.coefficients[pos];
                let row = dataset.x.row(i);
                let dot: f64 = row.iter().zip(w.iter()).map(|(u, v)| u * v).sum();
                let gram_coeff = a * dot;
                for (j, &v) in row.iter().enumerate() {
                    delta_cw[j] += gram_coeff * v;
                    delta_d[j] += b_prime * v;
                }
            }

            // In-place: every right-hand side was computed from the old `w`.
            // The shrink and the first axpy fuse into one pass (bitwise
            // identical to scale_mut + axpy on every SIMD level).
            let w = &mut weights[k];
            w.scale_add(1.0 - eta * lambda, scale, cw)?;
            w.axpy(-scale, &*delta_cw)?;
            w.axpy(scale, &class_cache.d)?;
            w.axpy(-scale, &*delta_d)?;
        }
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::retrain::{retrain_binary_logistic, retrain_multinomial_logistic};
    use crate::config::{Compression, TrainerConfig};
    use crate::error::CoreError;
    use crate::metrics::{classification_accuracy, compare_models};
    use crate::trainer::logistic::{train_binary_logistic, train_multinomial_logistic};
    use priu_data::catalog::Hyperparameters;
    use priu_data::dirty::random_subsets;
    use priu_data::synthetic::classification::{
        generate_binary_classification, generate_multiclass_classification, ClassificationConfig,
    };

    fn binary_data() -> DenseDataset {
        generate_binary_classification(&ClassificationConfig {
            num_samples: 600,
            num_features: 10,
            separation: 3.0,
            label_noise: 0.5,
            seed: 51,
            ..Default::default()
        })
    }

    fn multi_data() -> DenseDataset {
        generate_multiclass_classification(&ClassificationConfig {
            num_samples: 700,
            num_features: 12,
            num_classes: 3,
            separation: 3.0,
            label_noise: 0.5,
            seed: 52,
        })
    }

    fn config() -> TrainerConfig {
        TrainerConfig::from_hyper(Hyperparameters {
            batch_size: 64,
            num_iterations: 250,
            learning_rate: 0.3,
            regularization: 0.01,
        })
        .with_seed(8)
    }

    #[test]
    fn removing_nothing_reproduces_the_original_model_up_to_linearisation() {
        let data = binary_data();
        let trained = train_binary_logistic(&data, &config()).unwrap();
        let updated = priu_update_logistic(&data, &trained.provenance, &[]).unwrap();
        let cmp = compare_models(&trained.model, &updated).unwrap();
        // Theorem 4: the only gap is the O((Δx)²) interpolation error.
        assert!(cmp.l2_distance < 1e-6, "distance {}", cmp.l2_distance);
    }

    #[test]
    fn binary_update_matches_retraining() {
        let data = binary_data();
        let trained = train_binary_logistic(&data, &config()).unwrap();
        let removed = random_subsets(data.num_samples(), 0.05, 1, 3)[0].clone();
        let updated = priu_update_logistic(&data, &trained.provenance, &removed).unwrap();
        let retrained = retrain_binary_logistic(&data, &trained.provenance, &removed).unwrap();
        let cmp = compare_models(&retrained, &updated).unwrap();
        assert!(
            cmp.cosine_similarity > 0.999,
            "similarity {}",
            cmp.cosine_similarity
        );
        // Validation accuracy is preserved (Q3).
        let acc_updated = classification_accuracy(&updated, &data).unwrap();
        let acc_retrained = classification_accuracy(&retrained, &data).unwrap();
        assert!((acc_updated - acc_retrained).abs() < 0.02);
    }

    #[test]
    fn multinomial_update_matches_retraining() {
        let data = multi_data();
        let trained = train_multinomial_logistic(&data, &config()).unwrap();
        let removed = random_subsets(data.num_samples(), 0.05, 1, 4)[0].clone();
        let updated = priu_update_logistic(&data, &trained.provenance, &removed).unwrap();
        let retrained = retrain_multinomial_logistic(&data, &trained.provenance, &removed).unwrap();
        let cmp = compare_models(&retrained, &updated).unwrap();
        assert!(
            cmp.cosine_similarity > 0.995,
            "similarity {}",
            cmp.cosine_similarity
        );
        assert_eq!(cmp.drift.sign_flips, 0);
    }

    #[test]
    fn truncated_capture_still_matches_retraining() {
        let data = binary_data();
        let cfg = config().with_compression(Compression::Randomized {
            rank: 10,
            oversample: 6,
        });
        let trained = train_binary_logistic(&data, &cfg).unwrap();
        let removed = random_subsets(data.num_samples(), 0.05, 1, 6)[0].clone();
        let updated = priu_update_logistic(&data, &trained.provenance, &removed).unwrap();
        let retrained = retrain_binary_logistic(&data, &trained.provenance, &removed).unwrap();
        let cmp = compare_models(&retrained, &updated).unwrap();
        assert!(
            cmp.cosine_similarity > 0.99,
            "similarity {}",
            cmp.cosine_similarity
        );
    }

    #[test]
    fn invalid_removals_are_rejected() {
        let data = binary_data();
        let trained = train_binary_logistic(&data, &config()).unwrap();
        assert!(matches!(
            priu_update_logistic(&data, &trained.provenance, &[100_000]),
            Err(CoreError::InvalidRemoval { .. })
        ));
    }
}
