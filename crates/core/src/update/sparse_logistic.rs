//! PrIU for sparse datasets (§5.3): replay the linearised update rule
//! (Eq. 11) over the surviving samples.
//!
//! For sparse feature matrices the truncated-SVD caches of the dense path
//! would densify the intermediates, so PrIU only reuses the linearisation
//! coefficients captured during training and re-applies the update rule over
//! CSR rows. The cost per iteration is `O(nnz(B_U^{(t)}))` — essentially the
//! retraining cost minus the non-linear evaluations, hence the paper's ~10%
//! speed-up.

use priu_data::dataset::SparseDataset;

use crate::error::Result;
use crate::model::{Model, ModelKind};
use crate::trainer::sparse::SparseLogisticProvenance;
use crate::update::{normalize_removed, removed_positions_into};
use crate::workspace::Workspace;

/// Incrementally updates a sparse binary logistic-regression model after
/// removing the given training samples.
///
/// # Errors
/// Returns [`crate::error::CoreError::InvalidRemoval`] for out-of-range
/// indices and propagates linear-algebra failures.
pub fn priu_update_sparse_logistic(
    dataset: &SparseDataset,
    provenance: &SparseLogisticProvenance,
    removed: &[usize],
) -> Result<Model> {
    priu_update_sparse_logistic_with(dataset, provenance, removed, &mut Workspace::new())
}

/// Like [`priu_update_sparse_logistic`], reusing a caller-owned
/// [`Workspace`] so the replay loop is allocation-free once warm.
///
/// # Errors
/// See [`priu_update_sparse_logistic`].
pub fn priu_update_sparse_logistic_with(
    dataset: &SparseDataset,
    provenance: &SparseLogisticProvenance,
    removed: &[usize],
    ws: &mut Workspace,
) -> Result<Model> {
    let n = dataset.num_samples();
    let removed = normalize_removed(n, removed)?;
    let m = dataset.num_features();
    let eta = provenance.learning_rate;
    let lambda = provenance.regularization;

    let mut w = provenance.initial_model.weight().clone();
    for (t, coeffs) in provenance.coefficients.iter().enumerate() {
        provenance
            .schedule
            .batch_into(t, &mut ws.batch, &mut ws.idx_scratch);
        removed_positions_into(&ws.batch, &removed, &mut ws.positions);
        let b_u = ws.batch.len() - ws.positions.len();
        if b_u == 0 {
            w.scale_mut(1.0 - eta * lambda);
            continue;
        }
        ws.prepare_features(m);
        ws.prepare_sparse_batch(ws.batch.len());
        let Workspace {
            batch,
            positions,
            sel,
            b0: dots,
            b1: slopes,
            b2: intercepts,
            m0: acc,
            ..
        } = ws;
        // Compact the survivors: row indices into `sel`, their captured
        // (a, b') linearisation coefficients into parallel buffers.
        sel.clear();
        let mut next_removed = positions.iter().copied().peekable();
        for (pos, &i) in batch.iter().enumerate() {
            if next_removed.peek() == Some(&pos) {
                next_removed.next();
                continue;
            }
            let (a, b_prime) = coeffs[pos];
            slopes[sel.len()] = a;
            intercepts[sel.len()] = b_prime;
            sel.push(i);
        }
        // Gather phase: all survivor margins xᵀw in one parallel kernel.
        let dots = &mut dots[..sel.len()];
        dataset.x.rows_dot_into(sel, &w, dots)?;
        // Contribution a·x (xᵀw) + b'·x collapses to a single scatter
        // weight per survivor...
        for (k, dot) in dots.iter().enumerate() {
            slopes[k] = slopes[k] * dot + intercepts[k];
        }
        // ...applied as one chunk-ordered deterministic reduction.
        dataset
            .x
            .scatter_rows_into(sel, &slopes[..sel.len()], acc)?;
        // Fused parameter step (bitwise identical to scale_mut + axpy on
        // every SIMD level) — keeps the replay in lock-step with the
        // trainer's fused step.
        w.scale_add(1.0 - eta * lambda, eta / b_u as f64, acc)?;
    }
    Model::new(ModelKind::BinaryLogistic, vec![w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::retrain::retrain_sparse_binary_logistic;
    use crate::config::TrainerConfig;
    use crate::error::CoreError;
    use crate::metrics::{compare_models, sparse_classification_accuracy};
    use crate::trainer::sparse::train_sparse_binary_logistic;
    use priu_data::catalog::Hyperparameters;
    use priu_data::dirty::random_subsets;
    use priu_data::synthetic::sparse_text::{generate_sparse_binary, SparseConfig};

    fn data() -> SparseDataset {
        generate_sparse_binary(&SparseConfig {
            num_samples: 600,
            num_features: 500,
            nnz_per_row: 25,
            informative_fraction: 0.2,
            seed: 71,
        })
    }

    fn config() -> TrainerConfig {
        TrainerConfig::from_hyper(Hyperparameters {
            batch_size: 60,
            num_iterations: 250,
            learning_rate: 0.3,
            regularization: 1e-3,
        })
        .with_seed(6)
    }

    #[test]
    fn removing_nothing_reproduces_the_original_model_up_to_linearisation() {
        let d = data();
        let trained = train_sparse_binary_logistic(&d, &config()).unwrap();
        let updated = priu_update_sparse_logistic(&d, &trained.provenance, &[]).unwrap();
        let cmp = compare_models(&trained.model, &updated).unwrap();
        assert!(cmp.l2_distance < 1e-6, "distance {}", cmp.l2_distance);
    }

    #[test]
    fn matches_retraining_for_small_deletions() {
        let d = data();
        let trained = train_sparse_binary_logistic(&d, &config()).unwrap();
        let removed = random_subsets(d.num_samples(), 0.05, 1, 3)[0].clone();
        let updated = priu_update_sparse_logistic(&d, &trained.provenance, &removed).unwrap();
        let retrained = retrain_sparse_binary_logistic(&d, &trained.provenance, &removed).unwrap();
        let cmp = compare_models(&retrained, &updated).unwrap();
        assert!(
            cmp.cosine_similarity > 0.999,
            "similarity {}",
            cmp.cosine_similarity
        );
        let acc_updated = sparse_classification_accuracy(&updated, &d).unwrap();
        let acc_retrained = sparse_classification_accuracy(&retrained, &d).unwrap();
        assert!((acc_updated - acc_retrained).abs() < 0.02);
    }

    #[test]
    fn invalid_removals_are_rejected() {
        let d = data();
        let trained = train_sparse_binary_logistic(&d, &config()).unwrap();
        assert!(matches!(
            priu_update_sparse_logistic(&d, &trained.provenance, &[10_000]),
            Err(CoreError::InvalidRemoval { .. })
        ));
    }
}
