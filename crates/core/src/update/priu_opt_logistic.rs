//! PrIU-opt incremental update for logistic regression (§5.4).
//!
//! The optimisation exploits the observation that the linearisation
//! coefficients stabilise as training converges: after iteration
//! `ts ≈ 0.7·τ` the training phase froze per-sample coefficients
//! `(a_{i,*}, b'_{i,*})`, materialised the full-data `C*` / `D*` once, and
//! eigendecomposed `C*` offline. The online update therefore
//!
//! 1. replays the ordinary PrIU recursion (Eq. 19/20) for `t < ts`;
//! 2. downdates the eigenvalues of `C*` for the removed samples
//!    (`c'_i = c_i − (QᵀΔC*Q)_{ii}`, the same incremental eigenvalue update
//!    as §5.2) and subtracts `ΔD*`;
//! 3. finishes the remaining `τ − ts` iterations as a per-coordinate scalar
//!    recursion in the eigenbasis — `O((τ−ts)·m)` instead of
//!    `O((τ−ts)·(r·m + ΔB·m))`.

use priu_data::dataset::DenseDataset;

use crate::capture::LogisticProvenance;
use crate::error::{CoreError, Result};
use crate::model::Model;
use crate::update::normalize_removed;
use crate::update::priu_logistic::priu_update_logistic_range;
use crate::workspace::Workspace;

/// Incrementally updates a (binary or multinomial) logistic-regression model
/// using the PrIU-opt early-termination strategy.
///
/// # Errors
/// * [`CoreError::MissingCapture`] if the provenance was captured without the
///   PrIU-opt structures.
/// * [`CoreError::InvalidRemoval`] for invalid removal sets (including
///   removing every sample).
pub fn priu_opt_update_logistic(
    dataset: &DenseDataset,
    provenance: &LogisticProvenance,
    removed: &[usize],
) -> Result<Model> {
    priu_opt_update_logistic_with(dataset, provenance, removed, &mut Workspace::new())
}

/// Like [`priu_opt_update_logistic`], reusing a caller-owned [`Workspace`]:
/// the phase-1 replay is allocation-free per iteration (it shares the plain
/// PrIU loop) and the phase-2 eigen-recursion allocates only per class,
/// independently of the iteration count.
///
/// # Errors
/// See [`priu_opt_update_logistic`].
pub fn priu_opt_update_logistic_with(
    dataset: &DenseDataset,
    provenance: &LogisticProvenance,
    removed: &[usize],
    ws: &mut Workspace,
) -> Result<Model> {
    let opt = provenance
        .opt
        .as_ref()
        .ok_or(CoreError::MissingCapture("PrIU-opt logistic capture"))?;
    let n = dataset.num_samples();
    let removed = normalize_removed(n, removed)?;
    if removed.len() >= n {
        return Err(CoreError::InvalidRemoval {
            index: n,
            num_samples: n,
        });
    }
    let eta = provenance.learning_rate;
    let lambda = provenance.regularization;
    let tau = provenance.schedule.num_iterations();
    let ts = opt.switch_iteration.min(provenance.iterations.len());
    let n_u = (n - removed.len()) as f64;

    // Phase 1: ordinary PrIU replay for the provenance-tracked iterations.
    let mut model = priu_update_logistic_range(
        dataset,
        provenance,
        &removed,
        0,
        ts,
        provenance.initial_model.clone(),
        ws,
    )?;

    if tau <= ts {
        return Ok(model);
    }

    // Phase 2: frozen-coefficient GD in the eigenbasis of C*.
    ws.batch.clear();
    ws.batch.extend_from_slice(&removed);
    ws.select_batch_rows(&dataset.x);
    let remaining_iterations = tau - ts;
    let weights = model.weights_mut();
    let m = dataset.num_features();
    for (k, class) in opt.classes.iter().enumerate() {
        ws.prepare_batch(removed.len());
        ws.prepare_features(m);
        let Workspace {
            rows: delta_rows,
            b0: a_removed,
            b1: b_removed,
            m0: z,
            m1: d_tilde,
            ..
        } = ws;
        // Removed samples' frozen coefficients.
        for (slot, &i) in removed.iter().enumerate() {
            a_removed[slot] = class.coefficients[i].0;
            b_removed[slot] = class.coefficients[i].1;
        }

        // Downdated eigenvalues of C*' = C* − ΔC* and moment vector D*'.
        // C*' is negative semi-definite (the linearisation slopes are ≤ 0);
        // clamp the diagonal eigenvalue approximation accordingly so the
        // recursion stays contractive for high-leverage removals.
        let mut c_prime = class
            .eigen
            .downdated_eigenvalues_weighted(delta_rows, a_removed)?;
        c_prime.map_mut(|c| c.min(0.0));
        let mut d_prime = class.d_star.clone();
        let delta_d = delta_rows.transpose_matvec(b_removed)?;
        d_prime.axpy(-1.0, &delta_d)?;

        // Scalar recursion in the eigenbasis.
        let q = &class.eigen.vectors;
        q.transpose_matvec_into(&weights[k], z)?;
        q.transpose_matvec_into(&d_prime, d_tilde)?;
        for i in 0..m {
            let decay = 1.0 - eta * lambda + eta * c_prime[i] / n_u;
            let forcing = eta * d_tilde[i] / n_u;
            let mut zi = z[i];
            for _ in 0..remaining_iterations {
                zi = decay * zi + forcing;
            }
            z[i] = zi;
        }
        weights[k] = q.matvec(z)?;
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::retrain::{retrain_binary_logistic, retrain_multinomial_logistic};
    use crate::config::TrainerConfig;
    use crate::metrics::{classification_accuracy, compare_models};
    use crate::trainer::logistic::{train_binary_logistic, train_multinomial_logistic};
    use priu_data::catalog::Hyperparameters;
    use priu_data::dirty::random_subsets;
    use priu_data::synthetic::classification::{
        generate_binary_classification, generate_multiclass_classification, ClassificationConfig,
    };

    fn binary_data() -> DenseDataset {
        generate_binary_classification(&ClassificationConfig {
            num_samples: 800,
            num_features: 10,
            separation: 3.0,
            label_noise: 0.5,
            seed: 61,
            ..Default::default()
        })
    }

    fn config() -> TrainerConfig {
        TrainerConfig::from_hyper(Hyperparameters {
            batch_size: 80,
            num_iterations: 300,
            learning_rate: 0.3,
            regularization: 0.02,
        })
        .with_seed(12)
    }

    #[test]
    fn close_to_retraining_for_small_deletions() {
        let data = binary_data();
        let trained = train_binary_logistic(&data, &config()).unwrap();
        let removed = random_subsets(data.num_samples(), 0.01, 1, 2)[0].clone();
        let updated = priu_opt_update_logistic(&data, &trained.provenance, &removed).unwrap();
        let retrained = retrain_binary_logistic(&data, &trained.provenance, &removed).unwrap();
        let cmp = compare_models(&retrained, &updated).unwrap();
        assert!(
            cmp.cosine_similarity > 0.995,
            "similarity {}",
            cmp.cosine_similarity
        );
        let acc_updated = classification_accuracy(&updated, &data).unwrap();
        let acc_retrained = classification_accuracy(&retrained, &data).unwrap();
        assert!((acc_updated - acc_retrained).abs() < 0.02);
    }

    #[test]
    fn multinomial_variant_matches_retraining_direction() {
        let data = generate_multiclass_classification(&ClassificationConfig {
            num_samples: 600,
            num_features: 8,
            num_classes: 3,
            separation: 3.0,
            label_noise: 0.5,
            seed: 62,
        });
        let trained = train_multinomial_logistic(&data, &config()).unwrap();
        let removed = random_subsets(data.num_samples(), 0.02, 1, 9)[0].clone();
        let updated = priu_opt_update_logistic(&data, &trained.provenance, &removed).unwrap();
        let retrained = retrain_multinomial_logistic(&data, &trained.provenance, &removed).unwrap();
        let cmp = compare_models(&retrained, &updated).unwrap();
        assert!(
            cmp.cosine_similarity > 0.99,
            "similarity {}",
            cmp.cosine_similarity
        );
    }

    #[test]
    fn missing_opt_capture_is_reported() {
        let data = binary_data();
        let trained = train_binary_logistic(&data, &config().with_opt_capture(false)).unwrap();
        assert!(matches!(
            priu_opt_update_logistic(&data, &trained.provenance, &[1]),
            Err(CoreError::MissingCapture(_))
        ));
    }

    #[test]
    fn agrees_with_plain_priu_when_deletions_are_small() {
        use crate::update::priu_logistic::priu_update_logistic;
        let data = binary_data();
        let trained = train_binary_logistic(&data, &config()).unwrap();
        let removed = random_subsets(data.num_samples(), 0.005, 1, 13)[0].clone();
        let plain = priu_update_logistic(&data, &trained.provenance, &removed).unwrap();
        let opt = priu_opt_update_logistic(&data, &trained.provenance, &removed).unwrap();
        let cmp = compare_models(&plain, &opt).unwrap();
        assert!(
            cmp.cosine_similarity > 0.995,
            "similarity {}",
            cmp.cosine_similarity
        );
    }
}
