//! The sparse binary logistic-regression deletion engine (§5.3).

use std::time::{Duration, Instant};

use priu_data::dataset::{SparseDataset, TaskKind};

use crate::baseline::retrain::retrain_sparse_binary_logistic_with;
use crate::config::TrainerConfig;
use crate::engine::{
    split_survivors, timed_update, ChainedUpdate, DeletionEngine, Method, Session, UpdateOutcome,
};
use crate::error::{CoreError, Result};
use crate::model::Model;
use crate::trainer::sparse::{
    train_sparse_binary_logistic, SparseLogisticProvenance, TrainedSparseLogistic,
};
use crate::update::sparse_logistic::priu_update_sparse_logistic_with;
use crate::update::{drop_positions, normalize_removed, removed_positions};
use crate::workspace::Workspace;

/// A sparse binary logistic-regression session (RCV1-style workloads). The
/// sparse path captures only the per-iteration linearisation coefficients
/// (§5.3), so the supported methods are PrIU and retraining.
#[derive(Debug, Clone)]
pub struct SparseLogisticEngine {
    dataset: SparseDataset,
    config: TrainerConfig,
    trained: TrainedSparseLogistic,
    training_time: Duration,
}

impl SparseLogisticEngine {
    /// Trains the initial model and captures provenance (offline phase).
    ///
    /// # Errors
    /// Propagates training failures.
    pub fn fit(dataset: SparseDataset, config: TrainerConfig) -> Result<Self> {
        let start = Instant::now();
        let trained = train_sparse_binary_logistic(&dataset, &config)?;
        Ok(Self {
            dataset,
            config,
            trained,
            training_time: start.elapsed(),
        })
    }

    /// The training dataset this session currently covers.
    pub fn dataset(&self) -> &SparseDataset {
        &self.dataset
    }
}

impl DeletionEngine for SparseLogisticEngine {
    fn task(&self) -> TaskKind {
        TaskKind::BinaryClassification
    }

    fn num_samples(&self) -> usize {
        self.dataset.num_samples()
    }

    fn model(&self) -> &Model {
        &self.trained.model
    }

    fn training_time(&self) -> Duration {
        self.training_time
    }

    fn provenance_bytes(&self) -> usize {
        self.trained.provenance.provenance_bytes()
    }

    fn supported_methods(&self) -> Vec<Method> {
        vec![Method::Retrain, Method::Priu]
    }

    fn update(&self, method: Method, removed: &[usize]) -> Result<UpdateOutcome> {
        let num_removed = normalize_removed(self.num_samples(), removed)?.len();
        match method {
            Method::Retrain => {
                // BaseL rides the same batched CSR kernels as the PrIU
                // replay; its workspace is likewise sized before the timer.
                let mut ws = Workspace::sized_for(
                    self.dataset.num_features(),
                    self.trained.provenance.schedule.batch_size(),
                    1,
                );
                timed_update(method, num_removed, || {
                    retrain_sparse_binary_logistic_with(
                        &self.dataset,
                        &self.trained.provenance,
                        removed,
                        &mut ws,
                    )
                })
            }
            Method::Priu => {
                // The workspace is sized before the timer starts, so the
                // timed region measures pure replay work.
                let mut ws = Workspace::sized_for(
                    self.dataset.num_features(),
                    self.trained.provenance.schedule.batch_size(),
                    1,
                );
                timed_update(method, num_removed, || {
                    priu_update_sparse_logistic_with(
                        &self.dataset,
                        &self.trained.provenance,
                        removed,
                        &mut ws,
                    )
                })
            }
            Method::PriuOpt | Method::ClosedForm | Method::Influence => {
                Err(CoreError::UnsupportedMethod {
                    method: method.name(),
                    reason: "the sparse path captures linearisation coefficients only (§5.3); \
                             it supports PrIU and retraining",
                })
            }
        }
    }

    fn apply(&self, method: Method, removed: &[usize]) -> Result<ChainedUpdate> {
        let outcome = self.update(method, removed)?;
        let (removed, survivors) = split_survivors(self.num_samples(), removed)?;
        let provenance = &self.trained.provenance;

        // The sparse provenance is just per-iteration coefficient lists in
        // batch order: drop the removed members' entries. The batches are
        // materialised once and reused to build the restricted schedule.
        let mut batches = Vec::with_capacity(provenance.coefficients.len());
        let mut coefficients = Vec::with_capacity(provenance.coefficients.len());
        for (t, iteration) in provenance.coefficients.iter().enumerate() {
            let batch = provenance.schedule.batch(t);
            let positions = removed_positions(&batch, &removed);
            batches.push(batch);
            if positions.is_empty() {
                coefficients.push(iteration.clone());
            } else {
                coefficients.push(drop_positions(iteration, &positions));
            }
        }

        let successor = SparseLogisticEngine {
            // `select` reports out-of-bounds survivors as an error (the CSR
            // row ops are unified on `Result`); survivors are in range by
            // construction, so this only propagates genuine corruption.
            dataset: self.dataset.select(&survivors)?,
            config: self.config,
            trained: TrainedSparseLogistic {
                model: outcome.model.clone(),
                provenance: SparseLogisticProvenance {
                    schedule: provenance.schedule.restrict_from(&removed, batches),
                    learning_rate: provenance.learning_rate,
                    regularization: provenance.regularization,
                    initial_model: provenance.initial_model.clone(),
                    coefficients,
                },
            },
            training_time: self.training_time,
        };
        Ok(ChainedUpdate {
            outcome,
            session: Session::SparseLogistic(successor),
        })
    }
}
