//! The sparse binary logistic-regression deletion engine (§5.3).

use std::time::{Duration, Instant};

use priu_data::dataset::{SparseDataset, TaskKind};
use priu_linalg::Vector;

use crate::baseline::retrain::retrain_sparse_binary_logistic_with;
use crate::config::TrainerConfig;
use crate::engine::{
    appended_batches, split_survivors, timed_update, ChainedUpdate, DeletionEngine, Delta,
    DeltaRows, Method, Session, UpdateOutcome,
};
use crate::error::{CoreError, Result};
use crate::model::Model;
use crate::snapshot::{
    get_model, get_sparse_dataset, get_sparse_provenance, get_trainer_config, put_model,
    put_sparse_dataset, put_sparse_provenance, put_trainer_config, SnapshotReader, SnapshotWriter,
};
use crate::trainer::sparse::{
    sparse_logistic_step, train_sparse_binary_logistic, SparseLogisticProvenance,
    TrainedSparseLogistic,
};
use crate::update::sparse_logistic::priu_update_sparse_logistic_with;
use crate::update::{drop_positions, normalize_removed, removed_positions};
use crate::workspace::Workspace;

/// A sparse binary logistic-regression session (RCV1-style workloads). The
/// sparse path captures only the per-iteration linearisation coefficients
/// (§5.3), so the supported methods are PrIU and retraining.
#[derive(Debug, Clone)]
pub struct SparseLogisticEngine {
    dataset: SparseDataset,
    config: TrainerConfig,
    trained: TrainedSparseLogistic,
    training_time: Duration,
}

impl SparseLogisticEngine {
    /// Trains the initial model and captures provenance (offline phase).
    ///
    /// # Errors
    /// Propagates training failures.
    pub fn fit(dataset: SparseDataset, config: TrainerConfig) -> Result<Self> {
        let start = Instant::now();
        let trained = train_sparse_binary_logistic(&dataset, &config)?;
        Ok(Self {
            dataset,
            config,
            trained,
            training_time: start.elapsed(),
        })
    }

    /// The training dataset this session currently covers.
    pub fn dataset(&self) -> &SparseDataset {
        &self.dataset
    }

    /// Serializes the whole engine state bit-exactly (durability snapshots).
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        put_sparse_dataset(w, &self.dataset);
        put_trainer_config(w, &self.config);
        put_model(w, &self.trained.model);
        put_sparse_provenance(w, &self.trained.provenance);
        w.u64(self.training_time.as_nanos() as u64);
    }

    /// Rebuilds an engine from [`SparseLogisticEngine::encode_snapshot`]
    /// bytes.
    ///
    /// # Errors
    /// Returns [`CoreError::Snapshot`] on truncated or corrupt input.
    pub fn decode_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self> {
        let dataset = get_sparse_dataset(r, "sparse dataset")?;
        let config = get_trainer_config(r, "sparse config")?;
        let model = get_model(r, "sparse model")?;
        let provenance = get_sparse_provenance(r, "sparse provenance")?;
        let training_time = Duration::from_nanos(r.u64("sparse training time")?);
        Ok(Self {
            dataset,
            config,
            trained: TrainedSparseLogistic { model, provenance },
            training_time,
        })
    }

    /// A workspace pre-sized for this session's replay loops.
    fn sized_workspace(&self) -> Workspace {
        Workspace::sized_for(
            self.dataset.num_features(),
            self.trained.provenance.schedule.batch_size(),
            1,
        )
    }

    /// Validates a delta's added rows against this session: sparse block,
    /// matching feature width, binary labels. Returns `None` for deltas that
    /// add nothing.
    fn validate_added<'a>(&self, delta: &'a Delta) -> Result<Option<&'a SparseDataset>> {
        match &delta.added {
            None => Ok(None),
            Some(DeltaRows::Dense(_)) => Err(CoreError::InvalidConfig(
                "dense rows cannot be added to a sparse logistic session".to_string(),
            )),
            Some(DeltaRows::Sparse(rows)) => {
                if rows.num_features() != self.dataset.num_features() {
                    return Err(CoreError::InvalidConfig(format!(
                        "added rows have {} features, the session has {}",
                        rows.num_features(),
                        self.dataset.num_features()
                    )));
                }
                if rows.labels.as_binary().is_none() {
                    return Err(CoreError::LabelMismatch {
                        expected: "binary (+1/-1) labels for rows added to a sparse \
                                   logistic session",
                    });
                }
                Ok((rows.num_samples() > 0).then_some(rows))
            }
        }
    }

    /// Runs the appended explicit-batch GD steps over `added`, chunked by
    /// the schedule's batch size, warm-started from `w` (mutated in place).
    /// When `captures` is provided, one `(a, b')` coefficient list per
    /// appended batch is collected.
    fn addition_steps(
        &self,
        added: &SparseDataset,
        w: &mut Vector,
        ws: &mut Workspace,
        mut captures: Option<&mut Vec<Vec<(f64, f64)>>>,
    ) -> Result<()> {
        let provenance = &self.trained.provenance;
        let (eta, lambda) = (provenance.learning_rate, provenance.regularization);
        let interp = &self.config.interpolation;
        let y = added
            .labels
            .as_binary()
            .expect("added rows were validated as binary");
        for batch in appended_batches(0, added.num_samples(), provenance.schedule.batch_size()) {
            ws.batch.clear();
            ws.batch.extend_from_slice(&batch);
            let coeffs =
                sparse_logistic_step(&added.x, y, w, eta, lambda, interp, captures.is_some(), ws)?;
            if let (Some(caps), Some(coeffs)) = (captures.as_deref_mut(), coeffs) {
                caps.push(coeffs);
            }
        }
        if !w.is_finite() {
            return Err(CoreError::Diverged {
                iteration: provenance.schedule.num_iterations(),
            });
        }
        Ok(())
    }

    /// The deletion-only update path — exactly the pre-delta code, so
    /// removal-only deltas stay bitwise identical to the old engine.
    fn removal_update(&self, method: Method, removed: &[usize]) -> Result<UpdateOutcome> {
        let num_removed = normalize_removed(self.num_samples(), removed)?.len();
        match method {
            Method::Retrain => {
                // BaseL rides the same batched CSR kernels as the PrIU
                // replay; its workspace is likewise sized before the timer.
                let mut ws = self.sized_workspace();
                timed_update(method, num_removed, 0, || {
                    retrain_sparse_binary_logistic_with(
                        &self.dataset,
                        &self.trained.provenance,
                        removed,
                        &mut ws,
                    )
                })
            }
            Method::Priu => {
                // The workspace is sized before the timer starts, so the
                // timed region measures pure replay work.
                let mut ws = self.sized_workspace();
                timed_update(method, num_removed, 0, || {
                    priu_update_sparse_logistic_with(
                        &self.dataset,
                        &self.trained.provenance,
                        removed,
                        &mut ws,
                    )
                })
            }
            Method::PriuOpt | Method::ClosedForm | Method::Influence => {
                Err(CoreError::UnsupportedMethod {
                    method: method.name(),
                    reason: "the sparse path captures linearisation coefficients only (§5.3); \
                             it supports PrIU and retraining",
                })
            }
        }
    }
}

impl DeletionEngine for SparseLogisticEngine {
    fn task(&self) -> TaskKind {
        TaskKind::BinaryClassification
    }

    fn num_samples(&self) -> usize {
        self.dataset.num_samples()
    }

    fn model(&self) -> &Model {
        &self.trained.model
    }

    fn training_time(&self) -> Duration {
        self.training_time
    }

    fn provenance_bytes(&self) -> usize {
        self.trained.provenance.provenance_bytes()
    }

    fn supported_methods(&self) -> Vec<Method> {
        vec![Method::Retrain, Method::Priu]
    }

    fn update_delta(&self, method: Method, delta: &Delta) -> Result<UpdateOutcome> {
        let added = self.validate_added(delta)?;
        let mut outcome = self.removal_update(method, &delta.removed)?;
        let Some(added) = added else {
            return Ok(outcome);
        };
        // Appended explicit-batch steps, warm-started from the post-removal
        // model. The workspace is sized before the timer starts.
        let mut ws = self.sized_workspace();
        let start = Instant::now();
        let mut w = outcome.model.weight().clone();
        self.addition_steps(added, &mut w, &mut ws, None)?;
        outcome.model = Model::new(outcome.model.kind(), vec![w])?;
        outcome.duration += start.elapsed();
        outcome.num_added = added.num_samples();
        Ok(outcome)
    }

    fn apply_delta(&self, method: Method, delta: &Delta) -> Result<ChainedUpdate> {
        let added = self.validate_added(delta)?;
        let mut outcome = self.removal_update(method, &delta.removed)?;
        let (removed, survivors) = split_survivors(self.num_samples(), &delta.removed)?;
        let provenance = &self.trained.provenance;

        // The sparse provenance is just per-iteration coefficient lists in
        // batch order: drop the removed members' entries. The batches are
        // materialised once and reused to build the restricted schedule.
        let mut batches = Vec::with_capacity(provenance.coefficients.len());
        let mut coefficients = Vec::with_capacity(provenance.coefficients.len());
        for (t, iteration) in provenance.coefficients.iter().enumerate() {
            let batch = provenance.schedule.batch(t);
            let positions = removed_positions(&batch, &removed);
            batches.push(batch);
            if positions.is_empty() {
                coefficients.push(iteration.clone());
            } else {
                coefficients.push(drop_positions(iteration, &positions));
            }
        }

        // `select` reports out-of-bounds survivors as an error (the CSR
        // row ops are unified on `Result`); survivors are in range by
        // construction, so this only propagates genuine corruption.
        let mut dataset = self.dataset.select(&survivors)?;
        let mut schedule = provenance.schedule.restrict_from(&removed, batches);

        if let Some(added) = added {
            // The addition steps run once — the successor's appended
            // coefficient lists and the returned model come from the same
            // trajectory, and the schedule grows by the same chunking that
            // `update_delta` stepped through (indices shifted to the
            // successor's row space).
            let k = added.num_samples();
            let mut ws = self.sized_workspace();
            let start = Instant::now();
            let mut w = outcome.model.weight().clone();
            let mut caps = Vec::with_capacity(k.div_ceil(schedule.batch_size().max(1)));
            self.addition_steps(added, &mut w, &mut ws, Some(&mut caps))?;
            coefficients.extend(caps);
            schedule = schedule.extend_with(
                appended_batches(survivors.len(), k, provenance.schedule.batch_size()),
                k,
            );
            dataset.append(added)?;
            outcome.model = Model::new(outcome.model.kind(), vec![w])?;
            outcome.duration += start.elapsed();
            outcome.num_added = k;
        }

        let successor = SparseLogisticEngine {
            dataset,
            config: self.config,
            trained: TrainedSparseLogistic {
                model: outcome.model.clone(),
                provenance: SparseLogisticProvenance {
                    schedule,
                    learning_rate: provenance.learning_rate,
                    regularization: provenance.regularization,
                    initial_model: provenance.initial_model.clone(),
                    coefficients,
                },
            },
            training_time: self.training_time,
        };
        Ok(ChainedUpdate {
            outcome,
            session: Session::SparseLogistic(successor),
        })
    }
}
