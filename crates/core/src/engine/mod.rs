//! The unified deletion-engine API: one polymorphic surface over every model
//! family and update method the PrIU reproduction implements.
//!
//! The paper's protocol is *train once capturing provenance, then answer many
//! deletion requests with interchangeable methods*. This module exposes that
//! protocol directly:
//!
//! * [`SessionBuilder`] — fits a [`Session`] from a dense or sparse dataset,
//!   inferring the model family from the labels and materialising the
//!   captures you ask for (PrIU-opt eigendecompositions, closed-form views);
//! * [`Method`] — the registry of update methods (PrIU, PrIU-opt, BaseL
//!   retraining, closed-form, INFL), with
//!   [`DeletionEngine::supported_methods`] for introspection — closed-form is
//!   discoverable as linear-only instead of simply missing;
//! * [`Delta`] — a bidirectional change set: samples to remove *and* rows to
//!   append, folded into the provenance in one pass;
//! * [`DeletionEngine`] — the trait every session implements:
//!   `update_delta(method, delta)` runs one timed online update,
//!   `run_all(removed)` produces a [`MethodReport`] keyed by method, and
//!   `apply_delta(method, delta)` *consumes* a delta, returning a new session
//!   over the surviving + appended samples with its provenance adjusted —
//!   chained deltas (the paper's Figure 4 scenario, generalised to sliding
//!   windows) as a first-class API. The deletion-only `update`/`apply`
//!   signatures remain as thin wrappers over a removal-only delta.
//!
//! The four pre-existing session types (`LinearSession`,
//! `BinaryLogisticSession`, `MultinomialSession`, `SparseLogisticSession`)
//! remain available as deprecated aliases of the engine types for one
//! release; see [`crate::session`].

mod linear;
mod logistic;
mod sparse;

pub use linear::LinearEngine;
pub use logistic::LogisticEngine;
pub use sparse::SparseLogisticEngine;

use std::time::{Duration, Instant};

use priu_data::dataset::{DenseDataset, SparseDataset, TaskKind};

use crate::config::{Compression, TrainerConfig};
use crate::error::{CoreError, Result};
use crate::interpolation::PiecewiseLinearSigmoid;
use crate::model::Model;
use crate::update::normalize_removed;

/// The registry of deletion-update methods, using the paper's naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Method {
    /// BaseL: retrain from scratch on the surviving samples, replaying the
    /// original mini-batch schedule with the removals excluded.
    Retrain,
    /// PrIU: provenance-based incremental update (Eq. 13/14, Eq. 19/20).
    Priu,
    /// PrIU-opt: the optimised update using offline eigendecompositions and
    /// early provenance termination (§5.2 / §5.4).
    PriuOpt,
    /// Closed-form: incremental maintenance of the regularised normal
    /// equations (linear regression only).
    ClosedForm,
    /// INFL: the influence-function estimate.
    Influence,
}

impl Method {
    /// Every method, in report order (BaseL first — it is the reference
    /// point the other methods are compared against).
    pub const ALL: [Method; 5] = [
        Method::Retrain,
        Method::Priu,
        Method::PriuOpt,
        Method::ClosedForm,
        Method::Influence,
    ];

    /// The paper's display name for the method.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Retrain => "BaseL",
            Method::Priu => "PrIU",
            Method::PriuOpt => "PrIU-opt",
            Method::ClosedForm => "Closed-form",
            Method::Influence => "INFL",
        }
    }

    /// Parses a display name back into a method (case-insensitive).
    pub fn parse(name: &str) -> Option<Method> {
        Method::ALL
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(name))
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Rows to append in a [`Delta`]: a dense or sparse block whose label kind
/// must match the session's task (the engines validate this before touching
/// any state).
#[derive(Debug, Clone)]
pub enum DeltaRows {
    /// Dense rows, for linear and dense logistic sessions.
    Dense(DenseDataset),
    /// Sparse CSR rows, for sparse logistic sessions.
    Sparse(SparseDataset),
}

impl DeltaRows {
    /// Number of rows in the block.
    pub fn num_rows(&self) -> usize {
        match self {
            DeltaRows::Dense(d) => d.num_samples(),
            DeltaRows::Sparse(s) => s.num_samples(),
        }
    }
}

/// A bidirectional change set: sample indices to remove plus rows to append,
/// applied as one unit.
///
/// Semantics, shared by every engine:
///
/// * `removed` holds **pre-addition** indices into the session's current
///   dataset — a delta can never remove rows it is itself adding;
/// * removals propagate through the captured provenance exactly as a
///   deletion-only update does (the no-adds path is literally the old code);
/// * added rows are appended *after* the removals as extra explicit-batch
///   GD iterations on the provenance schedule, chunked by the schedule's
///   batch size and warm-started from the post-removal model — so a
///   subsequent retrain over the extended schedule reproduces the same
///   trajectory, and deleting an added row later flows through the ordinary
///   deflation path.
#[derive(Debug, Clone, Default)]
pub struct Delta {
    /// Current-session sample indices to remove (deduplicated on use).
    pub removed: Vec<usize>,
    /// Rows to append after the removals.
    pub added: Option<DeltaRows>,
}

impl Delta {
    /// A removal-only delta — the classic deletion request.
    pub fn removal(removed: &[usize]) -> Self {
        Delta {
            removed: removed.to_vec(),
            added: None,
        }
    }

    /// An addition-only delta.
    pub fn addition(rows: DeltaRows) -> Self {
        Delta {
            removed: Vec::new(),
            added: Some(rows),
        }
    }

    /// A mixed delta: remove `removed` (current indices), then append `rows`.
    pub fn mixed(removed: &[usize], rows: DeltaRows) -> Self {
        Delta {
            removed: removed.to_vec(),
            added: Some(rows),
        }
    }

    /// Number of rows the delta appends.
    pub fn num_added(&self) -> usize {
        self.added.as_ref().map_or(0, DeltaRows::num_rows)
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.num_added() == 0
    }
}

/// The result of one timed incremental-update (or retraining) run, carrying
/// the method that produced it and the size of the (deduplicated) removal
/// set so reports never have to thread that context separately.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// The updated model.
    pub model: Model,
    /// Wall-clock time of the online update work.
    pub duration: Duration,
    /// The method that produced this outcome.
    pub method: Method,
    /// Number of distinct samples removed.
    pub num_removed: usize,
    /// Number of rows appended (0 for deletion-only updates).
    pub num_added: usize,
}

/// The outcomes of running every supported method on one removal set,
/// keyed by [`Method`].
#[derive(Debug, Clone)]
pub struct MethodReport {
    outcomes: Vec<UpdateOutcome>,
}

impl MethodReport {
    /// The outcome of a given method, if it was run.
    pub fn get(&self, method: Method) -> Option<&UpdateOutcome> {
        self.outcomes.iter().find(|o| o.method == method)
    }

    /// All outcomes in registry order.
    pub fn outcomes(&self) -> &[UpdateOutcome] {
        &self.outcomes
    }

    /// Number of methods that ran.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether no method ran.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }
}

/// A point-in-time introspection snapshot of a session: the shape and
/// capture inventory a cost-model scheduler prices deletion methods from —
/// sample/feature counts for the retrain-vs-incremental trade-off,
/// provenance bytes for admission and eviction decisions, the offline cost
/// as the ceiling any online update must beat, and the method set that
/// survived chained applies.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureSnapshot {
    /// The learning task.
    pub task: TaskKind,
    /// Number of training samples currently held (`n`).
    pub num_samples: usize,
    /// Number of features (`m`).
    pub num_features: usize,
    /// Bytes of captured provenance (Q8 / Table 3 accounting).
    pub provenance_bytes: usize,
    /// Offline-phase wall-clock seconds (training + capture) — the upper
    /// bound a scheduler compares online-update estimates against.
    pub training_seconds: f64,
    /// The methods this session can run, in registry order.
    pub methods: Vec<Method>,
}

/// The result of consuming a deletion with [`DeletionEngine::apply`]: the
/// timed outcome plus the successor session over the surviving samples.
#[derive(Debug, Clone)]
pub struct ChainedUpdate {
    /// The timed update outcome whose model became the successor's model.
    pub outcome: UpdateOutcome,
    /// The successor session: dataset shrunk to the survivors, provenance
    /// shrunk by deletion propagation, model set to `outcome.model`.
    pub session: Session,
}

/// The uniform API over every session kind: train once (done by
/// [`SessionBuilder::fit`]), then answer deletion requests with any
/// supported [`Method`].
pub trait DeletionEngine {
    /// The learning task this session was fitted for.
    fn task(&self) -> TaskKind;

    /// Number of training samples the session currently holds.
    fn num_samples(&self) -> usize;

    /// The session's current model: `M_init` for a freshly fitted session,
    /// the applied outcome's model after a chained deletion.
    fn model(&self) -> &Model;

    /// Wall-clock time of the offline phase (training + provenance capture).
    fn training_time(&self) -> Duration;

    /// Bytes of captured provenance (Q8 / Table 3 accounting).
    fn provenance_bytes(&self) -> usize;

    /// The methods this session can run, in registry order. Reflects both
    /// the task (closed-form exists only for linear regression) and the
    /// materialised captures (PrIU-opt needs its offline eigendecomposition).
    fn supported_methods(&self) -> Vec<Method>;

    /// Runs one timed online update for a bidirectional [`Delta`]: the
    /// removal set is folded in with the given method, then any appended
    /// rows are consumed as explicit-batch GD iterations warm-started from
    /// the post-removal model (exact for every family; for linear
    /// closed-form the normal-equation views fold both directions and are
    /// solved once). The model reflects the whole delta; the session itself
    /// is unchanged.
    ///
    /// # Errors
    /// [`CoreError::UnsupportedMethod`] if [`DeletionEngine::supports`] is
    /// false for the method; [`CoreError::LabelMismatch`] /
    /// [`CoreError::InvalidConfig`] when the added rows don't fit the
    /// session; otherwise whatever the underlying update reports (invalid
    /// removal indices, factorisation failures, ...).
    fn update_delta(&self, method: Method, delta: &Delta) -> Result<UpdateOutcome>;

    /// Consumes a delta: runs the [`DeletionEngine::update_delta`] work and
    /// folds the outcome into a successor session whose dataset and
    /// provenance cover the surviving samples (re-indexed by survivor rank)
    /// plus the appended rows (indexed after the survivors). Removal indices
    /// passed to the successor are relative to that layout.
    ///
    /// Chaining `apply_delta` calls composes: sequential applies are
    /// equivalent to one apply of the union delta — the repeated-deletion
    /// scenario of the paper's Figure 4, generalised to sliding windows.
    ///
    /// Captures that cannot be adjusted exactly are dropped rather than left
    /// stale (currently only the logistic PrIU-opt capture, whose frozen
    /// linearisation point is no longer meaningful); `supported_methods` on
    /// the successor reflects what survived.
    ///
    /// # Errors
    /// Everything `update_delta` reports, plus
    /// [`CoreError::InvalidRemoval`] when the removal would leave no
    /// pre-existing training samples.
    fn apply_delta(&self, method: Method, delta: &Delta) -> Result<ChainedUpdate>;

    /// Runs one timed online update for a deletion-only request — a thin
    /// wrapper over [`DeletionEngine::update_delta`] with
    /// [`Delta::removal`], preserved as the classic PrIU surface.
    ///
    /// # Errors
    /// See [`DeletionEngine::update_delta`].
    fn update(&self, method: Method, removed: &[usize]) -> Result<UpdateOutcome> {
        self.update_delta(method, &Delta::removal(removed))
    }

    /// Consumes a deletion-only request — a thin wrapper over
    /// [`DeletionEngine::apply_delta`] with [`Delta::removal`].
    ///
    /// # Errors
    /// See [`DeletionEngine::apply_delta`].
    fn apply(&self, method: Method, removed: &[usize]) -> Result<ChainedUpdate> {
        self.apply_delta(method, &Delta::removal(removed))
    }

    /// Whether this session can run the given method.
    fn supports(&self, method: Method) -> bool {
        self.supported_methods().contains(&method)
    }

    /// Number of features `m` of the session's model.
    fn num_features(&self) -> usize {
        self.model().num_features()
    }

    /// A point-in-time snapshot of the session's shape and captures — the
    /// inputs a cost model needs to price PrIU vs PrIU-opt vs closed-form
    /// vs full retrain for a pending deletion batch.
    fn capture_snapshot(&self) -> CaptureSnapshot {
        CaptureSnapshot {
            task: self.task(),
            num_samples: self.num_samples(),
            num_features: self.num_features(),
            provenance_bytes: self.provenance_bytes(),
            training_seconds: self.training_time().as_secs_f64(),
            methods: self.supported_methods(),
        }
    }

    /// Runs every supported method on the removal set and returns the
    /// outcomes keyed by method (BaseL first).
    ///
    /// # Errors
    /// Propagates the first failing update.
    fn run_all(&self, removed: &[usize]) -> Result<MethodReport> {
        let mut outcomes = Vec::new();
        for method in self.supported_methods() {
            outcomes.push(self.update(method, removed)?);
        }
        Ok(MethodReport { outcomes })
    }
}

/// Times the online phase of one update and assembles the outcome.
pub(crate) fn timed_update(
    method: Method,
    num_removed: usize,
    num_added: usize,
    f: impl FnOnce() -> Result<Model>,
) -> Result<UpdateOutcome> {
    let start = Instant::now();
    let model = f()?;
    Ok(UpdateOutcome {
        model,
        duration: start.elapsed(),
        method,
        num_removed,
        num_added,
    })
}

/// Chunks `num_added` appended rows — occupying successor indices
/// `num_survivors..num_survivors + num_added` — into explicit batches of at
/// most `batch_size`, in insertion order. Both `update_delta` (stepping over
/// the delta's rows directly) and `apply_delta` (extending the schedule with
/// these batches) derive their chunking from this one definition, which is
/// what makes the two bitwise-agree on the post-addition model.
pub(crate) fn appended_batches(
    num_survivors: usize,
    num_added: usize,
    batch_size: usize,
) -> Vec<Vec<usize>> {
    let batch_size = batch_size.max(1);
    let mut batches = Vec::with_capacity(num_added.div_ceil(batch_size));
    let mut start = 0;
    while start < num_added {
        let end = (start + batch_size).min(num_added);
        batches.push((num_survivors + start..num_survivors + end).collect());
        start = end;
    }
    batches
}

/// Validates a removal set for `apply`: normalised, and leaving at least one
/// survivor. Returns the sorted-deduplicated set plus the survivor indices.
pub(crate) fn split_survivors(
    num_samples: usize,
    removed: &[usize],
) -> Result<(Vec<usize>, Vec<usize>)> {
    let removed = normalize_removed(num_samples, removed)?;
    if removed.len() >= num_samples {
        return Err(CoreError::InvalidRemoval {
            index: num_samples,
            num_samples,
        });
    }
    let mut survivors = Vec::with_capacity(num_samples - removed.len());
    let mut r = 0usize;
    for i in 0..num_samples {
        if r < removed.len() && removed[r] == i {
            r += 1;
        } else {
            survivors.push(i);
        }
    }
    Ok((removed, survivors))
}

/// A fitted session of any model family, programmable through
/// [`DeletionEngine`]. Produced by [`SessionBuilder::fit`] and by
/// [`DeletionEngine::apply`].
#[derive(Debug, Clone)]
pub enum Session {
    /// Linear regression.
    Linear(LinearEngine),
    /// Binary or multinomial logistic regression (dense).
    Logistic(LogisticEngine),
    /// Sparse binary logistic regression.
    SparseLogistic(SparseLogisticEngine),
}

impl Session {
    /// The dense training dataset, if this is a dense session.
    pub fn dense_dataset(&self) -> Option<&DenseDataset> {
        match self {
            Session::Linear(e) => Some(e.dataset()),
            Session::Logistic(e) => Some(e.dataset()),
            Session::SparseLogistic(_) => None,
        }
    }

    /// The sparse training dataset, if this is a sparse session.
    pub fn sparse_dataset(&self) -> Option<&SparseDataset> {
        match self {
            Session::SparseLogistic(e) => Some(e.dataset()),
            _ => None,
        }
    }

    /// Serializes the session bit-exactly for durability snapshots: the
    /// dataset, trainer configuration, model, captured provenance and any
    /// materialised views, every `f64` as its exact bit pattern. The inverse
    /// is [`Session::from_snapshot_bytes`]; round-tripping yields a session
    /// whose `apply_delta` chain is bitwise identical to the original's.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = crate::snapshot::SnapshotWriter::new();
        match self {
            Session::Linear(e) => {
                w.u8(SESSION_LINEAR);
                e.encode_snapshot(&mut w);
            }
            Session::Logistic(e) => {
                w.u8(SESSION_LOGISTIC);
                e.encode_snapshot(&mut w);
            }
            Session::SparseLogistic(e) => {
                w.u8(SESSION_SPARSE_LOGISTIC);
                e.encode_snapshot(&mut w);
            }
        }
        w.into_bytes()
    }

    /// Rebuilds a session from [`Session::to_snapshot_bytes`] output.
    ///
    /// # Errors
    /// Returns [`CoreError::Snapshot`](crate::error::CoreError::Snapshot) on
    /// truncated, corrupt or trailing-byte input — never panics, so the
    /// recovery path can skip a bad snapshot and fall back to an older one.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Session> {
        let mut r = crate::snapshot::SnapshotReader::new(bytes);
        let session = match r.u8("session family tag")? {
            SESSION_LINEAR => Session::Linear(LinearEngine::decode_snapshot(&mut r)?),
            SESSION_LOGISTIC => Session::Logistic(LogisticEngine::decode_snapshot(&mut r)?),
            SESSION_SPARSE_LOGISTIC => {
                Session::SparseLogistic(SparseLogisticEngine::decode_snapshot(&mut r)?)
            }
            tag => {
                return Err(crate::error::CoreError::Snapshot(format!(
                    "unknown session family tag {tag}"
                )))
            }
        };
        r.finish()?;
        Ok(session)
    }
}

const SESSION_LINEAR: u8 = 1;
const SESSION_LOGISTIC: u8 = 2;
const SESSION_SPARSE_LOGISTIC: u8 = 3;

macro_rules! delegate {
    ($self:ident, $e:ident => $body:expr) => {
        match $self {
            Session::Linear($e) => $body,
            Session::Logistic($e) => $body,
            Session::SparseLogistic($e) => $body,
        }
    };
}

impl DeletionEngine for Session {
    fn task(&self) -> TaskKind {
        delegate!(self, e => e.task())
    }

    fn num_samples(&self) -> usize {
        delegate!(self, e => e.num_samples())
    }

    fn model(&self) -> &Model {
        delegate!(self, e => e.model())
    }

    fn training_time(&self) -> Duration {
        delegate!(self, e => e.training_time())
    }

    fn provenance_bytes(&self) -> usize {
        delegate!(self, e => e.provenance_bytes())
    }

    fn supported_methods(&self) -> Vec<Method> {
        delegate!(self, e => e.supported_methods())
    }

    fn update_delta(&self, method: Method, delta: &Delta) -> Result<UpdateOutcome> {
        delegate!(self, e => e.update_delta(method, delta))
    }

    fn apply_delta(&self, method: Method, delta: &Delta) -> Result<ChainedUpdate> {
        delegate!(self, e => e.apply_delta(method, delta))
    }
}

enum BuilderData {
    Dense(DenseDataset),
    Sparse(SparseDataset),
}

/// Builds a [`Session`]: dataset + task kind (inferred from the labels) +
/// trainer configuration + which captures to materialise.
///
/// ```
/// use priu_core::engine::{DeletionEngine, Method, SessionBuilder};
/// use priu_core::TrainerConfig;
/// use priu_data::catalog::Hyperparameters;
/// use priu_data::synthetic::regression::{generate_regression, RegressionConfig};
///
/// let dataset = generate_regression(&RegressionConfig {
///     num_samples: 200,
///     num_features: 4,
///     seed: 1,
///     ..Default::default()
/// });
/// let hyper = Hyperparameters {
///     batch_size: 50,
///     num_iterations: 100,
///     learning_rate: 0.05,
///     regularization: 0.01,
/// };
/// let session = SessionBuilder::dense(dataset, TrainerConfig::from_hyper(hyper))
///     .seed(7)
///     .fit()
///     .unwrap();
/// assert!(session.supports(Method::ClosedForm)); // linear-only, discoverable
/// let outcome = session.update(Method::Priu, &[3, 1, 4]).unwrap();
/// assert_eq!(outcome.num_removed, 3);
/// ```
pub struct SessionBuilder {
    data: BuilderData,
    config: TrainerConfig,
    closed_form: bool,
}

impl SessionBuilder {
    /// Starts a builder over a dense dataset; the model family follows the
    /// labels (continuous → linear, binary → binary logistic, multiclass →
    /// multinomial logistic).
    pub fn dense(dataset: DenseDataset, config: TrainerConfig) -> Self {
        Self {
            data: BuilderData::Dense(dataset),
            config,
            closed_form: true,
        }
    }

    /// Starts a builder over a sparse dataset (binary logistic only, §5.3).
    pub fn sparse(dataset: SparseDataset, config: TrainerConfig) -> Self {
        Self {
            data: BuilderData::Sparse(dataset),
            config,
            closed_form: false,
        }
    }

    /// The task kind the fitted session will have.
    pub fn task(&self) -> TaskKind {
        match &self.data {
            BuilderData::Dense(d) => d.task(),
            BuilderData::Sparse(s) => s.task(),
        }
    }

    /// Sets the mini-batch schedule seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config = self.config.with_seed(seed);
        self
    }

    /// Sets the Gram-cache compression strategy (§5.1 / §5.3).
    #[must_use]
    pub fn compression(mut self, compression: Compression) -> Self {
        self.config = self.config.with_compression(compression);
        self
    }

    /// Enables or disables the PrIU-opt capture (offline
    /// eigendecompositions; skip for very large feature spaces).
    #[must_use]
    pub fn opt_capture(mut self, capture: bool) -> Self {
        self.config = self.config.with_opt_capture(capture);
        self
    }

    /// Sets the piecewise-linear interpolation grid of the logistic
    /// non-linearity.
    #[must_use]
    pub fn interpolation(mut self, interpolation: PiecewiseLinearSigmoid) -> Self {
        self.config = self.config.with_interpolation(interpolation);
        self
    }

    /// Sets the PrIU-opt early-termination fraction `ts / τ` (§5.4).
    #[must_use]
    pub fn opt_capture_fraction(mut self, fraction: f64) -> Self {
        self.config = self.config.with_opt_capture_fraction(fraction);
        self
    }

    /// Enables or disables the closed-form baseline's materialised views
    /// (`XᵀX` / `XᵀY`; linear regression only, on by default there).
    #[must_use]
    pub fn closed_form_capture(mut self, capture: bool) -> Self {
        self.closed_form = capture;
        self
    }

    /// Trains the initial model and captures provenance (the offline phase).
    ///
    /// # Errors
    /// Training failures (label mismatch, divergence) are reported as usual;
    /// sparse datasets with non-binary labels are a label mismatch.
    pub fn fit(self) -> Result<Session> {
        match self.data {
            BuilderData::Dense(dataset) => match dataset.task() {
                TaskKind::Regression => Ok(Session::Linear(LinearEngine::fit_with(
                    dataset,
                    self.config,
                    self.closed_form,
                )?)),
                TaskKind::BinaryClassification | TaskKind::MulticlassClassification { .. } => Ok(
                    Session::Logistic(LogisticEngine::fit(dataset, self.config)?),
                ),
            },
            BuilderData::Sparse(dataset) => match dataset.task() {
                TaskKind::BinaryClassification => Ok(Session::SparseLogistic(
                    SparseLogisticEngine::fit(dataset, self.config)?,
                )),
                _ => Err(CoreError::LabelMismatch {
                    expected: "binary (+1/-1) labels for sparse logistic regression",
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::compare_models;
    use priu_data::catalog::Hyperparameters;
    use priu_data::dirty::random_subsets;
    use priu_data::synthetic::classification::{
        generate_binary_classification, generate_multiclass_classification, ClassificationConfig,
    };
    use priu_data::synthetic::regression::{generate_regression, RegressionConfig};
    use priu_data::synthetic::sparse_text::{generate_sparse_binary, SparseConfig};

    fn hyper() -> Hyperparameters {
        Hyperparameters {
            batch_size: 50,
            num_iterations: 150,
            learning_rate: 0.05,
            regularization: 0.02,
        }
    }

    fn linear_session() -> Session {
        let data = generate_regression(&RegressionConfig {
            num_samples: 300,
            num_features: 6,
            seed: 1,
            ..Default::default()
        });
        SessionBuilder::dense(data, TrainerConfig::from_hyper(hyper()))
            .fit()
            .unwrap()
    }

    fn binary_session() -> Session {
        let data = generate_binary_classification(&ClassificationConfig {
            num_samples: 300,
            num_features: 6,
            separation: 3.0,
            seed: 2,
            ..Default::default()
        });
        let mut h = hyper();
        h.learning_rate = 0.3;
        SessionBuilder::dense(data, TrainerConfig::from_hyper(h))
            .fit()
            .unwrap()
    }

    #[test]
    fn method_registry_names_round_trip() {
        for method in Method::ALL {
            assert_eq!(Method::parse(method.name()), Some(method));
            assert_eq!(method.to_string(), method.name());
        }
        assert_eq!(Method::parse("priu"), Some(Method::Priu));
        assert_eq!(Method::parse("basel"), Some(Method::Retrain));
        assert_eq!(Method::parse("nope"), None);
    }

    #[test]
    fn linear_sessions_support_every_method() {
        let session = linear_session();
        assert_eq!(session.supported_methods(), Method::ALL.to_vec());
        assert_eq!(session.task(), TaskKind::Regression);
        assert!(session.dense_dataset().is_some());
        assert!(session.sparse_dataset().is_none());
    }

    #[test]
    fn linear_capture_flags_shrink_the_method_set() {
        let data = generate_regression(&RegressionConfig {
            num_samples: 200,
            num_features: 5,
            seed: 3,
            ..Default::default()
        });
        let session = SessionBuilder::dense(data, TrainerConfig::from_hyper(hyper()))
            .opt_capture(false)
            .closed_form_capture(false)
            .fit()
            .unwrap();
        assert!(!session.supports(Method::PriuOpt));
        assert!(!session.supports(Method::ClosedForm));
        assert!(session.supports(Method::Priu));
        assert!(matches!(
            session.update(Method::ClosedForm, &[0]),
            Err(CoreError::UnsupportedMethod { .. })
        ));
    }

    #[test]
    fn logistic_sessions_exclude_closed_form() {
        let session = binary_session();
        let methods = session.supported_methods();
        assert!(!methods.contains(&Method::ClosedForm));
        assert!(methods.contains(&Method::PriuOpt));
        assert!(matches!(
            session.update(Method::ClosedForm, &[0]),
            Err(CoreError::UnsupportedMethod { .. })
        ));
    }

    #[test]
    fn sparse_sessions_support_priu_and_retraining_only() {
        let data = generate_sparse_binary(&SparseConfig {
            num_samples: 200,
            num_features: 150,
            nnz_per_row: 10,
            informative_fraction: 0.2,
            seed: 4,
        });
        let mut h = hyper();
        h.learning_rate = 0.3;
        let session = SessionBuilder::sparse(data, TrainerConfig::from_hyper(h))
            .fit()
            .unwrap();
        assert_eq!(
            session.supported_methods(),
            vec![Method::Retrain, Method::Priu]
        );
        assert!(session.sparse_dataset().is_some());
        assert!(session.dense_dataset().is_none());
    }

    #[test]
    fn sparse_builder_rejects_non_binary_labels() {
        use priu_data::dataset::{Labels, SparseDataset};
        use priu_linalg::{CsrMatrix, Matrix, Vector};
        let dense = Matrix::from_fn(4, 3, |i, j| (i + j) as f64);
        let data = SparseDataset::new(
            CsrMatrix::from_dense(&dense),
            Labels::Continuous(Vector::zeros(4)),
        );
        assert!(matches!(
            SessionBuilder::sparse(data, TrainerConfig::from_hyper(hyper())).fit(),
            Err(CoreError::LabelMismatch { .. })
        ));
    }

    #[test]
    fn run_all_reports_every_supported_method() {
        let session = linear_session();
        let removed = random_subsets(300, 0.05, 1, 1)[0].clone();
        let report = session.run_all(&removed).unwrap();
        assert_eq!(report.len(), Method::ALL.len());
        assert!(!report.is_empty());
        for method in Method::ALL {
            let outcome = report.get(method).unwrap();
            assert_eq!(outcome.method, method);
            assert_eq!(outcome.num_removed, removed.len());
            assert!(outcome.model.is_finite());
            assert!(outcome.duration > Duration::ZERO);
        }
        let basel = report.get(Method::Retrain).unwrap();
        let priu = report.get(Method::Priu).unwrap();
        let cmp = compare_models(&basel.model, &priu.model).unwrap();
        assert!(cmp.cosine_similarity > 0.999);
    }

    #[test]
    fn capture_snapshot_reflects_shape_and_surviving_methods() {
        let session = linear_session();
        let snap = session.capture_snapshot();
        assert_eq!(snap.task, TaskKind::Regression);
        assert_eq!(snap.num_samples, 300);
        assert_eq!(snap.num_features, 6);
        assert_eq!(snap.num_features, session.num_features());
        assert_eq!(snap.provenance_bytes, session.provenance_bytes());
        assert!(snap.training_seconds > 0.0);
        assert_eq!(snap.methods, Method::ALL.to_vec());

        // A chained logistic session drops its opt capture; the snapshot
        // reports the surviving inventory, not the original one.
        let logistic = binary_session();
        let chained = logistic.apply(Method::Priu, &[1, 2, 3]).unwrap();
        let snap = chained.session.capture_snapshot();
        assert_eq!(snap.num_samples, 297);
        assert!(!snap.methods.contains(&Method::PriuOpt));
    }

    #[test]
    fn outcome_counts_distinct_removals() {
        let session = linear_session();
        let outcome = session.update(Method::Priu, &[7, 3, 7, 3, 11]).unwrap();
        assert_eq!(outcome.num_removed, 3);
        assert_eq!(outcome.method, Method::Priu);
    }

    #[test]
    fn chained_applies_compose_like_one_deletion_linear() {
        let session = linear_session();
        let first = random_subsets(300, 0.05, 1, 5)[0].clone();
        let chained = session.apply(Method::Priu, &first).unwrap();
        assert_eq!(chained.session.num_samples(), 300 - first.len());

        // Second removal, expressed in survivor indices.
        let second_survivor: Vec<usize> = vec![0, 17, 91, 200];
        let second = chained
            .session
            .update(Method::Priu, &second_survivor)
            .unwrap();

        // Reference: one PrIU update on the union, in original indices.
        let survivors: Vec<usize> = (0..300).filter(|i| !first.contains(i)).collect();
        let mut union = first.clone();
        union.extend(second_survivor.iter().map(|&i| survivors[i]));
        let reference = session.update(Method::Priu, &union).unwrap();

        let cmp = compare_models(&reference.model, &second.model).unwrap();
        assert!(
            cmp.l2_distance < 1e-7,
            "chained linear PrIU should be exact, distance {}",
            cmp.l2_distance
        );

        // And both agree with retraining on the union.
        let retrained = session.update(Method::Retrain, &union).unwrap();
        let cmp = compare_models(&retrained.model, &second.model).unwrap();
        assert!(
            cmp.cosine_similarity > 0.99,
            "similarity {}",
            cmp.cosine_similarity
        );
    }

    #[test]
    fn chained_applies_compose_like_one_deletion_logistic() {
        let session = binary_session();
        let first = random_subsets(300, 0.04, 1, 6)[0].clone();
        let chained = session.apply(Method::Priu, &first).unwrap();

        // The logistic opt capture is dropped on apply; plain PrIU survives.
        assert!(!chained.session.supports(Method::PriuOpt));
        assert!(chained.session.supports(Method::Priu));

        let second_survivor = random_subsets(chained.session.num_samples(), 0.04, 1, 7)[0].clone();
        let second = chained
            .session
            .update(Method::Priu, &second_survivor)
            .unwrap();

        let survivors: Vec<usize> = (0..300).filter(|i| !first.contains(i)).collect();
        let mut union = first.clone();
        union.extend(second_survivor.iter().map(|&i| survivors[i]));
        let retrained = session.update(Method::Retrain, &union).unwrap();

        let cmp = compare_models(&retrained.model, &second.model).unwrap();
        assert!(
            cmp.cosine_similarity > 0.99,
            "two chained applies vs one retrain on the union: similarity {}",
            cmp.cosine_similarity
        );
    }

    #[test]
    fn chained_apply_supports_retraining_and_closed_form_on_the_successor() {
        let session = linear_session();
        let first = random_subsets(300, 0.05, 1, 8)[0].clone();
        let chained = session.apply(Method::PriuOpt, &first).unwrap();
        // The linear captures shrink exactly, so every method survives.
        assert_eq!(chained.session.supported_methods(), Method::ALL.to_vec());

        let second: Vec<usize> = vec![1, 2, 3];
        let retrain_chained = chained.session.update(Method::Retrain, &second).unwrap();
        let closed_chained = chained.session.update(Method::ClosedForm, &second).unwrap();
        assert!(retrain_chained.model.is_finite());
        assert!(closed_chained.model.is_finite());

        // Closed-form on the successor equals closed-form on the union.
        let survivors: Vec<usize> = (0..300).filter(|i| !first.contains(i)).collect();
        let mut union = first.clone();
        union.extend(second.iter().map(|&i| survivors[i]));
        let reference = session.update(Method::ClosedForm, &union).unwrap();
        let cmp = compare_models(&reference.model, &closed_chained.model).unwrap();
        assert!(cmp.l2_distance < 1e-6, "distance {}", cmp.l2_distance);
    }

    #[test]
    fn chained_apply_on_sparse_sessions() {
        let data = generate_sparse_binary(&SparseConfig {
            num_samples: 300,
            num_features: 200,
            nnz_per_row: 15,
            informative_fraction: 0.2,
            seed: 9,
        });
        let mut h = hyper();
        h.learning_rate = 0.3;
        let session = SessionBuilder::sparse(data, TrainerConfig::from_hyper(h))
            .fit()
            .unwrap();
        let first = random_subsets(300, 0.03, 1, 10)[0].clone();
        let chained = session.apply(Method::Priu, &first).unwrap();
        assert_eq!(chained.session.num_samples(), 300 - first.len());

        let second = random_subsets(chained.session.num_samples(), 0.03, 1, 11)[0].clone();
        let updated = chained.session.update(Method::Priu, &second).unwrap();

        let survivors: Vec<usize> = (0..300).filter(|i| !first.contains(i)).collect();
        let mut union = first.clone();
        union.extend(second.iter().map(|&i| survivors[i]));
        let retrained = session.update(Method::Retrain, &union).unwrap();
        let cmp = compare_models(&retrained.model, &updated.model).unwrap();
        assert!(
            cmp.cosine_similarity > 0.99,
            "similarity {}",
            cmp.cosine_similarity
        );
    }

    #[test]
    fn apply_rejects_removing_everything() {
        let session = linear_session();
        let everything: Vec<usize> = (0..300).collect();
        assert!(matches!(
            session.apply(Method::Priu, &everything),
            Err(CoreError::InvalidRemoval { .. })
        ));
    }

    fn linear_added_rows(num_rows: usize, seed: u64) -> DenseDataset {
        generate_regression(&RegressionConfig {
            num_samples: num_rows,
            num_features: 6,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn appended_batches_chunk_by_schedule_batch_size() {
        assert_eq!(
            appended_batches(10, 5, 2),
            vec![vec![10, 11], vec![12, 13], vec![14]]
        );
        assert_eq!(appended_batches(0, 3, 50), vec![vec![0, 1, 2]]);
        assert!(appended_batches(10, 0, 2).is_empty());
        // A degenerate batch size still makes progress.
        assert_eq!(appended_batches(1, 2, 0), vec![vec![1], vec![2]]);
    }

    #[test]
    fn empty_delta_is_identity_shaped() {
        let session = linear_session();
        let delta = Delta::default();
        assert!(delta.is_empty());
        let outcome = session.update_delta(Method::Priu, &delta).unwrap();
        assert_eq!(outcome.num_removed, 0);
        assert_eq!(outcome.num_added, 0);
        assert!(outcome.model.is_finite());
    }

    #[test]
    fn update_delta_and_apply_delta_agree_bitwise_on_the_model() {
        // The two paths step over the same added rows with the same chunking
        // from the same warm start, so their post-addition models must be
        // bitwise identical — for every family and method that supports it.
        let delta = Delta::mixed(&[3, 17, 40], DeltaRows::Dense(linear_added_rows(23, 21)));
        let session = linear_session();
        for method in [Method::Priu, Method::PriuOpt, Method::ClosedForm] {
            let updated = session.update_delta(method, &delta).unwrap();
            let chained = session.apply_delta(method, &delta).unwrap();
            assert_eq!(
                updated.model, chained.outcome.model,
                "{method}: update_delta and apply_delta disagree"
            );
            assert_eq!(chained.session.model(), &chained.outcome.model);
            assert_eq!(updated.num_added, 23);
            assert_eq!(chained.session.num_samples(), 300 - 3 + 23);
        }

        let logistic = binary_session();
        let added = generate_binary_classification(&ClassificationConfig {
            num_samples: 23,
            num_features: 6,
            separation: 3.0,
            seed: 22,
            ..Default::default()
        });
        let delta = Delta::mixed(&[3, 17, 40], DeltaRows::Dense(added));
        let updated = logistic.update_delta(Method::Priu, &delta).unwrap();
        let chained = logistic.apply_delta(Method::Priu, &delta).unwrap();
        assert_eq!(updated.model, chained.outcome.model);

        let sparse = {
            let data = generate_sparse_binary(&SparseConfig {
                num_samples: 300,
                num_features: 200,
                nnz_per_row: 15,
                informative_fraction: 0.2,
                seed: 9,
            });
            let mut h = hyper();
            h.learning_rate = 0.3;
            SessionBuilder::sparse(data, TrainerConfig::from_hyper(h))
                .fit()
                .unwrap()
        };
        let added = generate_sparse_binary(&SparseConfig {
            num_samples: 23,
            num_features: 200,
            nnz_per_row: 15,
            informative_fraction: 0.2,
            seed: 23,
        });
        let delta = Delta::mixed(&[3, 17, 40], DeltaRows::Sparse(added));
        let updated = sparse.update_delta(Method::Priu, &delta).unwrap();
        let chained = sparse.apply_delta(Method::Priu, &delta).unwrap();
        assert_eq!(updated.model, chained.outcome.model);
    }

    #[test]
    fn successor_retrain_reproduces_the_delta_model() {
        // The whole-delta contract: retraining the successor over its
        // extended schedule (survivor batches + appended explicit batches)
        // replays the same trajectory the delta engine stepped through.
        let session = linear_session();
        let delta = Delta::mixed(&[5, 6, 7, 120], DeltaRows::Dense(linear_added_rows(37, 31)));
        let chained = session.apply_delta(Method::Priu, &delta).unwrap();
        assert_eq!(chained.session.num_samples(), 300 - 4 + 37);
        let retrained = chained.session.update(Method::Retrain, &[]).unwrap();
        let cmp = compare_models(&retrained.model, chained.session.model()).unwrap();
        assert!(
            cmp.l2_distance < 1e-8,
            "successor retrain should replay the delta trajectory, distance {}",
            cmp.l2_distance
        );

        let logistic = binary_session();
        let added = generate_binary_classification(&ClassificationConfig {
            num_samples: 37,
            num_features: 6,
            separation: 3.0,
            seed: 32,
            ..Default::default()
        });
        let chained = logistic
            .apply_delta(
                Method::Priu,
                &Delta::mixed(&[5, 6, 7], DeltaRows::Dense(added)),
            )
            .unwrap();
        let retrained = chained.session.update(Method::Retrain, &[]).unwrap();
        let cmp = compare_models(&retrained.model, chained.session.model()).unwrap();
        assert!(
            cmp.cosine_similarity > 0.999,
            "similarity {}",
            cmp.cosine_similarity
        );
    }

    #[test]
    fn closed_form_mixed_delta_matches_rebuilding() {
        // Closed-form folds both delta directions into the normal-equation
        // views with one solve; the reference is a fresh closed-form session
        // over the survivors + added rows.
        let session = linear_session();
        let added = linear_added_rows(29, 41);
        let removed = vec![2, 9, 250, 251];
        let delta = Delta::mixed(&removed, DeltaRows::Dense(added.clone()));
        let outcome = session.update_delta(Method::ClosedForm, &delta).unwrap();

        let base = session.dense_dataset().unwrap();
        let survivors: Vec<usize> = (0..300).filter(|i| !removed.contains(i)).collect();
        let mut rebuilt = base.select(&survivors);
        rebuilt.append(&added).unwrap();
        let fresh = SessionBuilder::dense(rebuilt, TrainerConfig::from_hyper(hyper()))
            .fit()
            .unwrap();
        let reference = fresh.update(Method::ClosedForm, &[]).unwrap();
        let cmp = compare_models(&reference.model, &outcome.model).unwrap();
        assert!(cmp.l2_distance < 1e-7, "distance {}", cmp.l2_distance);
    }

    #[test]
    fn added_rows_can_be_deleted_through_the_ordinary_path() {
        // Rows appended by one delta flow through deflation like any other
        // sample in the next delta.
        let session = linear_session();
        let chained = session
            .apply_delta(
                Method::Priu,
                &Delta::addition(DeltaRows::Dense(linear_added_rows(20, 51))),
            )
            .unwrap();
        assert_eq!(chained.session.num_samples(), 320);
        // Delete a mix of original and freshly appended rows.
        let second = chained
            .session
            .apply(Method::Priu, &[10, 305, 319])
            .unwrap();
        assert_eq!(second.session.num_samples(), 317);
        let retrained = second.session.update(Method::Retrain, &[]).unwrap();
        let cmp = compare_models(&retrained.model, second.session.model()).unwrap();
        assert!(cmp.l2_distance < 1e-7, "distance {}", cmp.l2_distance);
    }

    #[test]
    fn delta_validation_rejects_mismatched_rows() {
        use priu_data::dataset::{Labels, SparseDataset};
        use priu_linalg::{CsrMatrix, Matrix, Vector};

        let session = linear_session();
        // Wrong width.
        let narrow = generate_regression(&RegressionConfig {
            num_samples: 5,
            num_features: 3,
            seed: 61,
            ..Default::default()
        });
        assert!(matches!(
            session.update_delta(Method::Priu, &Delta::addition(DeltaRows::Dense(narrow))),
            Err(CoreError::InvalidConfig(_))
        ));
        // Wrong label kind for the task.
        let labelled = generate_binary_classification(&ClassificationConfig {
            num_samples: 5,
            num_features: 6,
            separation: 3.0,
            seed: 62,
            ..Default::default()
        });
        assert!(matches!(
            session.update_delta(Method::Priu, &Delta::addition(DeltaRows::Dense(labelled))),
            Err(CoreError::LabelMismatch { .. })
        ));
        // Sparse rows into a dense session.
        let sparse_rows = SparseDataset::new(
            CsrMatrix::from_dense(&Matrix::from_fn(2, 6, |i, j| (i + j) as f64)),
            Labels::Binary(Vector::from_vec(vec![1.0, -1.0])),
        );
        assert!(matches!(
            session.update_delta(
                Method::Priu,
                &Delta::addition(DeltaRows::Sparse(sparse_rows))
            ),
            Err(CoreError::InvalidConfig(_))
        ));

        // Dense rows into a sparse session.
        let sparse_session = {
            let data = generate_sparse_binary(&SparseConfig {
                num_samples: 100,
                num_features: 80,
                nnz_per_row: 8,
                informative_fraction: 0.2,
                seed: 63,
            });
            let mut h = hyper();
            h.learning_rate = 0.3;
            SessionBuilder::sparse(data, TrainerConfig::from_hyper(h))
                .fit()
                .unwrap()
        };
        let dense_rows = generate_regression(&RegressionConfig {
            num_samples: 2,
            num_features: 80,
            seed: 64,
            ..Default::default()
        });
        assert!(matches!(
            sparse_session
                .update_delta(Method::Priu, &Delta::addition(DeltaRows::Dense(dense_rows))),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn multinomial_sessions_fit_through_the_builder() {
        let data = generate_multiclass_classification(&ClassificationConfig {
            num_samples: 400,
            num_features: 8,
            num_classes: 3,
            separation: 3.0,
            seed: 12,
            ..Default::default()
        });
        let mut h = hyper();
        h.learning_rate = 0.3;
        let session = SessionBuilder::dense(data, TrainerConfig::from_hyper(h))
            .fit()
            .unwrap();
        assert_eq!(
            session.task(),
            TaskKind::MulticlassClassification { num_classes: 3 }
        );
        let removed = random_subsets(400, 0.02, 1, 3)[0].clone();
        let priu = session.update(Method::Priu, &removed).unwrap();
        let retrain = session.update(Method::Retrain, &removed).unwrap();
        let cmp = compare_models(&retrain.model, &priu.model).unwrap();
        assert!(cmp.cosine_similarity > 0.99);
    }
}
