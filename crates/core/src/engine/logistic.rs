//! The dense logistic-regression deletion engine (binary and multinomial).

use std::time::{Duration, Instant};

use priu_data::dataset::{DenseDataset, TaskKind};
use priu_linalg::Vector;

use crate::baseline::influence::influence_update;
use crate::baseline::retrain::{retrain_binary_logistic, retrain_multinomial_logistic};
use crate::capture::{
    ClassIterationCache, LogisticIterationCache, LogisticProvenance, ProvenanceMemory,
};
use crate::config::TrainerConfig;
use crate::engine::{
    appended_batches, split_survivors, timed_update, ChainedUpdate, DeletionEngine, Delta,
    DeltaRows, Method, Session, UpdateOutcome,
};
use crate::error::{CoreError, Result};
use crate::model::Model;
use crate::snapshot::{
    get_dense_dataset, get_logistic_provenance, get_model, get_trainer_config, put_dense_dataset,
    put_logistic_provenance, put_model, put_trainer_config, SnapshotReader, SnapshotWriter,
};
use crate::trainer::logistic::{
    binary_logistic_step, multinomial_logistic_step, train_binary_logistic_with,
    train_multinomial_logistic_with, TrainedLogistic,
};
use crate::update::priu_logistic::priu_update_logistic_with;
use crate::update::priu_opt_logistic::priu_opt_update_logistic_with;
use crate::update::{drop_positions, normalize_removed, removed_positions};
use crate::workspace::Workspace;

/// A dense logistic-regression session (binary or multinomial, following the
/// dataset's labels): dataset + trained model + captured provenance.
///
/// Under [`DeletionEngine::apply`] the per-iteration caches shrink exactly
/// (the stored `(a, b')` coefficients identify each removed sample's
/// contribution); the PrIU-opt capture is dropped, because its frozen
/// linearisation point refers to the pre-deletion trajectory — the successor
/// supports plain PrIU, retraining and INFL.
#[derive(Debug, Clone)]
pub struct LogisticEngine {
    dataset: DenseDataset,
    config: TrainerConfig,
    trained: TrainedLogistic,
    training_time: Duration,
}

impl LogisticEngine {
    /// Trains the initial model and captures provenance (offline phase).
    /// Binary vs multinomial follows the dataset's labels.
    ///
    /// # Errors
    /// Propagates training failures; regression labels are a mismatch.
    pub fn fit(dataset: DenseDataset, config: TrainerConfig) -> Result<Self> {
        // Pre-size the workspace — including the m × m buffers the PrIU-opt
        // capture eigendecomposes into — before the offline timer starts.
        let num_classes = match dataset.task() {
            TaskKind::MulticlassClassification { num_classes } => num_classes,
            _ => 1,
        };
        let mut ws =
            Workspace::sized_for(dataset.num_features(), config.hyper.batch_size, num_classes);
        if config.capture_opt {
            ws.reserve_decompositions(dataset.num_features());
        }
        let start = Instant::now();
        let trained = match dataset.task() {
            TaskKind::BinaryClassification => {
                train_binary_logistic_with(&dataset, &config, &mut ws)?
            }
            TaskKind::MulticlassClassification { .. } => {
                train_multinomial_logistic_with(&dataset, &config, &mut ws)?
            }
            TaskKind::Regression => {
                return Err(CoreError::LabelMismatch {
                    expected: "binary or multiclass labels for a logistic session",
                })
            }
        };
        Ok(Self {
            dataset,
            config,
            trained,
            training_time: start.elapsed(),
        })
    }

    /// The training dataset this session currently covers.
    pub fn dataset(&self) -> &DenseDataset {
        &self.dataset
    }

    /// Serializes the whole engine state bit-exactly (durability snapshots).
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        put_dense_dataset(w, &self.dataset);
        put_trainer_config(w, &self.config);
        put_model(w, &self.trained.model);
        put_logistic_provenance(w, &self.trained.provenance);
        w.u64(self.training_time.as_nanos() as u64);
    }

    /// Rebuilds an engine from [`LogisticEngine::encode_snapshot`] bytes.
    ///
    /// # Errors
    /// Returns [`CoreError::Snapshot`] on truncated or corrupt input.
    pub fn decode_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self> {
        let dataset = get_dense_dataset(r, "logistic dataset")?;
        let config = get_trainer_config(r, "logistic config")?;
        let model = get_model(r, "logistic model")?;
        let provenance = get_logistic_provenance(r, "logistic provenance")?;
        let training_time = Duration::from_nanos(r.u64("logistic training time")?);
        Ok(Self {
            dataset,
            config,
            trained: TrainedLogistic { model, provenance },
            training_time,
        })
    }

    /// A workspace pre-sized for this session's replay loops (called before
    /// the update timer starts, so the timed region never allocates buffers).
    fn sized_workspace(&self, num_removed: usize) -> Workspace {
        let mut ws = Workspace::sized_for(
            self.dataset.num_features(),
            self.trained
                .provenance
                .schedule
                .batch_size()
                .max(num_removed),
            self.trained.model.weights().len(),
        );
        // Chained sessions carry deflation corrections whose row count can
        // exceed both the batch size and the feature count.
        let max_deflation = self
            .trained
            .provenance
            .iterations
            .iter()
            .flat_map(|it| it.classes.iter())
            .map(|class| class.gram.deflation_rows())
            .max()
            .unwrap_or(0);
        ws.reserve_gram_scratch(max_deflation);
        ws
    }

    fn retrain(&self, removed: &[usize]) -> Result<Model> {
        match self.dataset.task() {
            TaskKind::BinaryClassification => {
                retrain_binary_logistic(&self.dataset, &self.trained.provenance, removed)
            }
            TaskKind::MulticlassClassification { .. } => {
                retrain_multinomial_logistic(&self.dataset, &self.trained.provenance, removed)
            }
            TaskKind::Regression => unreachable!("logistic sessions never hold regression labels"),
        }
    }

    /// Validates a delta's added rows against this session: dense block,
    /// matching feature width, label kind (and class count) matching the
    /// task. Returns `None` for deltas that add nothing.
    fn validate_added<'a>(&self, delta: &'a Delta) -> Result<Option<&'a DenseDataset>> {
        match &delta.added {
            None => Ok(None),
            Some(DeltaRows::Sparse(_)) => Err(CoreError::InvalidConfig(
                "sparse rows cannot be added to a dense logistic session".to_string(),
            )),
            Some(DeltaRows::Dense(rows)) => {
                if rows.num_features() != self.dataset.num_features() {
                    return Err(CoreError::InvalidConfig(format!(
                        "added rows have {} features, the session has {}",
                        rows.num_features(),
                        self.dataset.num_features()
                    )));
                }
                let fits = match self.dataset.task() {
                    TaskKind::BinaryClassification => rows.labels.as_binary().is_some(),
                    TaskKind::MulticlassClassification { num_classes } => rows
                        .labels
                        .as_multiclass()
                        .is_some_and(|(_, q)| q == num_classes),
                    TaskKind::Regression => false,
                };
                if !fits {
                    return Err(CoreError::LabelMismatch {
                        expected: "added rows with the same label kind (and class count) \
                                   as the logistic session",
                    });
                }
                Ok((rows.num_samples() > 0).then_some(rows))
            }
        }
    }

    /// Runs the appended explicit-batch GD steps over `added`, chunked by
    /// the schedule's batch size, warm-started from `weights` (mutated in
    /// place). When `captures` is provided, one iteration cache per
    /// appended batch is collected — linearised around the trajectory the
    /// steps actually take.
    fn addition_steps(
        &self,
        added: &DenseDataset,
        weights: &mut [Vector],
        ws: &mut Workspace,
        mut captures: Option<&mut Vec<LogisticIterationCache>>,
    ) -> Result<()> {
        let provenance = &self.trained.provenance;
        let (eta, lambda) = (provenance.learning_rate, provenance.regularization);
        let interp = &self.config.interpolation;
        let batches = appended_batches(0, added.num_samples(), provenance.schedule.batch_size());
        match self.dataset.task() {
            TaskKind::BinaryClassification => {
                let y = added
                    .labels
                    .as_binary()
                    .expect("added rows were validated as binary");
                for batch in batches {
                    ws.batch.clear();
                    ws.batch.extend_from_slice(&batch);
                    let cache = binary_logistic_step(
                        &added.x,
                        y,
                        &mut weights[0],
                        eta,
                        lambda,
                        interp,
                        captures.as_ref().map(|_| self.config.compression),
                        ws,
                    )?;
                    if let (Some(caps), Some(cache)) = (captures.as_deref_mut(), cache) {
                        caps.push(cache);
                    }
                }
            }
            TaskKind::MulticlassClassification { num_classes } => {
                let (classes, _) = added
                    .labels
                    .as_multiclass()
                    .expect("added rows were validated as multiclass");
                for batch in batches {
                    ws.batch.clear();
                    ws.batch.extend_from_slice(&batch);
                    let cache = multinomial_logistic_step(
                        &added.x,
                        classes,
                        num_classes,
                        weights,
                        eta,
                        lambda,
                        interp,
                        captures.as_ref().map(|_| self.config.compression),
                        ws,
                    )?;
                    if let (Some(caps), Some(cache)) = (captures.as_deref_mut(), cache) {
                        caps.push(cache);
                    }
                }
            }
            TaskKind::Regression => {
                unreachable!("logistic sessions never hold regression labels")
            }
        }
        if weights.iter().any(|w| !w.is_finite()) {
            return Err(CoreError::Diverged {
                iteration: provenance.schedule.num_iterations(),
            });
        }
        Ok(())
    }

    /// The deletion-only update path — exactly the pre-delta code, so
    /// removal-only deltas stay bitwise identical to the old engine.
    fn removal_update(&self, method: Method, removed: &[usize]) -> Result<UpdateOutcome> {
        let num_removed = normalize_removed(self.num_samples(), removed)?.len();
        match method {
            Method::Retrain => timed_update(method, num_removed, 0, || self.retrain(removed)),
            Method::Priu => {
                // The workspace is sized before the timer starts, so the
                // timed region measures pure replay work.
                let mut ws = self.sized_workspace(num_removed);
                timed_update(method, num_removed, 0, || {
                    priu_update_logistic_with(
                        &self.dataset,
                        &self.trained.provenance,
                        removed,
                        &mut ws,
                    )
                })
            }
            Method::PriuOpt => {
                if self.trained.provenance.opt.is_none() {
                    return Err(CoreError::UnsupportedMethod {
                        method: method.name(),
                        reason: "the PrIU-opt capture was not materialised for this session",
                    });
                }
                let mut ws = self.sized_workspace(num_removed);
                timed_update(method, num_removed, 0, || {
                    priu_opt_update_logistic_with(
                        &self.dataset,
                        &self.trained.provenance,
                        removed,
                        &mut ws,
                    )
                })
            }
            Method::ClosedForm => Err(CoreError::UnsupportedMethod {
                method: method.name(),
                reason: "the closed-form update maintains the regularised normal equations, \
                         which exist only for linear regression",
            }),
            Method::Influence => timed_update(method, num_removed, 0, || {
                influence_update(
                    &self.dataset,
                    &self.trained.model,
                    self.config.hyper.regularization,
                    removed,
                )
            }),
        }
    }
}

impl DeletionEngine for LogisticEngine {
    fn task(&self) -> TaskKind {
        self.dataset.task()
    }

    fn num_samples(&self) -> usize {
        self.dataset.num_samples()
    }

    fn model(&self) -> &Model {
        &self.trained.model
    }

    fn training_time(&self) -> Duration {
        self.training_time
    }

    fn provenance_bytes(&self) -> usize {
        self.trained.provenance.provenance_bytes()
    }

    fn supported_methods(&self) -> Vec<Method> {
        let mut methods = vec![Method::Retrain, Method::Priu];
        if self.trained.provenance.opt.is_some() {
            methods.push(Method::PriuOpt);
        }
        methods.push(Method::Influence);
        methods
    }

    fn update_delta(&self, method: Method, delta: &Delta) -> Result<UpdateOutcome> {
        let added = self.validate_added(delta)?;
        let mut outcome = self.removal_update(method, &delta.removed)?;
        let Some(added) = added else {
            return Ok(outcome);
        };
        // Appended explicit-batch steps, warm-started from the post-removal
        // model. The workspace is sized before the timer starts.
        let mut ws = self.sized_workspace(0);
        let start = Instant::now();
        let mut weights = outcome.model.weights().to_vec();
        self.addition_steps(added, &mut weights, &mut ws, None)?;
        outcome.model = Model::new(outcome.model.kind(), weights)?;
        outcome.duration += start.elapsed();
        outcome.num_added = added.num_samples();
        Ok(outcome)
    }

    fn apply_delta(&self, method: Method, delta: &Delta) -> Result<ChainedUpdate> {
        let added = self.validate_added(delta)?;
        let mut outcome = self.removal_update(method, &delta.removed)?;
        let (removed, survivors) = split_survivors(self.num_samples(), &delta.removed)?;
        let provenance = &self.trained.provenance;

        // Deletion propagation per iteration and per class: the stored
        // `(a, b')` coefficients pinpoint each removed batch member's
        // contribution to `C_t` and `D_t`. The batches are materialised once
        // and reused to build the restricted schedule below.
        let mut batches = Vec::with_capacity(provenance.iterations.len());
        let mut iterations = Vec::with_capacity(provenance.iterations.len());
        for (t, cache) in provenance.iterations.iter().enumerate() {
            let batch = provenance.schedule.batch(t);
            let positions = removed_positions(&batch, &removed);
            if positions.is_empty() {
                iterations.push(cache.clone());
                batches.push(batch);
                continue;
            }
            let removed_in_batch: Vec<usize> = positions.iter().map(|&p| batch[p]).collect();
            batches.push(batch);
            let delta_rows = self.dataset.x.select_rows(&removed_in_batch);
            let mut classes = Vec::with_capacity(cache.classes.len());
            for class in &cache.classes {
                let a: Vec<f64> = positions.iter().map(|&p| class.coefficients[p].0).collect();
                let b: Vec<f64> = positions.iter().map(|&p| class.coefficients[p].1).collect();
                let mut d = class.d.clone();
                d.axpy(-1.0, &delta_rows.transpose_matvec(&Vector::from_vec(b))?)?;
                let gram = class.gram.deflate(delta_rows.clone(), a)?;
                classes.push(ClassIterationCache {
                    gram,
                    d,
                    coefficients: drop_positions(&class.coefficients, &positions),
                });
            }
            iterations.push(LogisticIterationCache {
                classes,
                batch_size: cache.batch_size - positions.len(),
            });
        }

        let mut dataset = self.dataset.select(&survivors);
        let mut schedule = provenance.schedule.restrict_from(&removed, batches);

        if let Some(added) = added {
            // The addition steps run once — the successor's appended caches
            // and the returned model come from the same trajectory. The
            // schedule grows by the same chunking (`appended_batches`) that
            // `update_delta` stepped through, with batch indices shifted to
            // the successor's row space, so retraining the successor replays
            // the identical steps over the identical rows.
            let k = added.num_samples();
            let mut ws = self.sized_workspace(0);
            let start = Instant::now();
            let mut weights = outcome.model.weights().to_vec();
            let mut caps = Vec::with_capacity(k.div_ceil(schedule.batch_size().max(1)));
            self.addition_steps(added, &mut weights, &mut ws, Some(&mut caps))?;
            iterations.extend(caps);
            schedule = schedule.extend_with(
                appended_batches(survivors.len(), k, provenance.schedule.batch_size()),
                k,
            );
            dataset.append(added)?;
            outcome.model = Model::new(outcome.model.kind(), weights)?;
            outcome.duration += start.elapsed();
            outcome.num_added = k;
        }

        let successor = LogisticEngine {
            dataset,
            config: self.config,
            trained: TrainedLogistic {
                model: outcome.model.clone(),
                provenance: LogisticProvenance {
                    schedule,
                    learning_rate: provenance.learning_rate,
                    regularization: provenance.regularization,
                    initial_model: provenance.initial_model.clone(),
                    iterations,
                    // The frozen linearisation point of the opt capture
                    // belongs to the pre-deletion trajectory; drop it rather
                    // than leave it stale.
                    opt: None,
                },
            },
            training_time: self.training_time,
        };
        Ok(ChainedUpdate {
            outcome,
            session: Session::Logistic(successor),
        })
    }
}
