//! The dense logistic-regression deletion engine (binary and multinomial).

use std::time::{Duration, Instant};

use priu_data::dataset::{DenseDataset, TaskKind};
use priu_linalg::Vector;

use crate::baseline::influence::influence_update;
use crate::baseline::retrain::{retrain_binary_logistic, retrain_multinomial_logistic};
use crate::capture::{
    ClassIterationCache, LogisticIterationCache, LogisticProvenance, ProvenanceMemory,
};
use crate::config::TrainerConfig;
use crate::engine::{
    split_survivors, timed_update, ChainedUpdate, DeletionEngine, Method, Session, UpdateOutcome,
};
use crate::error::{CoreError, Result};
use crate::model::Model;
use crate::trainer::logistic::{
    train_binary_logistic_with, train_multinomial_logistic_with, TrainedLogistic,
};
use crate::update::priu_logistic::priu_update_logistic_with;
use crate::update::priu_opt_logistic::priu_opt_update_logistic_with;
use crate::update::{drop_positions, normalize_removed, removed_positions};
use crate::workspace::Workspace;

/// A dense logistic-regression session (binary or multinomial, following the
/// dataset's labels): dataset + trained model + captured provenance.
///
/// Under [`DeletionEngine::apply`] the per-iteration caches shrink exactly
/// (the stored `(a, b')` coefficients identify each removed sample's
/// contribution); the PrIU-opt capture is dropped, because its frozen
/// linearisation point refers to the pre-deletion trajectory — the successor
/// supports plain PrIU, retraining and INFL.
#[derive(Debug, Clone)]
pub struct LogisticEngine {
    dataset: DenseDataset,
    config: TrainerConfig,
    trained: TrainedLogistic,
    training_time: Duration,
}

impl LogisticEngine {
    /// Trains the initial model and captures provenance (offline phase).
    /// Binary vs multinomial follows the dataset's labels.
    ///
    /// # Errors
    /// Propagates training failures; regression labels are a mismatch.
    pub fn fit(dataset: DenseDataset, config: TrainerConfig) -> Result<Self> {
        // Pre-size the workspace — including the m × m buffers the PrIU-opt
        // capture eigendecomposes into — before the offline timer starts.
        let num_classes = match dataset.task() {
            TaskKind::MulticlassClassification { num_classes } => num_classes,
            _ => 1,
        };
        let mut ws =
            Workspace::sized_for(dataset.num_features(), config.hyper.batch_size, num_classes);
        if config.capture_opt {
            ws.reserve_decompositions(dataset.num_features());
        }
        let start = Instant::now();
        let trained = match dataset.task() {
            TaskKind::BinaryClassification => {
                train_binary_logistic_with(&dataset, &config, &mut ws)?
            }
            TaskKind::MulticlassClassification { .. } => {
                train_multinomial_logistic_with(&dataset, &config, &mut ws)?
            }
            TaskKind::Regression => {
                return Err(CoreError::LabelMismatch {
                    expected: "binary or multiclass labels for a logistic session",
                })
            }
        };
        Ok(Self {
            dataset,
            config,
            trained,
            training_time: start.elapsed(),
        })
    }

    /// The training dataset this session currently covers.
    pub fn dataset(&self) -> &DenseDataset {
        &self.dataset
    }

    /// A workspace pre-sized for this session's replay loops (called before
    /// the update timer starts, so the timed region never allocates buffers).
    fn sized_workspace(&self, num_removed: usize) -> Workspace {
        let mut ws = Workspace::sized_for(
            self.dataset.num_features(),
            self.trained
                .provenance
                .schedule
                .batch_size()
                .max(num_removed),
            self.trained.model.weights().len(),
        );
        // Chained sessions carry deflation corrections whose row count can
        // exceed both the batch size and the feature count.
        let max_deflation = self
            .trained
            .provenance
            .iterations
            .iter()
            .flat_map(|it| it.classes.iter())
            .map(|class| class.gram.deflation_rows())
            .max()
            .unwrap_or(0);
        ws.reserve_gram_scratch(max_deflation);
        ws
    }

    fn retrain(&self, removed: &[usize]) -> Result<Model> {
        match self.dataset.task() {
            TaskKind::BinaryClassification => {
                retrain_binary_logistic(&self.dataset, &self.trained.provenance, removed)
            }
            TaskKind::MulticlassClassification { .. } => {
                retrain_multinomial_logistic(&self.dataset, &self.trained.provenance, removed)
            }
            TaskKind::Regression => unreachable!("logistic sessions never hold regression labels"),
        }
    }
}

impl DeletionEngine for LogisticEngine {
    fn task(&self) -> TaskKind {
        self.dataset.task()
    }

    fn num_samples(&self) -> usize {
        self.dataset.num_samples()
    }

    fn model(&self) -> &Model {
        &self.trained.model
    }

    fn training_time(&self) -> Duration {
        self.training_time
    }

    fn provenance_bytes(&self) -> usize {
        self.trained.provenance.provenance_bytes()
    }

    fn supported_methods(&self) -> Vec<Method> {
        let mut methods = vec![Method::Retrain, Method::Priu];
        if self.trained.provenance.opt.is_some() {
            methods.push(Method::PriuOpt);
        }
        methods.push(Method::Influence);
        methods
    }

    fn update(&self, method: Method, removed: &[usize]) -> Result<UpdateOutcome> {
        let num_removed = normalize_removed(self.num_samples(), removed)?.len();
        match method {
            Method::Retrain => timed_update(method, num_removed, || self.retrain(removed)),
            Method::Priu => {
                // The workspace is sized before the timer starts, so the
                // timed region measures pure replay work.
                let mut ws = self.sized_workspace(num_removed);
                timed_update(method, num_removed, || {
                    priu_update_logistic_with(
                        &self.dataset,
                        &self.trained.provenance,
                        removed,
                        &mut ws,
                    )
                })
            }
            Method::PriuOpt => {
                if self.trained.provenance.opt.is_none() {
                    return Err(CoreError::UnsupportedMethod {
                        method: method.name(),
                        reason: "the PrIU-opt capture was not materialised for this session",
                    });
                }
                let mut ws = self.sized_workspace(num_removed);
                timed_update(method, num_removed, || {
                    priu_opt_update_logistic_with(
                        &self.dataset,
                        &self.trained.provenance,
                        removed,
                        &mut ws,
                    )
                })
            }
            Method::ClosedForm => Err(CoreError::UnsupportedMethod {
                method: method.name(),
                reason: "the closed-form update maintains the regularised normal equations, \
                         which exist only for linear regression",
            }),
            Method::Influence => timed_update(method, num_removed, || {
                influence_update(
                    &self.dataset,
                    &self.trained.model,
                    self.config.hyper.regularization,
                    removed,
                )
            }),
        }
    }

    fn apply(&self, method: Method, removed: &[usize]) -> Result<ChainedUpdate> {
        let outcome = self.update(method, removed)?;
        let (removed, survivors) = split_survivors(self.num_samples(), removed)?;
        let provenance = &self.trained.provenance;

        // Deletion propagation per iteration and per class: the stored
        // `(a, b')` coefficients pinpoint each removed batch member's
        // contribution to `C_t` and `D_t`. The batches are materialised once
        // and reused to build the restricted schedule below.
        let mut batches = Vec::with_capacity(provenance.iterations.len());
        let mut iterations = Vec::with_capacity(provenance.iterations.len());
        for (t, cache) in provenance.iterations.iter().enumerate() {
            let batch = provenance.schedule.batch(t);
            let positions = removed_positions(&batch, &removed);
            if positions.is_empty() {
                iterations.push(cache.clone());
                batches.push(batch);
                continue;
            }
            let removed_in_batch: Vec<usize> = positions.iter().map(|&p| batch[p]).collect();
            batches.push(batch);
            let delta_rows = self.dataset.x.select_rows(&removed_in_batch);
            let mut classes = Vec::with_capacity(cache.classes.len());
            for class in &cache.classes {
                let a: Vec<f64> = positions.iter().map(|&p| class.coefficients[p].0).collect();
                let b: Vec<f64> = positions.iter().map(|&p| class.coefficients[p].1).collect();
                let mut d = class.d.clone();
                d.axpy(-1.0, &delta_rows.transpose_matvec(&Vector::from_vec(b))?)?;
                let gram = class.gram.deflate(delta_rows.clone(), a)?;
                classes.push(ClassIterationCache {
                    gram,
                    d,
                    coefficients: drop_positions(&class.coefficients, &positions),
                });
            }
            iterations.push(LogisticIterationCache {
                classes,
                batch_size: cache.batch_size - positions.len(),
            });
        }

        let successor = LogisticEngine {
            dataset: self.dataset.select(&survivors),
            config: self.config,
            trained: TrainedLogistic {
                model: outcome.model.clone(),
                provenance: LogisticProvenance {
                    schedule: provenance.schedule.restrict_from(&removed, batches),
                    learning_rate: provenance.learning_rate,
                    regularization: provenance.regularization,
                    initial_model: provenance.initial_model.clone(),
                    iterations,
                    // The frozen linearisation point of the opt capture
                    // belongs to the pre-deletion trajectory; drop it rather
                    // than leave it stale.
                    opt: None,
                },
            },
            training_time: self.training_time,
        };
        Ok(ChainedUpdate {
            outcome,
            session: Session::Logistic(successor),
        })
    }
}
