//! The linear-regression deletion engine.

use std::time::{Duration, Instant};

use priu_data::dataset::{DenseDataset, TaskKind};
use priu_linalg::decomposition::eigen::SymmetricEigen;
use priu_linalg::Vector;

use crate::baseline::closed_form::{
    closed_form_delta_with, closed_form_incremental_with, ClosedFormCapture,
};
use crate::baseline::influence::influence_update;
use crate::baseline::retrain::retrain_linear;
use crate::capture::{LinearIterationCache, LinearOptCapture, LinearProvenance, ProvenanceMemory};
use crate::config::TrainerConfig;
use crate::engine::{
    appended_batches, split_survivors, timed_update, ChainedUpdate, DeletionEngine, Delta,
    DeltaRows, Method, Session, UpdateOutcome,
};
use crate::error::{CoreError, Result};
use crate::model::{Model, ModelKind};
use crate::snapshot::{
    get_closed_form, get_dense_dataset, get_linear_provenance, get_model, get_trainer_config,
    put_closed_form, put_dense_dataset, put_linear_provenance, put_model, put_trainer_config,
    SnapshotReader, SnapshotWriter,
};
use crate::trainer::linear::{linear_step, train_linear_with, TrainedLinear};
use crate::update::priu_linear::priu_update_linear_with;
use crate::update::priu_opt_linear::priu_opt_update_linear_with;
use crate::update::{normalize_removed, removed_positions};
use crate::workspace::Workspace;

/// A linear-regression session: dataset + trained model + captured
/// provenance + (optionally) the closed-form baseline's materialised views.
///
/// Linear provenance shrinks *exactly* under [`DeletionEngine::apply`] —
/// Gram caches, the PrIU-opt eigendecomposition and the closed-form views
/// are all downdated by the removed samples' contributions — so a chained
/// linear session keeps its full method set.
#[derive(Debug, Clone)]
pub struct LinearEngine {
    dataset: DenseDataset,
    config: TrainerConfig,
    trained: TrainedLinear,
    closed_form: Option<ClosedFormCapture>,
    training_time: Duration,
}

impl LinearEngine {
    /// Trains the initial model and captures provenance (offline phase),
    /// materialising the closed-form views.
    ///
    /// # Errors
    /// Propagates training failures (label mismatch, divergence).
    pub fn fit(dataset: DenseDataset, config: TrainerConfig) -> Result<Self> {
        Self::fit_with(dataset, config, true)
    }

    /// Like [`LinearEngine::fit`], controlling whether the closed-form views
    /// (`XᵀX` / `XᵀY`) are materialised.
    ///
    /// # Errors
    /// Propagates training failures (label mismatch, divergence).
    pub fn fit_with(
        dataset: DenseDataset,
        config: TrainerConfig,
        capture_closed_form: bool,
    ) -> Result<Self> {
        // Pre-size the workspace before the offline timer starts, so the
        // timed region measures training and capture work, not buffer
        // growth; the m × m decomposition buffers are only needed when the
        // PrIU-opt capture will factorise.
        let mut ws = Workspace::sized_for(dataset.num_features(), config.hyper.batch_size, 1);
        if config.capture_opt {
            ws.reserve_decompositions(dataset.num_features());
        }
        let start = Instant::now();
        let trained = train_linear_with(&dataset, &config, &mut ws)?;
        let closed_form = if capture_closed_form {
            Some(ClosedFormCapture::build(
                &dataset,
                config.hyper.regularization,
            )?)
        } else {
            None
        };
        Ok(Self {
            dataset,
            config,
            trained,
            closed_form,
            training_time: start.elapsed(),
        })
    }

    /// The training dataset this session currently covers.
    pub fn dataset(&self) -> &DenseDataset {
        &self.dataset
    }

    /// Serializes the whole engine state bit-exactly (durability snapshots).
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        put_dense_dataset(w, &self.dataset);
        put_trainer_config(w, &self.config);
        put_model(w, &self.trained.model);
        put_linear_provenance(w, &self.trained.provenance);
        match &self.closed_form {
            None => w.bool(false),
            Some(c) => {
                w.bool(true);
                put_closed_form(w, c);
            }
        }
        w.u64(self.training_time.as_nanos() as u64);
    }

    /// Rebuilds an engine from [`LinearEngine::encode_snapshot`] bytes.
    ///
    /// # Errors
    /// Returns [`CoreError::Snapshot`] on truncated or corrupt input.
    pub fn decode_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self> {
        let dataset = get_dense_dataset(r, "linear dataset")?;
        let config = get_trainer_config(r, "linear config")?;
        let model = get_model(r, "linear model")?;
        let provenance = get_linear_provenance(r, "linear provenance")?;
        let closed_form = if r.bool("linear closed-form flag")? {
            Some(get_closed_form(r, "linear closed-form")?)
        } else {
            None
        };
        let training_time = Duration::from_nanos(r.u64("linear training time")?);
        Ok(Self {
            dataset,
            config,
            trained: TrainedLinear { model, provenance },
            closed_form,
            training_time,
        })
    }

    fn continuous_labels(&self) -> &Vector {
        self.dataset
            .labels
            .as_continuous()
            .expect("a linear session always holds continuous labels")
    }

    /// A workspace pre-sized for this session's replay loops (called before
    /// the update timer starts, so the timed region never allocates buffers).
    fn sized_workspace(&self, num_removed: usize) -> Workspace {
        let mut ws = Workspace::sized_for(
            self.dataset.num_features(),
            self.trained
                .provenance
                .schedule
                .batch_size()
                .max(num_removed),
            1,
        );
        // Chained sessions carry deflation corrections whose row count can
        // exceed both the batch size and the feature count.
        let max_deflation = self
            .trained
            .provenance
            .iterations
            .iter()
            .map(|it| it.gram.deflation_rows())
            .max()
            .unwrap_or(0);
        ws.reserve_gram_scratch(max_deflation);
        ws
    }

    /// Validates a delta's added rows against this session: dense block,
    /// matching feature width, continuous labels. Returns `None` for
    /// deltas that add nothing (including an explicitly empty block).
    fn validate_added<'a>(&self, delta: &'a Delta) -> Result<Option<&'a DenseDataset>> {
        match &delta.added {
            None => Ok(None),
            Some(DeltaRows::Sparse(_)) => Err(CoreError::InvalidConfig(
                "sparse rows cannot be added to a dense linear session".to_string(),
            )),
            Some(DeltaRows::Dense(rows)) => {
                if rows.num_features() != self.dataset.num_features() {
                    return Err(CoreError::InvalidConfig(format!(
                        "added rows have {} features, the session has {}",
                        rows.num_features(),
                        self.dataset.num_features()
                    )));
                }
                if rows.labels.as_continuous().is_none() {
                    return Err(CoreError::LabelMismatch {
                        expected: "continuous labels for rows added to a linear session",
                    });
                }
                Ok((rows.num_samples() > 0).then_some(rows))
            }
        }
    }

    /// Runs the appended explicit-batch GD steps over `added`, chunked by
    /// the schedule's batch size, warm-started from `w` (mutated in place).
    /// When `captures` is provided, one iteration cache per appended batch
    /// is collected (the apply path); without it the warm path allocates
    /// nothing per step.
    fn addition_steps(
        &self,
        added: &DenseDataset,
        w: &mut Vector,
        ws: &mut Workspace,
        mut captures: Option<&mut Vec<LinearIterationCache>>,
    ) -> Result<()> {
        let y = added
            .labels
            .as_continuous()
            .expect("added rows were validated as continuous");
        let provenance = &self.trained.provenance;
        let (eta, lambda) = (provenance.learning_rate, provenance.regularization);
        for batch in appended_batches(0, added.num_samples(), provenance.schedule.batch_size()) {
            ws.batch.clear();
            ws.batch.extend_from_slice(&batch);
            let cache = linear_step(
                &added.x,
                y,
                w,
                eta,
                lambda,
                captures.as_ref().map(|_| self.config.compression),
                ws,
            )?;
            if let (Some(caps), Some(cache)) = (captures.as_deref_mut(), cache) {
                caps.push(cache);
            }
        }
        if !w.is_finite() {
            return Err(CoreError::Diverged {
                iteration: provenance.schedule.num_iterations(),
            });
        }
        Ok(())
    }

    /// One timed closed-form solve folding the whole delta into the
    /// normal-equation views (downdate removed, update added, solve once).
    fn closed_form_delta(&self, removed: &[usize], added: &DenseDataset) -> Result<UpdateOutcome> {
        let capture = self
            .closed_form
            .as_ref()
            .ok_or(CoreError::UnsupportedMethod {
                method: Method::ClosedForm.name(),
                reason: "the closed-form views were not materialised for this session",
            })?;
        let num_removed = normalize_removed(self.num_samples(), removed)?.len();
        let mut ws = self.sized_workspace(num_removed.max(added.num_samples()));
        ws.reserve_decompositions(self.dataset.num_features());
        timed_update(Method::ClosedForm, num_removed, added.num_samples(), || {
            closed_form_delta_with(&self.dataset, capture, removed, added, &mut ws)
        })
    }

    /// The deletion-only update path — exactly the pre-delta code, so
    /// removal-only deltas stay bitwise identical to the old engine.
    fn removal_update(&self, method: Method, removed: &[usize]) -> Result<UpdateOutcome> {
        let num_removed = normalize_removed(self.num_samples(), removed)?.len();
        match method {
            Method::Retrain => timed_update(method, num_removed, 0, || {
                retrain_linear(&self.dataset, &self.trained.provenance, removed)
            }),
            Method::Priu => {
                // The workspace is sized before the timer starts, so the
                // timed region measures pure replay work.
                let mut ws = self.sized_workspace(num_removed);
                timed_update(method, num_removed, 0, || {
                    priu_update_linear_with(
                        &self.dataset,
                        &self.trained.provenance,
                        removed,
                        &mut ws,
                    )
                })
            }
            Method::PriuOpt => {
                if self.trained.provenance.opt.is_none() {
                    return Err(CoreError::UnsupportedMethod {
                        method: method.name(),
                        reason: "the PrIU-opt capture was not materialised for this session",
                    });
                }
                let mut ws = self.sized_workspace(num_removed);
                timed_update(method, num_removed, 0, || {
                    priu_opt_update_linear_with(
                        &self.dataset,
                        &self.trained.provenance,
                        removed,
                        &mut ws,
                    )
                })
            }
            Method::ClosedForm => {
                let capture = self
                    .closed_form
                    .as_ref()
                    .ok_or(CoreError::UnsupportedMethod {
                        method: method.name(),
                        reason: "the closed-form views were not materialised for this session",
                    })?;
                // Sized before the timer: the downdate, blocked Cholesky
                // factorisation and substitution all reuse workspace buffers
                // (the m × m pair is reserved here only — the replay methods
                // never touch it).
                let mut ws = self.sized_workspace(num_removed);
                ws.reserve_decompositions(self.dataset.num_features());
                timed_update(method, num_removed, 0, || {
                    closed_form_incremental_with(&self.dataset, capture, removed, &mut ws)
                })
            }
            Method::Influence => timed_update(method, num_removed, 0, || {
                influence_update(
                    &self.dataset,
                    &self.trained.model,
                    self.config.hyper.regularization,
                    removed,
                )
            }),
        }
    }
}

impl DeletionEngine for LinearEngine {
    fn task(&self) -> TaskKind {
        TaskKind::Regression
    }

    fn num_samples(&self) -> usize {
        self.dataset.num_samples()
    }

    fn model(&self) -> &Model {
        &self.trained.model
    }

    fn training_time(&self) -> Duration {
        self.training_time
    }

    fn provenance_bytes(&self) -> usize {
        self.trained.provenance.provenance_bytes()
    }

    fn supported_methods(&self) -> Vec<Method> {
        let mut methods = vec![Method::Retrain, Method::Priu];
        if self.trained.provenance.opt.is_some() {
            methods.push(Method::PriuOpt);
        }
        if self.closed_form.is_some() {
            methods.push(Method::ClosedForm);
        }
        methods.push(Method::Influence);
        methods
    }

    fn update_delta(&self, method: Method, delta: &Delta) -> Result<UpdateOutcome> {
        let Some(added) = self.validate_added(delta)? else {
            return self.removal_update(method, &delta.removed);
        };
        // Closed-form folds both directions into the views and solves once;
        // every other method removes with its own machinery and then runs
        // the exact appended GD steps warm-started from the removal model.
        if method == Method::ClosedForm {
            return self.closed_form_delta(&delta.removed, added);
        }
        let mut outcome = self.removal_update(method, &delta.removed)?;
        let mut ws = self.sized_workspace(0);
        let start = Instant::now();
        let mut w = outcome.model.weight().clone();
        self.addition_steps(added, &mut w, &mut ws, None)?;
        outcome.model = Model::new(ModelKind::Linear, vec![w])?;
        outcome.duration += start.elapsed();
        outcome.num_added = added.num_samples();
        Ok(outcome)
    }

    fn apply_delta(&self, method: Method, delta: &Delta) -> Result<ChainedUpdate> {
        let added = self.validate_added(delta)?;
        let mut outcome = match added {
            Some(added) if method == Method::ClosedForm => {
                self.closed_form_delta(&delta.removed, added)?
            }
            _ => self.removal_update(method, &delta.removed)?,
        };
        let (removed, survivors) = split_survivors(self.num_samples(), &delta.removed)?;
        let y = self.continuous_labels();
        let provenance = &self.trained.provenance;

        // Deletion propagation through the per-iteration caches: subtract the
        // removed samples' Gram and moment contributions from every batch
        // they appear in. The batches are materialised once and reused to
        // build the restricted schedule below.
        let mut batches = Vec::with_capacity(provenance.iterations.len());
        let mut iterations = Vec::with_capacity(provenance.iterations.len());
        for (t, cache) in provenance.iterations.iter().enumerate() {
            let batch = provenance.schedule.batch(t);
            let positions = removed_positions(&batch, &removed);
            if positions.is_empty() {
                iterations.push(cache.clone());
                batches.push(batch);
                continue;
            }
            let removed_in_batch: Vec<usize> = positions.iter().map(|&p| batch[p]).collect();
            batches.push(batch);
            let delta_rows = self.dataset.x.select_rows(&removed_in_batch);
            let delta_y = Vector::from_vec(removed_in_batch.iter().map(|&i| y[i]).collect());
            let mut xy = cache.xy.clone();
            xy.axpy(-1.0, &delta_rows.transpose_matvec(&delta_y)?)?;
            let gram = cache
                .gram
                .deflate(delta_rows, vec![1.0; removed_in_batch.len()])?;
            iterations.push(LinearIterationCache {
                gram,
                xy,
                batch_size: cache.batch_size - positions.len(),
            });
        }

        // Shared by the opt-capture and closed-form downdates below.
        let delta_rows = self.dataset.x.select_rows(&removed);
        let delta_y = Vector::from_vec(removed.iter().map(|&i| y[i]).collect());
        let delta_gram = delta_rows.gram();
        let delta_xty = delta_rows.transpose_matvec(&delta_y)?;

        // Added-block contributions (rank-k growth of the quadratic views).
        let added_views = match added {
            Some(added) => {
                let y_added = added
                    .labels
                    .as_continuous()
                    .expect("added rows were validated as continuous");
                Some((added.x.gram(), added.x.transpose_matvec(y_added)?))
            }
            None => None,
        };

        // The PrIU-opt capture adjusts exactly: `XᵀX` is downdated by the
        // removed block, grown by the added block, and re-eigendecomposed
        // once (O(m³), independent of n).
        let opt = match &provenance.opt {
            Some(capture) => {
                let mut gram = capture.eigen.reconstruct();
                gram.axpy(-1.0, &delta_gram)?;
                let mut xty = capture.xty.clone();
                xty.axpy(-1.0, &delta_xty)?;
                if let Some((added_gram, added_xty)) = &added_views {
                    gram.axpy(1.0, added_gram)?;
                    xty.axpy(1.0, added_xty)?;
                }
                let eigen = SymmetricEigen::new(&gram)?;
                Some(LinearOptCapture { eigen, xty })
            }
            None => None,
        };

        // The closed-form views downdate and grow the same way they do
        // per-update.
        let closed_form = match &self.closed_form {
            Some(capture) => {
                let mut xtx = capture.xtx.clone();
                xtx.axpy(-1.0, &delta_gram)?;
                let mut xty = capture.xty.clone();
                xty.axpy(-1.0, &delta_xty)?;
                if let Some((added_gram, added_xty)) = &added_views {
                    xtx.axpy(1.0, added_gram)?;
                    xty.axpy(1.0, added_xty)?;
                }
                Some(ClosedFormCapture {
                    xtx,
                    xty,
                    num_samples: survivors.len() + added.map_or(0, DenseDataset::num_samples),
                    regularization: capture.regularization,
                })
            }
            None => None,
        };

        let mut dataset = self.dataset.select(&survivors);
        let mut schedule = provenance.schedule.restrict_from(&removed, batches);
        if let Some(added) = added {
            let k = added.num_samples();
            // Appended explicit-batch iterations: run the exact GD steps
            // warm-started from the removal-path model, capturing one
            // iteration cache per appended batch. (The linear captures are
            // trajectory-free — Gram + moment of the batch rows — so for
            // closed-form, whose outcome model is the view solve, the same
            // captures apply.)
            let mut ws = self.sized_workspace(0);
            let start = Instant::now();
            let mut w = outcome.model.weight().clone();
            let mut caps = Vec::with_capacity(k.div_ceil(schedule.batch_size().max(1)));
            self.addition_steps(added, &mut w, &mut ws, Some(&mut caps))?;
            iterations.extend(caps);
            schedule = schedule.extend_with(
                appended_batches(survivors.len(), k, provenance.schedule.batch_size()),
                k,
            );
            dataset.append(added)?;
            if method != Method::ClosedForm {
                outcome.model = Model::new(ModelKind::Linear, vec![w])?;
                outcome.duration += start.elapsed();
                outcome.num_added = k;
            }
        }

        let successor = LinearEngine {
            dataset,
            config: self.config,
            trained: TrainedLinear {
                model: outcome.model.clone(),
                provenance: LinearProvenance {
                    schedule,
                    learning_rate: provenance.learning_rate,
                    regularization: provenance.regularization,
                    initial_model: provenance.initial_model.clone(),
                    iterations,
                    opt,
                },
            },
            closed_form,
            training_time: self.training_time,
        };
        Ok(ChainedUpdate {
            outcome,
            session: Session::Linear(successor),
        })
    }
}
