//! The linear-regression deletion engine.

use std::time::{Duration, Instant};

use priu_data::dataset::{DenseDataset, TaskKind};
use priu_linalg::decomposition::eigen::SymmetricEigen;
use priu_linalg::Vector;

use crate::baseline::closed_form::{closed_form_incremental_with, ClosedFormCapture};
use crate::baseline::influence::influence_update;
use crate::baseline::retrain::retrain_linear;
use crate::capture::{LinearIterationCache, LinearOptCapture, LinearProvenance, ProvenanceMemory};
use crate::config::TrainerConfig;
use crate::engine::{
    split_survivors, timed_update, ChainedUpdate, DeletionEngine, Method, Session, UpdateOutcome,
};
use crate::error::{CoreError, Result};
use crate::model::Model;
use crate::trainer::linear::{train_linear_with, TrainedLinear};
use crate::update::priu_linear::priu_update_linear_with;
use crate::update::priu_opt_linear::priu_opt_update_linear_with;
use crate::update::{normalize_removed, removed_positions};
use crate::workspace::Workspace;

/// A linear-regression session: dataset + trained model + captured
/// provenance + (optionally) the closed-form baseline's materialised views.
///
/// Linear provenance shrinks *exactly* under [`DeletionEngine::apply`] —
/// Gram caches, the PrIU-opt eigendecomposition and the closed-form views
/// are all downdated by the removed samples' contributions — so a chained
/// linear session keeps its full method set.
#[derive(Debug, Clone)]
pub struct LinearEngine {
    dataset: DenseDataset,
    config: TrainerConfig,
    trained: TrainedLinear,
    closed_form: Option<ClosedFormCapture>,
    training_time: Duration,
}

impl LinearEngine {
    /// Trains the initial model and captures provenance (offline phase),
    /// materialising the closed-form views.
    ///
    /// # Errors
    /// Propagates training failures (label mismatch, divergence).
    pub fn fit(dataset: DenseDataset, config: TrainerConfig) -> Result<Self> {
        Self::fit_with(dataset, config, true)
    }

    /// Like [`LinearEngine::fit`], controlling whether the closed-form views
    /// (`XᵀX` / `XᵀY`) are materialised.
    ///
    /// # Errors
    /// Propagates training failures (label mismatch, divergence).
    pub fn fit_with(
        dataset: DenseDataset,
        config: TrainerConfig,
        capture_closed_form: bool,
    ) -> Result<Self> {
        // Pre-size the workspace before the offline timer starts, so the
        // timed region measures training and capture work, not buffer
        // growth; the m × m decomposition buffers are only needed when the
        // PrIU-opt capture will factorise.
        let mut ws = Workspace::sized_for(dataset.num_features(), config.hyper.batch_size, 1);
        if config.capture_opt {
            ws.reserve_decompositions(dataset.num_features());
        }
        let start = Instant::now();
        let trained = train_linear_with(&dataset, &config, &mut ws)?;
        let closed_form = if capture_closed_form {
            Some(ClosedFormCapture::build(
                &dataset,
                config.hyper.regularization,
            )?)
        } else {
            None
        };
        Ok(Self {
            dataset,
            config,
            trained,
            closed_form,
            training_time: start.elapsed(),
        })
    }

    /// The training dataset this session currently covers.
    pub fn dataset(&self) -> &DenseDataset {
        &self.dataset
    }

    fn continuous_labels(&self) -> &Vector {
        self.dataset
            .labels
            .as_continuous()
            .expect("a linear session always holds continuous labels")
    }

    /// A workspace pre-sized for this session's replay loops (called before
    /// the update timer starts, so the timed region never allocates buffers).
    fn sized_workspace(&self, num_removed: usize) -> Workspace {
        let mut ws = Workspace::sized_for(
            self.dataset.num_features(),
            self.trained
                .provenance
                .schedule
                .batch_size()
                .max(num_removed),
            1,
        );
        // Chained sessions carry deflation corrections whose row count can
        // exceed both the batch size and the feature count.
        let max_deflation = self
            .trained
            .provenance
            .iterations
            .iter()
            .map(|it| it.gram.deflation_rows())
            .max()
            .unwrap_or(0);
        ws.reserve_gram_scratch(max_deflation);
        ws
    }
}

impl DeletionEngine for LinearEngine {
    fn task(&self) -> TaskKind {
        TaskKind::Regression
    }

    fn num_samples(&self) -> usize {
        self.dataset.num_samples()
    }

    fn model(&self) -> &Model {
        &self.trained.model
    }

    fn training_time(&self) -> Duration {
        self.training_time
    }

    fn provenance_bytes(&self) -> usize {
        self.trained.provenance.provenance_bytes()
    }

    fn supported_methods(&self) -> Vec<Method> {
        let mut methods = vec![Method::Retrain, Method::Priu];
        if self.trained.provenance.opt.is_some() {
            methods.push(Method::PriuOpt);
        }
        if self.closed_form.is_some() {
            methods.push(Method::ClosedForm);
        }
        methods.push(Method::Influence);
        methods
    }

    fn update(&self, method: Method, removed: &[usize]) -> Result<UpdateOutcome> {
        let num_removed = normalize_removed(self.num_samples(), removed)?.len();
        match method {
            Method::Retrain => timed_update(method, num_removed, || {
                retrain_linear(&self.dataset, &self.trained.provenance, removed)
            }),
            Method::Priu => {
                // The workspace is sized before the timer starts, so the
                // timed region measures pure replay work.
                let mut ws = self.sized_workspace(num_removed);
                timed_update(method, num_removed, || {
                    priu_update_linear_with(
                        &self.dataset,
                        &self.trained.provenance,
                        removed,
                        &mut ws,
                    )
                })
            }
            Method::PriuOpt => {
                if self.trained.provenance.opt.is_none() {
                    return Err(CoreError::UnsupportedMethod {
                        method: method.name(),
                        reason: "the PrIU-opt capture was not materialised for this session",
                    });
                }
                let mut ws = self.sized_workspace(num_removed);
                timed_update(method, num_removed, || {
                    priu_opt_update_linear_with(
                        &self.dataset,
                        &self.trained.provenance,
                        removed,
                        &mut ws,
                    )
                })
            }
            Method::ClosedForm => {
                let capture = self
                    .closed_form
                    .as_ref()
                    .ok_or(CoreError::UnsupportedMethod {
                        method: method.name(),
                        reason: "the closed-form views were not materialised for this session",
                    })?;
                // Sized before the timer: the downdate, blocked Cholesky
                // factorisation and substitution all reuse workspace buffers
                // (the m × m pair is reserved here only — the replay methods
                // never touch it).
                let mut ws = self.sized_workspace(num_removed);
                ws.reserve_decompositions(self.dataset.num_features());
                timed_update(method, num_removed, || {
                    closed_form_incremental_with(&self.dataset, capture, removed, &mut ws)
                })
            }
            Method::Influence => timed_update(method, num_removed, || {
                influence_update(
                    &self.dataset,
                    &self.trained.model,
                    self.config.hyper.regularization,
                    removed,
                )
            }),
        }
    }

    fn apply(&self, method: Method, removed: &[usize]) -> Result<ChainedUpdate> {
        let outcome = self.update(method, removed)?;
        let (removed, survivors) = split_survivors(self.num_samples(), removed)?;
        let y = self.continuous_labels();
        let provenance = &self.trained.provenance;

        // Deletion propagation through the per-iteration caches: subtract the
        // removed samples' Gram and moment contributions from every batch
        // they appear in. The batches are materialised once and reused to
        // build the restricted schedule below.
        let mut batches = Vec::with_capacity(provenance.iterations.len());
        let mut iterations = Vec::with_capacity(provenance.iterations.len());
        for (t, cache) in provenance.iterations.iter().enumerate() {
            let batch = provenance.schedule.batch(t);
            let positions = removed_positions(&batch, &removed);
            if positions.is_empty() {
                iterations.push(cache.clone());
                batches.push(batch);
                continue;
            }
            let removed_in_batch: Vec<usize> = positions.iter().map(|&p| batch[p]).collect();
            batches.push(batch);
            let delta_rows = self.dataset.x.select_rows(&removed_in_batch);
            let delta_y = Vector::from_vec(removed_in_batch.iter().map(|&i| y[i]).collect());
            let mut xy = cache.xy.clone();
            xy.axpy(-1.0, &delta_rows.transpose_matvec(&delta_y)?)?;
            let gram = cache
                .gram
                .deflate(delta_rows, vec![1.0; removed_in_batch.len()])?;
            iterations.push(LinearIterationCache {
                gram,
                xy,
                batch_size: cache.batch_size - positions.len(),
            });
        }

        // Shared by the opt-capture and closed-form downdates below.
        let delta_rows = self.dataset.x.select_rows(&removed);
        let delta_y = Vector::from_vec(removed.iter().map(|&i| y[i]).collect());
        let delta_gram = delta_rows.gram();
        let delta_xty = delta_rows.transpose_matvec(&delta_y)?;

        // The PrIU-opt capture shrinks exactly: `XᵀX` is downdated by the
        // removed block and re-eigendecomposed (O(m³), independent of n).
        let opt = match &provenance.opt {
            Some(capture) => {
                let mut gram = capture.eigen.reconstruct();
                gram.axpy(-1.0, &delta_gram)?;
                let eigen = SymmetricEigen::new(&gram)?;
                let mut xty = capture.xty.clone();
                xty.axpy(-1.0, &delta_xty)?;
                Some(LinearOptCapture { eigen, xty })
            }
            None => None,
        };

        // The closed-form views downdate the same way they do per-update.
        let closed_form = match &self.closed_form {
            Some(capture) => {
                let mut xtx = capture.xtx.clone();
                xtx.axpy(-1.0, &delta_gram)?;
                let mut xty = capture.xty.clone();
                xty.axpy(-1.0, &delta_xty)?;
                Some(ClosedFormCapture {
                    xtx,
                    xty,
                    num_samples: survivors.len(),
                    regularization: capture.regularization,
                })
            }
            None => None,
        };

        let successor = LinearEngine {
            dataset: self.dataset.select(&survivors),
            config: self.config,
            trained: TrainedLinear {
                model: outcome.model.clone(),
                provenance: LinearProvenance {
                    schedule: provenance.schedule.restrict_from(&removed, batches),
                    learning_rate: provenance.learning_rate,
                    regularization: provenance.regularization,
                    initial_model: provenance.initial_model.clone(),
                    iterations,
                    opt,
                },
            },
            closed_form,
            training_time: self.training_time,
        };
        Ok(ChainedUpdate {
            outcome,
            session: Session::Linear(successor),
        })
    }
}
