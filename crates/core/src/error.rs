//! Error type for the core crate.

use std::fmt;

use priu_linalg::LinalgError;

/// Errors produced by training, provenance capture and incremental updates.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A linear-algebra routine failed.
    Linalg(LinalgError),
    /// The dataset's labels do not match the requested model kind.
    LabelMismatch {
        /// What the operation expected.
        expected: &'static str,
    },
    /// The model parameters diverged (non-finite values) during training or
    /// updating; usually a too-large learning rate for the data at hand.
    Diverged {
        /// Iteration at which divergence was detected.
        iteration: usize,
    },
    /// A removal index was out of range for the dataset.
    InvalidRemoval {
        /// Offending sample index.
        index: usize,
        /// Number of samples in the dataset.
        num_samples: usize,
    },
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// The requested operation needs provenance that was not captured
    /// (e.g. PrIU-opt on a session trained without the opt capture).
    MissingCapture(&'static str),
    /// The requested update method is not available on this session — either
    /// the task does not support it (closed-form is linear-only) or the
    /// required capture was not materialised. Query
    /// `DeletionEngine::supported_methods` to discover what a session offers.
    UnsupportedMethod {
        /// Name of the rejected method.
        method: &'static str,
        /// Why the method is unavailable on this session.
        reason: &'static str,
    },
    /// Snapshot bytes could not be decoded (truncated, corrupted, or from
    /// an incompatible format version). Recovery treats this as "skip the
    /// snapshot and fall back", never as a panic.
    Snapshot(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CoreError::LabelMismatch { expected } => {
                write!(
                    f,
                    "dataset labels do not match the model: expected {expected}"
                )
            }
            CoreError::Diverged { iteration } => {
                write!(f, "model parameters diverged at iteration {iteration}")
            }
            CoreError::InvalidRemoval { index, num_samples } => write!(
                f,
                "removal index {index} out of range for {num_samples} samples"
            ),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::MissingCapture(what) => {
                write!(f, "missing provenance capture: {what}")
            }
            CoreError::UnsupportedMethod { method, reason } => {
                write!(f, "update method {method} not supported here: {reason}")
            }
            CoreError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::Diverged { iteration: 7 };
        assert!(e.to_string().contains("iteration 7"));
        let e = CoreError::InvalidRemoval {
            index: 10,
            num_samples: 5,
        };
        assert!(e.to_string().contains("10"));
        let e: CoreError = LinalgError::Singular { op: "x" }.into();
        assert!(matches!(e, CoreError::Linalg(_)));
        assert!(e.to_string().contains("singular"));
        assert!(CoreError::MissingCapture("opt").to_string().contains("opt"));
        assert!(CoreError::UnsupportedMethod {
            method: "Closed-form",
            reason: "linear regression only",
        }
        .to_string()
        .contains("Closed-form"));
        assert!(CoreError::LabelMismatch { expected: "binary" }
            .to_string()
            .contains("binary"));
        assert!(CoreError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
    }
}
