//! Property-based tests of the core invariants: for *arbitrary* removal
//! sets, PrIU's incrementally updated model must coincide (linear
//! regression) or near-coincide (logistic regression, Theorem 5) with the
//! model retrained on the surviving samples, and the interpolation error
//! must respect the Theorem 4 bound.
//!
//! Sessions are driven through the unified `DeletionEngine` API; removal
//! sets are drawn from the workspace's deterministic RNG (one seed per
//! case), so the suite runs in fully offline builds.

use std::sync::OnceLock;

use priu_core::engine::{DeletionEngine, Method, Session, SessionBuilder};
use priu_core::interpolation::PiecewiseLinearSigmoid;
use priu_core::metrics::compare_models;
use priu_core::TrainerConfig;
use priu_data::catalog::Hyperparameters;
use priu_data::synthetic::classification::{generate_binary_classification, ClassificationConfig};
use priu_data::synthetic::regression::{generate_regression, RegressionConfig};
use priu_rng::Rng64;

const N: usize = 160;

fn linear_fixture() -> &'static Session {
    static FIXTURE: OnceLock<Session> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = generate_regression(&RegressionConfig {
            num_samples: N,
            num_features: 5,
            noise_std: 0.1,
            seed: 1001,
            ..Default::default()
        });
        let config = TrainerConfig::from_hyper(Hyperparameters {
            batch_size: 32,
            num_iterations: 120,
            learning_rate: 0.05,
            regularization: 0.05,
        });
        SessionBuilder::dense(data, config)
            .seed(4)
            .opt_capture(false)
            .fit()
            .expect("training fixture")
    })
}

fn logistic_fixture() -> &'static Session {
    static FIXTURE: OnceLock<Session> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = generate_binary_classification(&ClassificationConfig {
            num_samples: N,
            num_features: 6,
            separation: 3.0,
            label_noise: 0.5,
            seed: 1002,
            ..Default::default()
        });
        let config = TrainerConfig::from_hyper(Hyperparameters {
            batch_size: 32,
            num_iterations: 120,
            learning_rate: 0.3,
            regularization: 0.02,
        });
        SessionBuilder::dense(data, config)
            .seed(5)
            .opt_capture(false)
            .fit()
            .expect("training fixture")
    })
}

/// An arbitrary removal set of up to a quarter of the samples (possibly with
/// duplicates and in arbitrary order, which the API must normalise).
fn removal_set(rng: &mut Rng64) -> Vec<usize> {
    let len = rng.index(N / 4);
    (0..len).map(|_| rng.index(N)).collect()
}

#[test]
fn priu_linear_matches_retraining_for_arbitrary_removals() {
    let session = linear_fixture();
    for case in 0..12 {
        let mut rng = Rng64::from_seed_stream(0xC001, case);
        let removed = removal_set(&mut rng);
        let updated = session.update(Method::Priu, &removed).unwrap();
        let retrained = session.update(Method::Retrain, &removed).unwrap();
        // For linear regression PrIU replays the exact update rule, so the
        // two results agree to floating-point accuracy.
        let cmp = compare_models(&retrained.model, &updated.model).unwrap();
        assert!(
            cmp.l2_distance < 1e-7,
            "case {case}: distance {}",
            cmp.l2_distance
        );
        assert!(updated.model.is_finite());
    }
}

#[test]
fn priu_logistic_stays_within_theorem5_distance_of_retraining() {
    let session = logistic_fixture();
    for case in 0..12 {
        let mut rng = Rng64::from_seed_stream(0xC002, case);
        let removed = removal_set(&mut rng);
        let updated = session.update(Method::Priu, &removed).unwrap();
        let retrained = session.update(Method::Retrain, &removed).unwrap();
        let cmp = compare_models(&retrained.model, &updated.model).unwrap();
        // Theorem 5: the gap grows with the removed fraction; for at most a
        // quarter of the samples the direction must stay essentially intact.
        assert!(
            cmp.cosine_similarity > 0.98,
            "case {case}: similarity {}",
            cmp.cosine_similarity
        );
        assert!(updated.model.is_finite());
    }
}

#[test]
fn removing_nothing_is_a_fixed_point() {
    // The empty removal leaves the linear model unchanged and the logistic
    // model within the linearisation tolerance.
    let linear = linear_fixture();
    let lin = linear.update(Method::Priu, &[]).unwrap();
    assert!(
        compare_models(linear.model(), &lin.model)
            .unwrap()
            .l2_distance
            < 1e-9
    );
    assert_eq!(lin.num_removed, 0);

    let logistic = logistic_fixture();
    let log = logistic.update(Method::Priu, &[]).unwrap();
    assert!(
        compare_models(logistic.model(), &log.model)
            .unwrap()
            .l2_distance
            < 1e-6
    );
}

#[test]
fn chained_apply_matches_one_shot_updates_for_arbitrary_splits() {
    // Splitting one removal set across two chained applies must agree with
    // the one-shot update on the whole set (linear: exactly).
    let session = linear_fixture();
    for case in 0..6 {
        let mut rng = Rng64::from_seed_stream(0xC003, case);
        let mut removed = removal_set(&mut rng);
        removed.sort_unstable();
        removed.dedup();
        if removed.len() < 2 {
            continue;
        }
        let (first, second) = removed.split_at(removed.len() / 2);
        let chained = session.apply(Method::Priu, first).unwrap();
        // Re-express the second half in survivor indices.
        let second_local: Vec<usize> = second
            .iter()
            .map(|&i| i - first.iter().filter(|&&r| r < i).count())
            .collect();
        let stepwise = chained.session.update(Method::Priu, &second_local).unwrap();
        let oneshot = session.update(Method::Priu, &removed).unwrap();
        let cmp = compare_models(&oneshot.model, &stepwise.model).unwrap();
        assert!(
            cmp.l2_distance < 1e-7,
            "case {case}: distance {}",
            cmp.l2_distance
        );
    }
}

#[test]
fn interpolation_error_respects_the_theorem4_bound() {
    let interp = PiecewiseLinearSigmoid::new(20.0, 4096);
    for case in 0..64 {
        let mut rng = Rng64::from_seed_stream(0xC004, case);
        let x = rng.uniform(-25.0, 25.0);
        let exact = PiecewiseLinearSigmoid::exact(x);
        let approx = interp.evaluate(x);
        if x.abs() <= 20.0 {
            assert!(
                (exact - approx).abs() <= interp.error_bound() * 1.01,
                "x = {x}"
            );
        } else {
            // Outside the range the interpolant is clamped to f(±20), which
            // is within 1e-8 of the true tail value.
            assert!((exact - approx).abs() < 1e-8, "x = {x}");
        }
        // Coefficients always reproduce the evaluation.
        let seg = interp.coefficients(x);
        assert!((seg.evaluate(x) - approx).abs() < 1e-15, "x = {x}");
    }
}

#[test]
fn sigmoid_and_f_coefficients_are_complementary() {
    let interp = PiecewiseLinearSigmoid::new(20.0, 2048);
    for case in 0..64 {
        let mut rng = Rng64::from_seed_stream(0xC005, case);
        let x = rng.uniform(-19.0, 19.0);
        let f = interp.coefficients(x);
        let s = interp.sigmoid_coefficients(x);
        assert!(
            (f.evaluate(x) + s.evaluate(x) - 1.0).abs() < 1e-12,
            "x = {x}"
        );
        assert!(f.slope <= 0.0);
        assert!(s.slope >= 0.0);
    }
}
