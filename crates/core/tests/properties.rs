//! Property-based tests of the core invariants: for *arbitrary* removal
//! sets, PrIU's incrementally updated model must coincide (linear
//! regression) or near-coincide (logistic regression, Theorem 5) with the
//! model retrained on the surviving samples, and the interpolation error
//! must respect the Theorem 4 bound.

use std::sync::OnceLock;

use proptest::prelude::*;

use priu_core::baseline::retrain::{retrain_binary_logistic, retrain_linear};
use priu_core::interpolation::PiecewiseLinearSigmoid;
use priu_core::metrics::compare_models;
use priu_core::trainer::linear::{train_linear, TrainedLinear};
use priu_core::trainer::logistic::{train_binary_logistic, TrainedLogistic};
use priu_core::update::priu_linear::priu_update_linear;
use priu_core::update::priu_logistic::priu_update_logistic;
use priu_core::TrainerConfig;
use priu_data::catalog::Hyperparameters;
use priu_data::dataset::DenseDataset;
use priu_data::synthetic::classification::{generate_binary_classification, ClassificationConfig};
use priu_data::synthetic::regression::{generate_regression, RegressionConfig};

const N: usize = 160;

fn linear_fixture() -> &'static (DenseDataset, TrainedLinear) {
    static FIXTURE: OnceLock<(DenseDataset, TrainedLinear)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = generate_regression(&RegressionConfig {
            num_samples: N,
            num_features: 5,
            noise_std: 0.1,
            seed: 1001,
            ..Default::default()
        });
        let config = TrainerConfig::from_hyper(Hyperparameters {
            batch_size: 32,
            num_iterations: 120,
            learning_rate: 0.05,
            regularization: 0.05,
        })
        .with_seed(4)
        .with_opt_capture(false);
        let trained = train_linear(&data, &config).expect("training fixture");
        (data, trained)
    })
}

fn logistic_fixture() -> &'static (DenseDataset, TrainedLogistic) {
    static FIXTURE: OnceLock<(DenseDataset, TrainedLogistic)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = generate_binary_classification(&ClassificationConfig {
            num_samples: N,
            num_features: 6,
            separation: 3.0,
            label_noise: 0.5,
            seed: 1002,
            ..Default::default()
        });
        let config = TrainerConfig::from_hyper(Hyperparameters {
            batch_size: 32,
            num_iterations: 120,
            learning_rate: 0.3,
            regularization: 0.02,
        })
        .with_seed(5)
        .with_opt_capture(false);
        let trained = train_binary_logistic(&data, &config).expect("training fixture");
        (data, trained)
    })
}

/// Strategy: an arbitrary removal set of up to a quarter of the samples
/// (possibly with duplicates and in arbitrary order, which the API must
/// normalise).
fn removal_set() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..N, 0..(N / 4))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn priu_linear_matches_retraining_for_arbitrary_removals(removed in removal_set()) {
        let (data, trained) = linear_fixture();
        let updated = priu_update_linear(data, &trained.provenance, &removed).unwrap();
        let retrained = retrain_linear(data, &trained.provenance, &removed).unwrap();
        // For linear regression PrIU replays the exact update rule, so the
        // two results agree to floating-point accuracy.
        let cmp = compare_models(&retrained, &updated).unwrap();
        prop_assert!(cmp.l2_distance < 1e-7, "distance {}", cmp.l2_distance);
        prop_assert!(updated.is_finite());
    }

    #[test]
    fn priu_logistic_stays_within_theorem5_distance_of_retraining(removed in removal_set()) {
        let (data, trained) = logistic_fixture();
        let updated = priu_update_logistic(data, &trained.provenance, &removed).unwrap();
        let retrained = retrain_binary_logistic(data, &trained.provenance, &removed).unwrap();
        let cmp = compare_models(&retrained, &updated).unwrap();
        // Theorem 5: the gap grows with the removed fraction; for at most a
        // quarter of the samples the direction must stay essentially intact.
        prop_assert!(cmp.cosine_similarity > 0.98, "similarity {}", cmp.cosine_similarity);
        prop_assert!(updated.is_finite());
    }

    #[test]
    fn removing_nothing_is_a_fixed_point(seed in 0u64..1000) {
        // Independent of any seed-derived argument, the empty removal leaves
        // the linear model unchanged and the logistic model within the
        // linearisation tolerance.
        let _ = seed;
        let (ldata, ltrained) = linear_fixture();
        let lin = priu_update_linear(ldata, &ltrained.provenance, &[]).unwrap();
        prop_assert!(compare_models(&ltrained.model, &lin).unwrap().l2_distance < 1e-9);

        let (bdata, btrained) = logistic_fixture();
        let log = priu_update_logistic(bdata, &btrained.provenance, &[]).unwrap();
        prop_assert!(compare_models(&btrained.model, &log).unwrap().l2_distance < 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interpolation_error_respects_the_theorem4_bound(x in -25.0f64..25.0) {
        let interp = PiecewiseLinearSigmoid::new(20.0, 4096);
        let exact = PiecewiseLinearSigmoid::exact(x);
        let approx = interp.evaluate(x);
        if x.abs() <= 20.0 {
            prop_assert!((exact - approx).abs() <= interp.error_bound() * 1.01);
        } else {
            // Outside the range the interpolant is clamped to f(±20), which
            // is within 1e-8 of the true tail value.
            prop_assert!((exact - approx).abs() < 1e-8);
        }
        // Coefficients always reproduce the evaluation.
        let seg = interp.coefficients(x);
        prop_assert!((seg.evaluate(x) - approx).abs() < 1e-15);
    }

    #[test]
    fn sigmoid_and_f_coefficients_are_complementary(x in -19.0f64..19.0) {
        let interp = PiecewiseLinearSigmoid::new(20.0, 2048);
        let f = interp.coefficients(x);
        let s = interp.sigmoid_coefficients(x);
        prop_assert!((f.evaluate(x) + s.evaluate(x) - 1.0).abs() < 1e-12);
        prop_assert!(f.slope <= 0.0);
        prop_assert!(s.slope >= 0.0);
    }
}
