//! Verifies the workspace path's zero-allocation guarantee end to end with a
//! counting global allocator: the number of heap allocations performed by a
//! PrIU / PrIU-opt update call must be **independent of the iteration
//! count** — i.e. the replay loops allocate only per call (removal-set
//! normalisation, the produced model), never per iteration. A second check
//! asserts the workspace growth counter stays flat once warm, including
//! through the trainers' GD steps.
//!
//! Everything runs inside a single `#[test]` so no concurrent test pollutes
//! the allocation counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use priu_core::trainer::linear::{train_linear_with, TrainedLinear};
use priu_core::trainer::logistic::{train_binary_logistic_with, TrainedLogistic};
use priu_core::trainer::sparse::train_sparse_binary_logistic_with;
use priu_core::update::priu_linear::priu_update_linear_with;
use priu_core::update::priu_logistic::priu_update_logistic_with;
use priu_core::update::priu_opt_logistic::priu_opt_update_logistic_with;
use priu_core::update::sparse_logistic::priu_update_sparse_logistic_with;
use priu_core::{TrainerConfig, Workspace};
use priu_data::catalog::Hyperparameters;
use priu_data::dataset::{DenseDataset, SparseDataset};
use priu_data::synthetic::classification::{generate_binary_classification, ClassificationConfig};
use priu_data::synthetic::regression::{generate_regression, RegressionConfig};
use priu_data::synthetic::sparse_text::{generate_sparse_binary, SparseConfig};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn count_allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn regression_data() -> DenseDataset {
    generate_regression(&RegressionConfig {
        num_samples: 400,
        num_features: 8,
        noise_std: 0.1,
        seed: 90,
        ..Default::default()
    })
}

fn sparse_data() -> SparseDataset {
    generate_sparse_binary(&SparseConfig {
        num_samples: 400,
        num_features: 300,
        nnz_per_row: 12,
        informative_fraction: 0.2,
        seed: 92,
    })
}

fn classification_data() -> DenseDataset {
    generate_binary_classification(&ClassificationConfig {
        num_samples: 400,
        num_features: 8,
        separation: 3.0,
        label_noise: 0.3,
        seed: 91,
        ..Default::default()
    })
}

fn config_with_batch(iterations: usize, learning_rate: f64, batch_size: usize) -> TrainerConfig {
    TrainerConfig::from_hyper(Hyperparameters {
        batch_size,
        num_iterations: iterations,
        learning_rate,
        regularization: 0.01,
    })
    .with_seed(14)
}

fn config(iterations: usize, learning_rate: f64) -> TrainerConfig {
    config_with_batch(iterations, learning_rate, 50)
}

fn train_linear_pair(data: &DenseDataset) -> (TrainedLinear, TrainedLinear) {
    let mut ws = Workspace::new();
    (
        train_linear_with(data, &config(6, 0.05), &mut ws).unwrap(),
        train_linear_with(data, &config(48, 0.05), &mut ws).unwrap(),
    )
}

fn train_logistic_pair(data: &DenseDataset) -> (TrainedLogistic, TrainedLogistic) {
    let mut ws = Workspace::new();
    (
        train_binary_logistic_with(data, &config(10, 0.3), &mut ws).unwrap(),
        train_binary_logistic_with(data, &config(80, 0.3), &mut ws).unwrap(),
    )
}

#[test]
fn update_allocations_are_independent_of_iteration_count() {
    let removed = [3usize, 57, 200, 311];

    // Linear PrIU: 6 vs 48 provenance-tracked iterations.
    let data = regression_data();
    let (short, long) = train_linear_pair(&data);
    let mut ws = Workspace::new();
    // Warm-up pass over both provenances.
    priu_update_linear_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    priu_update_linear_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    ws.reset_grow_events();
    let allocs_short = count_allocations(|| {
        priu_update_linear_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    });
    let allocs_long = count_allocations(|| {
        priu_update_linear_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    });
    assert_eq!(
        allocs_short, allocs_long,
        "linear PrIU allocated per iteration ({allocs_short} vs {allocs_long} allocations \
         for 6 vs 48 iterations)"
    );
    assert_eq!(ws.grow_events(), 0, "warm workspace grew during replay");

    // Logistic PrIU and PrIU-opt: 10 vs 80 iterations (the opt capture's
    // phase-1 replay span and phase-2 recursion length both scale with τ).
    let data = classification_data();
    let (short, long) = train_logistic_pair(&data);
    let mut ws = Workspace::new();
    priu_update_logistic_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    priu_update_logistic_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    let allocs_short = count_allocations(|| {
        priu_update_logistic_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    });
    let allocs_long = count_allocations(|| {
        priu_update_logistic_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    });
    assert_eq!(
        allocs_short, allocs_long,
        "logistic PrIU allocated per iteration ({allocs_short} vs {allocs_long})"
    );

    priu_opt_update_logistic_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    priu_opt_update_logistic_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    let allocs_short = count_allocations(|| {
        priu_opt_update_logistic_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    });
    let allocs_long = count_allocations(|| {
        priu_opt_update_logistic_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    });
    assert_eq!(
        allocs_short, allocs_long,
        "logistic PrIU-opt allocated per iteration ({allocs_short} vs {allocs_long})"
    );

    // Dense-draw batch derivation (4·B >= n makes `sample_indices_into`
    // scratch over all n indices instead of the Floyd branch): the replay
    // loop must stay allocation-free there too.
    let data = regression_data();
    let cfg = |iters| config_with_batch(iters, 0.05, 120);
    let mut ws = Workspace::new();
    let short = train_linear_with(&data, &cfg(6), &mut ws).unwrap();
    let long = train_linear_with(&data, &cfg(48), &mut ws).unwrap();
    let mut ws = Workspace::new();
    priu_update_linear_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    priu_update_linear_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    let allocs_short = count_allocations(|| {
        priu_update_linear_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    });
    let allocs_long = count_allocations(|| {
        priu_update_linear_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    });
    assert_eq!(
        allocs_short, allocs_long,
        "dense-draw replay allocated per iteration ({allocs_short} vs {allocs_long})"
    );

    // Sparse PrIU: the (now parallel, kernel-based) CSR replay loop must
    // also allocate only per call — the gather/scatter kernels run on
    // workspace buffers, and mb-SGD-sized batches stay on the single-chunk
    // inline path of the worker pool.
    let data = sparse_data();
    let mut tws = Workspace::new();
    let short = train_sparse_binary_logistic_with(&data, &config(8, 0.3), &mut tws).unwrap();
    let long = train_sparse_binary_logistic_with(&data, &config(64, 0.3), &mut tws).unwrap();
    let mut ws = Workspace::new();
    priu_update_sparse_logistic_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    priu_update_sparse_logistic_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    ws.reset_grow_events();
    let allocs_short = count_allocations(|| {
        priu_update_sparse_logistic_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    });
    let allocs_long = count_allocations(|| {
        priu_update_sparse_logistic_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    });
    assert_eq!(
        allocs_short, allocs_long,
        "sparse PrIU allocated per iteration ({allocs_short} vs {allocs_long} allocations \
         for 8 vs 64 iterations)"
    );
    assert_eq!(
        ws.grow_events(),
        0,
        "warm workspace grew during sparse replay"
    );

    // Trainers: the GD step never grows a warm workspace, regardless of how
    // many iterations run (capture storage allocates, the step itself not).
    let data = regression_data();
    let mut ws = Workspace::new();
    train_linear_with(&data, &config(5, 0.05), &mut ws).unwrap();
    ws.reset_grow_events();
    train_linear_with(&data, &config(30, 0.05), &mut ws).unwrap();
    assert_eq!(
        ws.grow_events(),
        0,
        "warm workspace grew during linear training"
    );

    // The sparse trainer's GD step (rows_dot + scatter_rows kernels) shares
    // the guarantee: warm buffers never grow, however many iterations run.
    let data = sparse_data();
    let mut ws = Workspace::new();
    train_sparse_binary_logistic_with(&data, &config(5, 0.3), &mut ws).unwrap();
    ws.reset_grow_events();
    train_sparse_binary_logistic_with(&data, &config(40, 0.3), &mut ws).unwrap();
    assert_eq!(
        ws.grow_events(),
        0,
        "warm workspace grew during sparse training"
    );
}
