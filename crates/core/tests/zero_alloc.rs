//! Verifies the workspace path's zero-allocation guarantee end to end with a
//! counting global allocator: the number of heap allocations performed by a
//! PrIU / PrIU-opt update call must be **independent of the iteration
//! count** — i.e. the replay loops allocate only per call (removal-set
//! normalisation, the produced model), never per iteration. A second check
//! asserts the workspace growth counter stays flat once warm, including
//! through the trainers' GD steps.
//!
//! Everything runs inside a single `#[test]` so no concurrent test pollutes
//! the allocation counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use priu_core::baseline::closed_form::{closed_form_incremental_with, ClosedFormCapture};
use priu_core::baseline::retrain::retrain_sparse_binary_logistic_with;
use priu_core::trainer::linear::{train_linear_with, TrainedLinear};
use priu_core::trainer::logistic::{train_binary_logistic_with, TrainedLogistic};
use priu_core::trainer::sparse::train_sparse_binary_logistic_with;
use priu_core::update::priu_linear::priu_update_linear_with;
use priu_core::update::priu_logistic::priu_update_logistic_with;
use priu_core::update::priu_opt_logistic::priu_opt_update_logistic_with;
use priu_core::update::sparse_logistic::priu_update_sparse_logistic_with;
use priu_core::{
    DeletionEngine, Delta, DeltaRows, Method, SessionBuilder, TrainerConfig, Workspace,
};
use priu_data::catalog::Hyperparameters;
use priu_data::dataset::{DenseDataset, SparseDataset};
use priu_data::synthetic::classification::{generate_binary_classification, ClassificationConfig};
use priu_data::synthetic::regression::{generate_regression, RegressionConfig};
use priu_data::synthetic::sparse_text::{generate_sparse_binary, SparseConfig};
use priu_linalg::decomposition::{
    cholesky_factor_into, cholesky_solve_into, eigen_into, qr_factor_into, EigenScratch, QrScratch,
    SymmetricEigen,
};
use priu_linalg::Matrix;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn count_allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn regression_data() -> DenseDataset {
    generate_regression(&RegressionConfig {
        num_samples: 400,
        num_features: 8,
        noise_std: 0.1,
        seed: 90,
        ..Default::default()
    })
}

fn sparse_data() -> SparseDataset {
    generate_sparse_binary(&SparseConfig {
        num_samples: 400,
        num_features: 300,
        nnz_per_row: 12,
        informative_fraction: 0.2,
        seed: 92,
    })
}

fn classification_data() -> DenseDataset {
    generate_binary_classification(&ClassificationConfig {
        num_samples: 400,
        num_features: 8,
        separation: 3.0,
        label_noise: 0.3,
        seed: 91,
        ..Default::default()
    })
}

fn config_with_batch(iterations: usize, learning_rate: f64, batch_size: usize) -> TrainerConfig {
    TrainerConfig::from_hyper(Hyperparameters {
        batch_size,
        num_iterations: iterations,
        learning_rate,
        regularization: 0.01,
    })
    .with_seed(14)
}

fn config(iterations: usize, learning_rate: f64) -> TrainerConfig {
    config_with_batch(iterations, learning_rate, 50)
}

fn train_linear_pair(data: &DenseDataset) -> (TrainedLinear, TrainedLinear) {
    let mut ws = Workspace::new();
    (
        train_linear_with(data, &config(6, 0.05), &mut ws).unwrap(),
        train_linear_with(data, &config(48, 0.05), &mut ws).unwrap(),
    )
}

fn train_logistic_pair(data: &DenseDataset) -> (TrainedLogistic, TrainedLogistic) {
    let mut ws = Workspace::new();
    (
        train_binary_logistic_with(data, &config(10, 0.3), &mut ws).unwrap(),
        train_binary_logistic_with(data, &config(80, 0.3), &mut ws).unwrap(),
    )
}

#[test]
fn update_allocations_are_independent_of_iteration_count() {
    let removed = [3usize, 57, 200, 311];

    // Linear PrIU: 6 vs 48 provenance-tracked iterations.
    let data = regression_data();
    let (short, long) = train_linear_pair(&data);
    let mut ws = Workspace::new();
    // Warm-up pass over both provenances.
    priu_update_linear_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    priu_update_linear_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    ws.reset_grow_events();
    let allocs_short = count_allocations(|| {
        priu_update_linear_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    });
    let allocs_long = count_allocations(|| {
        priu_update_linear_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    });
    assert_eq!(
        allocs_short, allocs_long,
        "linear PrIU allocated per iteration ({allocs_short} vs {allocs_long} allocations \
         for 6 vs 48 iterations)"
    );
    assert_eq!(ws.grow_events(), 0, "warm workspace grew during replay");

    // Logistic PrIU and PrIU-opt: 10 vs 80 iterations (the opt capture's
    // phase-1 replay span and phase-2 recursion length both scale with τ).
    let data = classification_data();
    let (short, long) = train_logistic_pair(&data);
    let mut ws = Workspace::new();
    priu_update_logistic_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    priu_update_logistic_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    let allocs_short = count_allocations(|| {
        priu_update_logistic_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    });
    let allocs_long = count_allocations(|| {
        priu_update_logistic_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    });
    assert_eq!(
        allocs_short, allocs_long,
        "logistic PrIU allocated per iteration ({allocs_short} vs {allocs_long})"
    );

    priu_opt_update_logistic_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    priu_opt_update_logistic_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    let allocs_short = count_allocations(|| {
        priu_opt_update_logistic_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    });
    let allocs_long = count_allocations(|| {
        priu_opt_update_logistic_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    });
    assert_eq!(
        allocs_short, allocs_long,
        "logistic PrIU-opt allocated per iteration ({allocs_short} vs {allocs_long})"
    );

    // Dense-draw batch derivation (4·B >= n makes `sample_indices_into`
    // scratch over all n indices instead of the Floyd branch): the replay
    // loop must stay allocation-free there too.
    let data = regression_data();
    let cfg = |iters| config_with_batch(iters, 0.05, 120);
    let mut ws = Workspace::new();
    let short = train_linear_with(&data, &cfg(6), &mut ws).unwrap();
    let long = train_linear_with(&data, &cfg(48), &mut ws).unwrap();
    let mut ws = Workspace::new();
    priu_update_linear_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    priu_update_linear_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    let allocs_short = count_allocations(|| {
        priu_update_linear_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    });
    let allocs_long = count_allocations(|| {
        priu_update_linear_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    });
    assert_eq!(
        allocs_short, allocs_long,
        "dense-draw replay allocated per iteration ({allocs_short} vs {allocs_long})"
    );

    // Sparse PrIU: the (now parallel, kernel-based) CSR replay loop must
    // also allocate only per call — the gather/scatter kernels run on
    // workspace buffers, and mb-SGD-sized batches stay on the single-chunk
    // inline path of the worker pool.
    let data = sparse_data();
    let mut tws = Workspace::new();
    let short = train_sparse_binary_logistic_with(&data, &config(8, 0.3), &mut tws).unwrap();
    let long = train_sparse_binary_logistic_with(&data, &config(64, 0.3), &mut tws).unwrap();
    let mut ws = Workspace::new();
    priu_update_sparse_logistic_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    priu_update_sparse_logistic_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    ws.reset_grow_events();
    let allocs_short = count_allocations(|| {
        priu_update_sparse_logistic_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    });
    let allocs_long = count_allocations(|| {
        priu_update_sparse_logistic_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    });
    assert_eq!(
        allocs_short, allocs_long,
        "sparse PrIU allocated per iteration ({allocs_short} vs {allocs_long} allocations \
         for 8 vs 64 iterations)"
    );
    assert_eq!(
        ws.grow_events(),
        0,
        "warm workspace grew during sparse replay"
    );

    // Trainers: the GD step never grows a warm workspace, regardless of how
    // many iterations run (capture storage allocates, the step itself not).
    let data = regression_data();
    let mut ws = Workspace::new();
    train_linear_with(&data, &config(5, 0.05), &mut ws).unwrap();
    ws.reset_grow_events();
    train_linear_with(&data, &config(30, 0.05), &mut ws).unwrap();
    assert_eq!(
        ws.grow_events(),
        0,
        "warm workspace grew during linear training"
    );

    // The sparse trainer's GD step (rows_dot + scatter_rows kernels) shares
    // the guarantee: warm buffers never grow, however many iterations run.
    let data = sparse_data();
    let mut ws = Workspace::new();
    train_sparse_binary_logistic_with(&data, &config(5, 0.3), &mut ws).unwrap();
    ws.reset_grow_events();
    train_sparse_binary_logistic_with(&data, &config(40, 0.3), &mut ws).unwrap();
    assert_eq!(
        ws.grow_events(),
        0,
        "warm workspace grew during sparse training"
    );

    // BaseL's sparse retraining loop now rides the same batched CSR kernels
    // (one rows_dot_into gather + one scatter_rows_into reduction per
    // iteration): allocations are per call, never per iteration.
    let data = sparse_data();
    let mut tws = Workspace::new();
    let short = train_sparse_binary_logistic_with(&data, &config(8, 0.3), &mut tws).unwrap();
    let long = train_sparse_binary_logistic_with(&data, &config(64, 0.3), &mut tws).unwrap();
    let mut ws = Workspace::new();
    retrain_sparse_binary_logistic_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    retrain_sparse_binary_logistic_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    ws.reset_grow_events();
    let allocs_short = count_allocations(|| {
        retrain_sparse_binary_logistic_with(&data, &short.provenance, &removed, &mut ws).unwrap();
    });
    let allocs_long = count_allocations(|| {
        retrain_sparse_binary_logistic_with(&data, &long.provenance, &removed, &mut ws).unwrap();
    });
    assert_eq!(
        allocs_short, allocs_long,
        "sparse BaseL retraining allocated per iteration ({allocs_short} vs {allocs_long} \
         allocations for 8 vs 64 iterations)"
    );
    assert_eq!(
        ws.grow_events(),
        0,
        "warm workspace grew during sparse retraining"
    );

    // The delta engines' warm addition path: the appended explicit-batch
    // GD steps run entirely on workspace buffers, so an addition-only
    // `update_delta` allocates per *call* plus at most one chunk-list
    // header per appended batch — never per row and never per step.
    let data = regression_data();
    let session = SessionBuilder::dense(data, config(10, 0.05))
        .opt_capture(false)
        .fit()
        .unwrap();
    let extra = generate_regression(&RegressionConfig {
        num_samples: 400,
        num_features: 8,
        noise_std: 0.1,
        seed: 93,
        ..Default::default()
    });
    // batch_size is 50: 25 rows and 50 rows are one appended batch each,
    // 400 rows are eight.
    let half: Vec<usize> = (0..25).collect();
    let full: Vec<usize> = (0..50).collect();
    let delta_half = Delta::addition(DeltaRows::Dense(extra.select(&half)));
    let delta_full = Delta::addition(DeltaRows::Dense(extra.select(&full)));
    let delta_eight = Delta::addition(DeltaRows::Dense(extra.clone()));
    for delta in [&delta_half, &delta_full, &delta_eight] {
        session.update_delta(Method::Priu, delta).unwrap(); // warm-up
    }
    let allocs_half = count_allocations(|| {
        session.update_delta(Method::Priu, &delta_half).unwrap();
    });
    let allocs_full = count_allocations(|| {
        session.update_delta(Method::Priu, &delta_full).unwrap();
    });
    let allocs_eight = count_allocations(|| {
        session.update_delta(Method::Priu, &delta_eight).unwrap();
    });
    assert_eq!(
        allocs_half, allocs_full,
        "the appended GD step allocated per row ({allocs_half} vs {allocs_full} \
         allocations for 25 vs 50 rows in one batch)"
    );
    assert!(
        allocs_eight - allocs_full <= 7,
        "the appended GD step allocated per batch beyond the chunk-list \
         headers ({allocs_full} allocations for 1 batch vs {allocs_eight} for 8)"
    );

    offline_factorization_allocations_are_per_call_constants();
    simd_dispatch_adds_no_warm_path_cost();
}

/// The `PRIU_SIMD` runtime dispatch must be free in the warm path: with
/// warm caller-owned buffers, the dispatched kernels allocate nothing per
/// call on *either* level (level resolution is a cached read — no env
/// lookup, no detection, no boxing of kernel variants).
fn simd_dispatch_adds_no_warm_path_cost() {
    use priu_linalg::simd::{self, SimdLevel};

    let mut levels = vec![SimdLevel::Portable];
    if simd::avx2_supported() {
        levels.push(SimdLevel::Avx2);
    }

    // Single-chunk shapes (below the 2×256-row parallel threshold) pinned
    // to one thread: the documented allocation-free kernel path.
    let a = Matrix::from_fn(200, 54, |i, j| (((i * 13 + j * 7) % 17) as f64 - 8.0) / 9.0);
    let x: Vec<f64> = (0..54).map(|i| (i as f64 * 0.29).sin()).collect();
    let t: Vec<f64> = (0..200).map(|i| (i as f64 * 0.17).cos()).collect();
    let mut out_n = vec![0.0; 200];
    let mut out_m = vec![0.0; 54];
    let sparse = sparse_data();
    let rows: Vec<usize> = (0..50).collect();
    let alphas = vec![0.25; 50];
    let mut dots = vec![0.0; 50];
    let mut acc = vec![0.0; sparse.num_features()];

    priu_linalg::par::with_threads(1, || {
        for &level in &levels {
            simd::with_level(level, || {
                // Warm-up resolves the level cache and any lazy buffers.
                a.matvec_into(&x, &mut out_n).unwrap();
                a.transpose_matvec_into(&t, &mut out_m).unwrap();
                sparse.x.rows_dot_into(&rows, &acc, &mut dots).unwrap();
                sparse
                    .x
                    .scatter_rows_into(&rows, &alphas, &mut acc)
                    .unwrap();
                let allocs = count_allocations(|| {
                    a.matvec_into(&x, &mut out_n).unwrap();
                    a.transpose_matvec_into(&t, &mut out_m).unwrap();
                    let d = simd::dot(&x, &x);
                    simd::axpy(&mut out_m, d, &t[..54]);
                    priu_linalg::scale_add_slices(&mut out_m, 0.99, 0.01, &t[..54]);
                    sparse.x.rows_dot_into(&rows, &acc, &mut dots).unwrap();
                    sparse
                        .x
                        .scatter_rows_into(&rows, &alphas, &mut acc)
                        .unwrap();
                });
                assert_eq!(
                    allocs, 0,
                    "warm dispatched kernels allocated {allocs} times at level {level}"
                );
            });
        }
    });
}

/// The PrIU-opt offline capture and closed-form baseline paths: with warm
/// (pre-sized) buffers, every factorisation entry point allocates a
/// per-call constant — zero for the pure `_into` kernels, exactly the
/// stored eigenpairs / model for the capture and the closed-form update —
/// independent of how many problems have been factorised before.
fn offline_factorization_allocations_are_per_call_constants() {
    // The zero / small-constant assertions are pinned to one thread: that
    // is the documented scope of the guarantee (kernels on the calling
    // thread). With PRIU_THREADS > 1 a multi-chunk pass additionally
    // allocates its small per-job pool handle — the deliberate exemption of
    // DESIGN.md §3.3 — which the ambient-thread drift checks below cover.
    let m = 96; // > 64: crosses the blocked-Cholesky panel boundary
    let base = Matrix::from_fn(m, m, |i, j| (((i * 23 + j * 11) % 19) as f64 - 9.0) / 10.0);
    let mut spd = base.gram();
    spd.add_diagonal_mut(m as f64).unwrap();
    let mut l = Matrix::zeros(0, 0);
    let mut x = vec![0.0; m];
    let b: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut eig_scratch = EigenScratch::default();
    let tall = Matrix::from_fn(300, 40, |i, j| {
        (((i * 7 + j * 13) % 23) as f64 - 11.0) / 12.0
    });
    let mut scratch = QrScratch::default();
    let (mut q, mut r) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
    priu_linalg::par::with_threads(1, || {
        cholesky_factor_into(&spd, &mut l).unwrap(); // warm-up
        cholesky_solve_into(&l, &b, &mut x).unwrap();
        let allocs = count_allocations(|| {
            cholesky_factor_into(&spd, &mut l).unwrap();
            cholesky_solve_into(&l, &b, &mut x).unwrap();
        });
        assert_eq!(
            allocs, 0,
            "warm blocked Cholesky factor+solve allocated {allocs} times"
        );

        qr_factor_into(&tall, &mut q, &mut r, &mut scratch).unwrap(); // warm-up
        let allocs = count_allocations(|| {
            qr_factor_into(&tall, &mut q, &mut r, &mut scratch).unwrap();
        });
        assert_eq!(allocs, 0, "warm blocked QR allocated {allocs} times");

        // The eigendecomposition behind the PrIU-opt offline capture: the
        // preallocated `eigen_into` entry point is fully warm-allocation-free
        // — the eigenpairs live inside the scratch.
        eigen_into(&spd, &mut eig_scratch).unwrap(); // warm-up
        let allocs = count_allocations(|| {
            eigen_into(&spd, &mut eig_scratch).unwrap();
        });
        assert_eq!(
            allocs, 0,
            "warm eigen_into allocated {allocs} times — the tridiag+QL \
             pipeline must run entirely inside EigenScratch"
        );

        // The owning wrapper still allocates exactly the stored eigenpairs —
        // the same constant no matter how many captures ran.
        SymmetricEigen::new_with(&spd, &mut eig_scratch).unwrap(); // warm-up
        let allocs = count_allocations(|| {
            SymmetricEigen::new_with(&spd, &mut eig_scratch).unwrap();
        });
        assert!(
            allocs <= 4,
            "warm eigendecomposition should allocate only its stored \
             eigenpairs, saw {allocs} allocations"
        );
    });

    // At the ambient thread count the counts may include per-job pool
    // handles, but they must still be a per-call constant.
    SymmetricEigen::new_with(&spd, &mut eig_scratch).unwrap(); // spawn workers
    let allocs_second = count_allocations(|| {
        SymmetricEigen::new_with(&spd, &mut eig_scratch).unwrap();
    });
    let allocs_third = count_allocations(|| {
        SymmetricEigen::new_with(&spd, &mut eig_scratch).unwrap();
    });
    assert_eq!(
        allocs_second, allocs_third,
        "warm eigendecomposition allocations drifted between calls"
    );

    // The closed-form baseline path end to end: downdate + blocked Cholesky
    // + substitution on workspace buffers. Per-call allocations are a
    // constant (the produced model), independent of the problem count.
    let data = regression_data();
    let capture = ClosedFormCapture::build(&data, 1e-3).unwrap();
    let removed = [3usize, 57, 200, 311];
    let mut ws = Workspace::sized_for(data.num_features(), removed.len(), 1);
    ws.reserve_decompositions(data.num_features());
    closed_form_incremental_with(&data, &capture, &removed, &mut ws).unwrap(); // warm-up
    ws.reset_grow_events();
    let allocs_one = count_allocations(|| {
        closed_form_incremental_with(&data, &capture, &removed, &mut ws).unwrap();
    });
    let allocs_four = count_allocations(|| {
        for _ in 0..4 {
            closed_form_incremental_with(&data, &capture, &removed, &mut ws).unwrap();
        }
    });
    assert_eq!(
        allocs_four,
        4 * allocs_one,
        "closed-form update allocations are not a per-call constant \
         ({allocs_one} for one call vs {allocs_four} for four)"
    );
    assert_eq!(
        ws.grow_events(),
        0,
        "warm workspace grew during closed-form updates"
    );

    // The PrIU-opt offline capture inside training: two identical training
    // runs on a warm workspace allocate identically — the capture's
    // factorisation adds no per-run drift on top of the (by-design) stored
    // provenance.
    let mut ws = Workspace::sized_for(data.num_features(), 50, 1);
    ws.reserve_decompositions(data.num_features());
    let cfg = config(12, 0.05); // capture_opt defaults to on
    train_linear_with(&data, &cfg, &mut ws).unwrap(); // warm-up
    let allocs_a = count_allocations(|| {
        train_linear_with(&data, &cfg, &mut ws).unwrap();
    });
    let allocs_b = count_allocations(|| {
        train_linear_with(&data, &cfg, &mut ws).unwrap();
    });
    assert_eq!(
        allocs_a, allocs_b,
        "offline training + PrIU-opt capture allocations drifted between runs"
    );
}
