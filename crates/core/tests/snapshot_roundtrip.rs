//! Bit-exact snapshot round-trips for every engine family.
//!
//! The durability layer persists sessions with
//! `Session::to_snapshot_bytes` / `from_snapshot_bytes`; a recovered
//! server is only bitwise-identical to the pre-crash one if that
//! round-trip is the identity on every engine family and capture kind.
//! Each case checks three levels:
//!
//! 1. **Bytes**: re-encoding the decoded session reproduces the exact
//!    blob (the codec has one canonical form).
//! 2. **Model bits**: every weight survives as the same `f64::to_bits`
//!    pattern (NaN payloads and signed zeros included, by construction of
//!    the bit-level codec).
//! 3. **Behaviour**: applying the same delta to the original and the
//!    decoded session yields bitwise-identical successors on every
//!    `PRIU_THREADS` × `PRIU_SIMD` grid leg — the restored provenance
//!    replays exactly, not just approximately.
//!
//! Post-delta sessions are round-tripped too: a successor session carries
//! the capture kinds that only exist after a deletion (deflated Gram
//! caches, restricted explicit-batch schedules), which a fresh fit never
//! exercises.

use priu_core::{
    Compression, DeletionEngine, Delta, DeltaRows, Method, Session, SessionBuilder, TrainerConfig,
};
use priu_data::catalog::Hyperparameters;
use priu_data::synthetic::classification::{
    generate_binary_classification, generate_multiclass_classification, ClassificationConfig,
};
use priu_data::synthetic::regression::{generate_regression, RegressionConfig};
use priu_data::synthetic::sparse_text::{generate_sparse_binary, SparseConfig};
use priu_linalg::par;
use priu_linalg::simd::{self, SimdLevel};

const N: usize = 120;

fn hyper() -> Hyperparameters {
    Hyperparameters {
        batch_size: 24,
        num_iterations: 40,
        learning_rate: 0.05,
        regularization: 0.05,
    }
}

fn linear(compression: Compression, opt: bool, seed: u64) -> Session {
    let data = generate_regression(&RegressionConfig {
        num_samples: N,
        num_features: 5,
        noise_std: 0.1,
        seed,
        ..Default::default()
    });
    SessionBuilder::dense(data, TrainerConfig::from_hyper(hyper()))
        .seed(4)
        .compression(compression)
        .opt_capture(opt)
        .fit()
        .expect("linear fixture")
}

fn logistic(seed: u64) -> Session {
    let data = generate_binary_classification(&ClassificationConfig {
        num_samples: N,
        num_features: 6,
        separation: 3.0,
        label_noise: 0.5,
        seed,
        ..Default::default()
    });
    let config = TrainerConfig::from_hyper(Hyperparameters {
        learning_rate: 0.3,
        ..hyper()
    });
    SessionBuilder::dense(data, config)
        .seed(5)
        .fit()
        .expect("logistic fixture")
}

fn multinomial(seed: u64) -> Session {
    let data = generate_multiclass_classification(&ClassificationConfig {
        num_samples: N,
        num_features: 5,
        num_classes: 4,
        separation: 3.0,
        label_noise: 0.5,
        seed,
    });
    let config = TrainerConfig::from_hyper(Hyperparameters {
        learning_rate: 0.3,
        ..hyper()
    });
    SessionBuilder::dense(data, config)
        .seed(6)
        .fit()
        .expect("multinomial fixture")
}

fn sparse(seed: u64) -> Session {
    let data = generate_sparse_binary(&SparseConfig {
        num_samples: N,
        num_features: 300,
        nnz_per_row: 12,
        informative_fraction: 0.2,
        seed,
    });
    let config = TrainerConfig::from_hyper(Hyperparameters {
        learning_rate: 0.3,
        ..hyper()
    });
    SessionBuilder::sparse(data, config)
        .seed(7)
        .fit()
        .expect("sparse fixture")
}

/// Every fixture the durability layer must round-trip, labelled, with a
/// method its family supports for the behavioural check.
fn fixtures() -> Vec<(&'static str, Session, Method)> {
    vec![
        (
            "linear-exact-opt",
            linear(Compression::Exact { rank: 4 }, true, 21),
            Method::PriuOpt,
        ),
        (
            "linear-exact",
            linear(Compression::Exact { rank: 4 }, false, 22),
            Method::Priu,
        ),
        (
            "linear-randomized",
            linear(
                Compression::Randomized {
                    rank: 4,
                    oversample: 2,
                },
                false,
                23,
            ),
            Method::Priu,
        ),
        (
            "linear-none",
            linear(Compression::None, false, 24),
            Method::Retrain,
        ),
        ("logistic", logistic(31), Method::Priu),
        ("multinomial", multinomial(41), Method::Priu),
        ("sparse-logistic", sparse(51), Method::Priu),
    ]
}

fn model_bits(session: &Session) -> Vec<u64> {
    session
        .model()
        .flatten()
        .iter()
        .map(|w| w.to_bits())
        .collect()
}

/// The CI determinism grid: apply-thread counts × available SIMD levels.
fn legs() -> Vec<(usize, SimdLevel)> {
    let mut legs = Vec::new();
    for threads in [1usize, 4] {
        for level in simd::available_levels() {
            legs.push((threads, level));
        }
    }
    legs
}

fn pinned<R>(threads: usize, level: SimdLevel, f: impl FnOnce() -> R) -> R {
    par::with_threads(threads, || simd::with_level(level, f))
}

/// Round-trips one session and checks bytes, bits, and replay behaviour.
fn assert_roundtrip(label: &str, session: &Session, method: Method) {
    let bytes = session.to_snapshot_bytes();
    let restored = Session::from_snapshot_bytes(&bytes)
        .unwrap_or_else(|e| panic!("{label}: decode failed: {e}"));
    assert_eq!(
        restored.to_snapshot_bytes(),
        bytes,
        "{label}: re-encode changed the blob"
    );
    assert_eq!(
        model_bits(&restored),
        model_bits(session),
        "{label}: model bits drifted"
    );
    assert_eq!(restored.num_samples(), session.num_samples());

    // Behaviour: the same delta replays bitwise-identically on every grid
    // leg. Remove a mid-stride set; skip legs the method can't run on.
    let removed: Vec<usize> = (0..session.num_samples()).step_by(7).take(8).collect();
    for (threads, level) in legs() {
        let a = pinned(threads, level, || session.apply(method, &removed))
            .unwrap_or_else(|e| panic!("{label}: original apply failed: {e}"));
        let b = pinned(threads, level, || restored.apply(method, &removed))
            .unwrap_or_else(|e| panic!("{label}: restored apply failed: {e}"));
        assert_eq!(
            model_bits(&a.session),
            model_bits(&b.session),
            "{label}: divergent replay on leg ({threads}, {level:?})"
        );
        assert_eq!(
            a.session.to_snapshot_bytes(),
            b.session.to_snapshot_bytes(),
            "{label}: divergent successor state on leg ({threads}, {level:?})"
        );
    }
}

#[test]
fn every_family_round_trips_bitwise() {
    for (label, session, method) in fixtures() {
        assert_roundtrip(label, &session, method);
    }
}

#[test]
fn post_delta_successors_round_trip_bitwise() {
    // A successor session carries deletion-only capture kinds: deflated
    // Gram caches, restricted (explicit-batch) schedules, appended
    // coefficient lists. Chain one mixed delta, then round-trip.
    for (label, session, method) in fixtures() {
        let removed: Vec<usize> = vec![2, 3, 17, 40];
        let added = match &session {
            Session::SparseLogistic(_) => None, // server adds are dense-only
            _ => {
                let width = session.model().num_features();
                let k = 3;
                let features: Vec<f64> = (0..k * width).map(|i| (i as f64 * 0.37).sin()).collect();
                let labels: Vec<f64> = match session.task() {
                    priu_core::TaskKind::Regression => vec![0.3, -0.7, 1.1],
                    priu_core::TaskKind::BinaryClassification => vec![1.0, -1.0, 1.0],
                    priu_core::TaskKind::MulticlassClassification { .. } => vec![0.0, 2.0, 1.0],
                };
                let x = priu_linalg::Matrix::from_vec(k, width, features).unwrap();
                let labels = match session.task() {
                    priu_core::TaskKind::Regression => priu_data::dataset::Labels::Continuous(
                        priu_linalg::Vector::from_vec(labels),
                    ),
                    priu_core::TaskKind::BinaryClassification => {
                        priu_data::dataset::Labels::Binary(priu_linalg::Vector::from_vec(labels))
                    }
                    priu_core::TaskKind::MulticlassClassification { num_classes } => {
                        priu_data::dataset::Labels::Multiclass {
                            classes: labels.into_iter().map(|l| l as u32).collect(),
                            num_classes,
                        }
                    }
                };
                Some(DeltaRows::Dense(priu_data::dataset::DenseDataset::new(
                    x, labels,
                )))
            }
        };
        let delta = Delta { removed, added };
        let successor = match session.apply_delta(method, &delta) {
            Ok(chained) => chained.session,
            // Families that can't run this method on a mixed delta are
            // covered by the fresh-fit test above.
            Err(_) => continue,
        };
        assert_roundtrip(&format!("{label}-successor"), &successor, method);
    }
}

#[test]
fn corrupt_session_blobs_fail_typed_never_panic() {
    let session = linear(Compression::Exact { rank: 4 }, true, 61);
    let bytes = session.to_snapshot_bytes();
    // Every truncation offset: typed error, no panic.
    for cut in 0..bytes.len().min(512) {
        assert!(
            Session::from_snapshot_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} decoded"
        );
    }
    // And truncations near the end, where the closed-form capture lives.
    for cut in bytes.len().saturating_sub(512)..bytes.len() {
        assert!(Session::from_snapshot_bytes(&bytes[..cut]).is_err());
    }
    // A bad family tag fails typed.
    let mut bad = bytes.clone();
    bad[0] = 99;
    assert!(Session::from_snapshot_bytes(&bad).is_err());
    // Trailing garbage is rejected, not silently ignored.
    let mut padded = bytes;
    padded.push(0);
    assert!(Session::from_snapshot_bytes(&padded).is_err());
}
