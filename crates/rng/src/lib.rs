//! # priu-rng
//!
//! A small, self-contained deterministic random-number generator used across
//! the PrIU workspace: synthetic dataset generation, mini-batch schedules,
//! dirty-sample selection and randomized range finders. Everything is
//! reproducible from explicit `(seed, stream)` pairs and the crate has no
//! dependencies, so the workspace builds in fully offline environments.
//!
//! The core generator is xoshiro256** (Blackman & Vigna), seeded through
//! SplitMix64 — the same construction the `rand` crate's `SmallRng` family
//! uses. Statistical quality is far beyond what the synthetic-data and
//! sketching use cases here need.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a single seed (stream 0).
    pub fn from_seed(seed: u64) -> Self {
        Self::from_seed_stream(seed, 0)
    }

    /// Creates a generator from a seed and a stream identifier, so that
    /// independent components (features, labels, noise, batches) never share
    /// a sequence even when they share a user-facing seed.
    pub fn from_seed_stream(seed: u64, stream: u64) -> Self {
        let mut sm = seed ^ stream.wrapping_mul(GOLDEN).rotate_left(17);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [GOLDEN, 1, 2, 3];
        }
        Self { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or the bounds are non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform requires lo < hi, got [{lo}, {hi})");
        assert!(
            lo.is_finite() && hi.is_finite(),
            "uniform bounds must be finite"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform index in `[0, n)` (unbiased via rejection sampling).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires a non-empty range");
        let n = n as u64;
        // Lemire-style widening multiply with a rejection zone.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let wide = (x as u128) * (n as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as usize;
            }
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `[0, n)` without replacement, in
    /// random order. Uses Floyd's algorithm for sparse draws and a partial
    /// Fisher–Yates shuffle for dense ones.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        self.sample_indices_into(n, k, &mut out, &mut scratch);
        out
    }

    /// Like [`Rng64::sample_indices`], writing the draw into `out` and using
    /// `scratch` as working storage — both buffers are reused across calls,
    /// so a warmed caller allocates nothing. Draws identical indices to
    /// [`Rng64::sample_indices`] for the same generator state.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices_into(
        &mut self,
        n: usize,
        k: usize,
        out: &mut Vec<usize>,
        scratch: &mut Vec<usize>,
    ) {
        assert!(k <= n, "cannot draw {k} distinct indices from [0, {n})");
        out.clear();
        scratch.clear();
        if k == 0 {
            return;
        }
        if k * 4 >= n {
            // Dense draw: partial shuffle of the full index range.
            scratch.extend(0..n);
            for i in 0..k {
                let j = i + self.index(n - i);
                scratch.swap(i, j);
            }
            out.extend_from_slice(&scratch[..k]);
        } else {
            // Sparse draw: Floyd's algorithm with a sorted membership vec.
            scratch.reserve(k);
            for j in (n - k)..n {
                let t = self.index(j + 1);
                let pick = if scratch.binary_search(&t).is_ok() {
                    j
                } else {
                    t
                };
                let pos = scratch.binary_search(&pick).unwrap_err();
                scratch.insert(pos, pick);
                out.push(pick);
            }
        }
    }

    /// One standard-normal sample (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u1 = self.uniform(f64::EPSILON, 1.0);
            let u2 = self.next_f64();
            let v = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            if v.is_finite() {
                return v;
            }
        }
    }

    /// One standard Gumbel sample (`-ln(-ln U)`), used for sampling from a
    /// categorical distribution via the Gumbel-max trick.
    pub fn standard_gumbel(&mut self) -> f64 {
        let u = self.uniform(f64::EPSILON, 1.0);
        -(-u.ln()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_separated() {
        let a: Vec<u64> = {
            let mut r = Rng64::from_seed_stream(42, 0);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::from_seed_stream(42, 0);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng64::from_seed_stream(42, 1);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut r = Rng64::from_seed(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn index_is_unbiased_enough_and_in_range() {
        let mut r = Rng64::from_seed(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.index(5)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut r = Rng64::from_seed(11);
        for &(n, k) in &[(100usize, 3usize), (100, 50), (100, 100), (10, 0)] {
            let s = r.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates drawing {k} from {n}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng64::from_seed(5);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be identity");
    }

    #[test]
    fn normal_samples_have_reasonable_moments() {
        let mut r = Rng64::from_seed(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn gumbel_samples_are_finite() {
        let mut r = Rng64::from_seed(13);
        for _ in 0..1000 {
            assert!(r.standard_gumbel().is_finite());
        }
    }
}
