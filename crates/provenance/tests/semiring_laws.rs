//! Property-based tests: provenance polynomials form a commutative semiring,
//! specialisation is a homomorphism, and annotated-matrix deletion
//! propagation commutes with numeric evaluation.

use proptest::prelude::*;
use priu_linalg::Matrix;
use priu_provenance::{AnnotatedMatrix, Monomial, Polynomial, Token, Valuation};

/// Strategy: a random provenance polynomial over tokens 0..4 with up to 4
/// monomials of degree up to 3.
fn polynomial() -> impl Strategy<Value = Polynomial> {
    proptest::collection::vec(
        (
            proptest::collection::vec((0u32..4, 1u32..3), 0..3),
            1u64..3,
        ),
        0..4,
    )
    .prop_map(|terms| {
        let mut poly = Polynomial::zero();
        for (powers, coeff) in terms {
            let mut monomial_poly = Polynomial::one();
            for (tok, exp) in powers {
                monomial_poly = monomial_poly.mul(&Polynomial::token_power(Token(tok), exp));
            }
            for _ in 0..coeff {
                poly = poly.add(&monomial_poly);
            }
        }
        poly
    })
}

/// Strategy: a deletion valuation over tokens 0..4.
fn valuation() -> impl Strategy<Value = Valuation> {
    proptest::collection::vec(0u32..4, 0..4)
        .prop_map(|tokens| Valuation::deleting(tokens.into_iter().map(Token)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_is_commutative_and_associative(a in polynomial(), b in polynomial(), c in polynomial()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        prop_assert_eq!(a.add(&Polynomial::zero()), a.clone());
    }

    #[test]
    fn multiplication_is_commutative_associative_and_unital(a in polynomial(), b in polynomial(), c in polynomial()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        prop_assert_eq!(a.mul(&Polynomial::one()), a.clone());
        prop_assert!(a.mul(&Polynomial::zero()).is_zero());
    }

    #[test]
    fn multiplication_distributes_over_addition(a in polynomial(), b in polynomial(), c in polynomial()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn specialisation_is_a_semiring_homomorphism(a in polynomial(), b in polynomial(), v in valuation()) {
        // spec(a + b) = spec(a) + spec(b) and spec(a · b) = spec(a) · spec(b)
        // over the naturals.
        prop_assert_eq!(a.add(&b).specialize(&v), a.specialize(&v) + b.specialize(&v));
        prop_assert_eq!(a.mul(&b).specialize(&v), a.specialize(&v) * b.specialize(&v));
        prop_assert_eq!(Polynomial::one().specialize(&v), 1);
        prop_assert_eq!(Polynomial::zero().specialize(&v), 0);
    }

    #[test]
    fn idempotent_quotient_is_idempotent_and_preserves_mentions(a in polynomial()) {
        let once = a.idempotent();
        prop_assert_eq!(once.idempotent(), once.clone());
        for tok in 0u32..4 {
            prop_assert_eq!(a.mentions(Token(tok)), once.mentions(Token(tok)));
        }
    }

    #[test]
    fn monomial_multiplication_adds_exponents(e1 in 1u32..4, e2 in 1u32..4) {
        let m = Monomial::from_power(Token(0), e1).mul(&Monomial::from_power(Token(0), e2));
        prop_assert_eq!(m.exponent(Token(0)), e1 + e2);
        prop_assert_eq!(m.degree(), e1 + e2);
    }

    #[test]
    fn annotated_matrix_specialisation_commutes_with_addition(
        a in polynomial(),
        b in polynomial(),
        v in valuation(),
        entries in proptest::collection::vec(-1.0f64..1.0, 4),
    ) {
        let m = Matrix::from_vec(2, 2, entries).unwrap();
        let expr_a = AnnotatedMatrix::annotated(a, m.clone());
        let expr_b = AnnotatedMatrix::annotated(b, m.clone());
        let sum_then_spec = expr_a.add(&expr_b).specialize(&v);
        let spec_then_sum = &expr_a.specialize(&v) + &expr_b.specialize(&v);
        prop_assert!((&sum_then_spec - &spec_then_sum).frobenius_norm() < 1e-12);
    }

    #[test]
    fn deleting_a_token_zeroes_exactly_the_terms_mentioning_it(
        tok in 0u32..4,
        entries in proptest::collection::vec(-1.0f64..1.0, 4),
    ) {
        let m = Matrix::from_vec(2, 2, entries).unwrap();
        let mentioned = AnnotatedMatrix::annotated(Polynomial::from_token(Token(tok)), m.clone());
        let unmentioned = AnnotatedMatrix::annotated(Polynomial::from_token(Token(tok + 10)), m.clone());
        let v = Valuation::deleting([Token(tok)]);
        prop_assert_eq!(mentioned.specialize(&v).max_abs(), 0.0);
        prop_assert!((&unmentioned.specialize(&v) - &m).frobenius_norm() < 1e-12);
    }
}
