//! Property-based tests: provenance polynomials form a commutative semiring,
//! specialisation is a homomorphism, and annotated-matrix deletion
//! propagation commutes with numeric evaluation.
//!
//! Inputs are drawn from the workspace's deterministic RNG (one seed per
//! case) rather than an external property-testing framework, so the suite
//! runs in fully offline builds while still sweeping many random instances.

use priu_linalg::Matrix;
use priu_provenance::{AnnotatedMatrix, Monomial, Polynomial, Token, Valuation};
use priu_rng::Rng64;

const CASES: u64 = 64;

/// A random provenance polynomial over tokens 0..4 with up to 4 monomials of
/// degree up to 3 (mirrors the old proptest strategy).
fn polynomial(rng: &mut Rng64) -> Polynomial {
    let mut poly = Polynomial::zero();
    for _ in 0..rng.index(4) {
        let mut monomial_poly = Polynomial::one();
        for _ in 0..rng.index(3) {
            let tok = rng.index(4) as u32;
            let exp = 1 + rng.index(2) as u32;
            monomial_poly = monomial_poly.mul(&Polynomial::token_power(Token(tok), exp));
        }
        let coeff = 1 + rng.index(2) as u64;
        for _ in 0..coeff {
            poly = poly.add(&monomial_poly);
        }
    }
    poly
}

/// A deletion valuation over tokens 0..4.
fn valuation(rng: &mut Rng64) -> Valuation {
    let count = rng.index(4);
    Valuation::deleting((0..count).map(|_| Token(rng.index(4) as u32)))
}

#[test]
fn addition_is_commutative_and_associative() {
    for case in 0..CASES {
        let mut rng = Rng64::from_seed_stream(0xB001, case);
        let a = polynomial(&mut rng);
        let b = polynomial(&mut rng);
        let c = polynomial(&mut rng);
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        assert_eq!(a.add(&Polynomial::zero()), a.clone());
    }
}

#[test]
fn multiplication_is_commutative_associative_and_unital() {
    for case in 0..CASES {
        let mut rng = Rng64::from_seed_stream(0xB002, case);
        let a = polynomial(&mut rng);
        let b = polynomial(&mut rng);
        let c = polynomial(&mut rng);
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        assert_eq!(a.mul(&Polynomial::one()), a.clone());
        assert!(a.mul(&Polynomial::zero()).is_zero());
    }
}

#[test]
fn multiplication_distributes_over_addition() {
    for case in 0..CASES {
        let mut rng = Rng64::from_seed_stream(0xB003, case);
        let a = polynomial(&mut rng);
        let b = polynomial(&mut rng);
        let c = polynomial(&mut rng);
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }
}

#[test]
fn specialisation_is_a_semiring_homomorphism() {
    for case in 0..CASES {
        let mut rng = Rng64::from_seed_stream(0xB004, case);
        let a = polynomial(&mut rng);
        let b = polynomial(&mut rng);
        let v = valuation(&mut rng);
        // spec(a + b) = spec(a) + spec(b) and spec(a · b) = spec(a) · spec(b)
        // over the naturals.
        assert_eq!(
            a.add(&b).specialize(&v),
            a.specialize(&v) + b.specialize(&v)
        );
        assert_eq!(
            a.mul(&b).specialize(&v),
            a.specialize(&v) * b.specialize(&v)
        );
        assert_eq!(Polynomial::one().specialize(&v), 1);
        assert_eq!(Polynomial::zero().specialize(&v), 0);
    }
}

#[test]
fn idempotent_quotient_is_idempotent_and_preserves_mentions() {
    for case in 0..CASES {
        let mut rng = Rng64::from_seed_stream(0xB005, case);
        let a = polynomial(&mut rng);
        let once = a.idempotent();
        assert_eq!(once.idempotent(), once.clone());
        for tok in 0u32..4 {
            assert_eq!(a.mentions(Token(tok)), once.mentions(Token(tok)));
        }
    }
}

#[test]
fn monomial_multiplication_adds_exponents() {
    for case in 0..CASES {
        let mut rng = Rng64::from_seed_stream(0xB006, case);
        let e1 = 1 + rng.index(3) as u32;
        let e2 = 1 + rng.index(3) as u32;
        let m = Monomial::from_power(Token(0), e1).mul(&Monomial::from_power(Token(0), e2));
        assert_eq!(m.exponent(Token(0)), e1 + e2);
        assert_eq!(m.degree(), e1 + e2);
    }
}

#[test]
fn annotated_matrix_specialisation_commutes_with_addition() {
    for case in 0..CASES {
        let mut rng = Rng64::from_seed_stream(0xB007, case);
        let a = polynomial(&mut rng);
        let b = polynomial(&mut rng);
        let v = valuation(&mut rng);
        let m = Matrix::from_fn(2, 2, |_, _| rng.uniform(-1.0, 1.0));
        let expr_a = AnnotatedMatrix::annotated(a, m.clone());
        let expr_b = AnnotatedMatrix::annotated(b, m.clone());
        let sum_then_spec = expr_a.add(&expr_b).specialize(&v);
        let spec_then_sum = &expr_a.specialize(&v) + &expr_b.specialize(&v);
        assert!(
            (&sum_then_spec - &spec_then_sum).frobenius_norm() < 1e-12,
            "case {case}"
        );
    }
}

#[test]
fn deleting_a_token_zeroes_exactly_the_terms_mentioning_it() {
    for case in 0..CASES {
        let mut rng = Rng64::from_seed_stream(0xB008, case);
        let tok = rng.index(4) as u32;
        let m = Matrix::from_fn(2, 2, |_, _| rng.uniform(-1.0, 1.0));
        let mentioned = AnnotatedMatrix::annotated(Polynomial::from_token(Token(tok)), m.clone());
        let unmentioned =
            AnnotatedMatrix::annotated(Polynomial::from_token(Token(tok + 10)), m.clone());
        let v = Valuation::deleting([Token(tok)]);
        assert_eq!(mentioned.specialize(&v).max_abs(), 0.0);
        assert!(
            (&unmentioned.specialize(&v) - &m).frobenius_norm() < 1e-12,
            "case {case}"
        );
    }
}
