//! Provenance polynomials `N[T]`: natural-number combinations of monomials.

use std::collections::BTreeMap;
use std::fmt;

use crate::monomial::Monomial;
use crate::semiring::Semiring;
use crate::token::Token;
use crate::valuation::{Presence, Valuation};

/// A provenance polynomial — an element of `N[T]`, the free commutative
/// semiring over the token set.
///
/// `0_prov` is the empty polynomial (absence); `1_prov` is the unit monomial
/// with coefficient 1 ("neutral presence, no need to track").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Polynomial {
    /// monomial → coefficient (coefficients are strictly positive naturals).
    terms: BTreeMap<Monomial, u64>,
}

impl Polynomial {
    /// The zero polynomial `0_prov`.
    pub fn zero() -> Self {
        Self::default()
    }

    /// The unit polynomial `1_prov`.
    pub fn one() -> Self {
        Self::from_monomial(Monomial::unit())
    }

    /// A polynomial consisting of a single monomial with coefficient 1.
    pub fn from_monomial(m: Monomial) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(m, 1);
        Self { terms }
    }

    /// The degree-1 polynomial consisting of a single token.
    pub fn from_token(t: Token) -> Self {
        Self::from_monomial(Monomial::from_token(t))
    }

    /// A single-token power such as `p²` (the squared annotations appearing
    /// in the paper's Eq. 7/8, from using sample `i` jointly with itself in
    /// `x_i x_i^T`).
    pub fn token_power(t: Token, exponent: u32) -> Self {
        Self::from_monomial(Monomial::from_power(t, exponent))
    }

    /// Whether this is `0_prov`.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether this is exactly `1_prov`.
    pub fn is_one(&self) -> bool {
        self.terms.len() == 1 && self.terms.get(&Monomial::unit()) == Some(&1)
    }

    /// Number of (monomial, coefficient) terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over the `(monomial, coefficient)` terms.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, u64)> + '_ {
        self.terms.iter().map(|(m, &c)| (m, c))
    }

    /// Coefficient of the given monomial (0 if absent).
    pub fn coefficient(&self, m: &Monomial) -> u64 {
        self.terms.get(m).copied().unwrap_or(0)
    }

    /// Whether the polynomial mentions the given token in any monomial.
    pub fn mentions(&self, token: Token) -> bool {
        self.terms.keys().any(|m| m.contains(token))
    }

    fn insert(&mut self, m: Monomial, c: u64) {
        if c == 0 {
            return;
        }
        *self.terms.entry(m).or_insert(0) += c;
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let mut out = self.clone();
        for (m, c) in other.terms() {
            out.insert(m.clone(), c);
        }
        out
    }

    /// Polynomial multiplication.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        let mut out = Polynomial::zero();
        for (ma, ca) in self.terms() {
            for (mb, cb) in other.terms() {
                out.insert(ma.mul(mb), ca.saturating_mul(cb));
            }
        }
        out
    }

    /// The idempotent quotient: exponents collapse to 1 and coefficients of
    /// merged monomials are combined (the assumption of Theorem 3).
    pub fn idempotent(&self) -> Polynomial {
        let mut out = Polynomial::zero();
        for (m, c) in self.terms() {
            out.insert(m.idempotent(), c);
        }
        out
    }

    /// Specialises the polynomial under a deletion valuation: deleted tokens
    /// become `0_prov` (their monomials vanish) and retained tokens become
    /// `1_prov`. The result is the natural number that multiplies the
    /// annotated value (usually 1 for surviving terms).
    pub fn specialize(&self, valuation: &Valuation) -> u64 {
        let mut total: u64 = 0;
        for (m, c) in self.terms() {
            let survives = m
                .tokens()
                .all(|t| valuation.presence(t) == Presence::Present);
            if survives {
                total = total.saturating_add(c);
            }
        }
        total
    }

    /// Evaluates the polynomial into an arbitrary commutative semiring via a
    /// token assignment (the universal property of `N[T]`).
    pub fn evaluate<S, F>(&self, mut f: F) -> S
    where
        S: Semiring,
        F: FnMut(Token) -> S,
    {
        let mut acc = S::zero();
        for (m, c) in self.terms() {
            let mv: S = m.evaluate(&mut f);
            // coefficient c means "added c times".
            for _ in 0..c {
                acc = acc.add(&mv);
            }
        }
        acc
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (m, c) in self.terms() {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if c != 1 || m.is_unit() {
                write!(f, "{c}")?;
                if !m.is_unit() {
                    write!(f, "·")?;
                }
            }
            if !m.is_unit() {
                write!(f, "{m}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::Natural;

    fn p() -> Token {
        Token(0)
    }
    fn q() -> Token {
        Token(1)
    }
    fn r() -> Token {
        Token(2)
    }

    #[test]
    fn zero_and_one() {
        assert!(Polynomial::zero().is_zero());
        assert!(Polynomial::one().is_one());
        assert!(!Polynomial::from_token(p()).is_zero());
        assert!(!Polynomial::from_token(p()).is_one());
    }

    #[test]
    fn addition_and_multiplication() {
        // (p + q) · r = p·r + q·r
        let sum = Polynomial::from_token(p()).add(&Polynomial::from_token(q()));
        let prod = sum.mul(&Polynomial::from_token(r()));
        assert_eq!(prod.num_terms(), 2);
        let pr = Monomial::from_token(p()).mul(&Monomial::from_token(r()));
        assert_eq!(prod.coefficient(&pr), 1);
        assert!(prod.mentions(r()));
        assert!(!prod.mentions(Token(9)));
    }

    #[test]
    fn semiring_identities() {
        let a = Polynomial::from_token(p()).add(&Polynomial::one());
        assert_eq!(a.add(&Polynomial::zero()), a);
        assert_eq!(a.mul(&Polynomial::one()), a);
        assert!(a.mul(&Polynomial::zero()).is_zero());
    }

    #[test]
    fn paper_example_specialisation() {
        // w = p²q ∗ u + q r⁴ ∗ v + p s ∗ z;  deleting r keeps u and z terms.
        let s = Token(3);
        let t1 = Polynomial::token_power(p(), 2).mul(&Polynomial::from_token(q()));
        let t2 = Polynomial::from_token(q()).mul(&Polynomial::token_power(r(), 4));
        let t3 = Polynomial::from_token(p()).mul(&Polynomial::from_token(s));
        let mut val = Valuation::all_present();
        val.delete(r());
        assert_eq!(t1.specialize(&val), 1);
        assert_eq!(t2.specialize(&val), 0);
        assert_eq!(t3.specialize(&val), 1);
    }

    #[test]
    fn idempotent_quotient() {
        // p² + p·q² → p + p·q  (coefficients preserved, exponents collapsed).
        let poly = Polynomial::token_power(p(), 2)
            .add(&Polynomial::from_token(p()).mul(&Polynomial::token_power(q(), 2)));
        let idem = poly.idempotent();
        assert_eq!(idem.coefficient(&Monomial::from_token(p())), 1);
        let pq = Monomial::from_token(p()).mul(&Monomial::from_token(q()));
        assert_eq!(idem.coefficient(&pq), 1);
        // Squaring and collapsing equals collapsing (idempotence).
        let sq = Polynomial::from_token(p()).mul(&Polynomial::from_token(p()));
        assert_eq!(sq.idempotent(), Polynomial::from_token(p()));
    }

    #[test]
    fn evaluation_respects_universal_property() {
        // p·q + 2 evaluated at p=3, q=4 in N: 12 + 2 = 14.
        let poly = Polynomial::from_token(p())
            .mul(&Polynomial::from_token(q()))
            .add(&Polynomial::one())
            .add(&Polynomial::one());
        let v: Natural = poly.evaluate(|t| if t == p() { Natural(3) } else { Natural(4) });
        assert_eq!(v, Natural(14));
    }

    #[test]
    fn display_renders_reasonably() {
        assert_eq!(Polynomial::zero().to_string(), "0");
        assert_eq!(Polynomial::one().to_string(), "1");
        let poly = Polynomial::from_token(p()).add(&Polynomial::one());
        let s = poly.to_string();
        assert!(s.contains("p0"));
        assert!(s.contains('1'));
    }
}
