//! Provenance tokens: one opaque identifier per annotated training sample.

use std::collections::HashMap;

/// A provenance token, the indeterminate `p_i` annotating training sample
/// `i`. Tokens are small copyable identifiers; human-readable labels live in
/// the [`TokenRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub u32);

impl Token {
    /// The raw numeric identifier.
    pub fn id(self) -> u32 {
        self.0
    }
}

/// Allocates tokens and remembers optional human-readable labels (e.g. the
/// training-sample index the token annotates).
#[derive(Debug, Clone, Default)]
pub struct TokenRegistry {
    labels: Vec<String>,
    by_label: HashMap<String, Token>,
}

impl TokenRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh token with the given label. If the label already
    /// exists its token is returned instead of allocating a duplicate.
    pub fn register(&mut self, label: impl Into<String>) -> Token {
        let label = label.into();
        if let Some(&tok) = self.by_label.get(&label) {
            return tok;
        }
        let tok = Token(self.labels.len() as u32);
        self.by_label.insert(label.clone(), tok);
        self.labels.push(label);
        tok
    }

    /// Allocates one token per training sample, labelled `sample:<i>`.
    pub fn register_samples(&mut self, n: usize) -> Vec<Token> {
        (0..n)
            .map(|i| self.register(format!("sample:{i}")))
            .collect()
    }

    /// Looks up the label of a token (if it was allocated by this registry).
    pub fn label(&self, token: Token) -> Option<&str> {
        self.labels.get(token.0 as usize).map(String::as_str)
    }

    /// Looks up a token by its label.
    pub fn token(&self, label: &str) -> Option<Token> {
        self.by_label.get(label).copied()
    }

    /// Number of allocated tokens.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no tokens have been allocated.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = TokenRegistry::new();
        assert!(reg.is_empty());
        let a = reg.register("sample:0");
        let b = reg.register("sample:1");
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.label(a), Some("sample:0"));
        assert_eq!(reg.token("sample:1"), Some(b));
        assert_eq!(reg.token("missing"), None);
        assert_eq!(reg.label(Token(99)), None);
    }

    #[test]
    fn duplicate_labels_reuse_tokens() {
        let mut reg = TokenRegistry::new();
        let a = reg.register("x");
        let b = reg.register("x");
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn register_samples_allocates_sequentially() {
        let mut reg = TokenRegistry::new();
        let toks = reg.register_samples(3);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].id(), 0);
        assert_eq!(toks[2].id(), 2);
        assert_eq!(reg.label(toks[1]), Some("sample:1"));
    }
}
