//! A generic commutative semiring abstraction and the standard instances.
//!
//! Provenance polynomials `N[T]` are the *free* commutative semiring over the
//! token set `T`: any valuation of tokens into another commutative semiring
//! extends uniquely to polynomials. The instances provided here are the ones
//! classically used to specialise provenance (counting, Why-provenance /
//! boolean, cost / tropical) and they double as property-test targets for the
//! semiring laws.

/// A commutative semiring `(K, +, ·, 0, 1)`.
///
/// Laws (checked by property tests for every instance in this crate):
/// * `(K, +, 0)` is a commutative monoid;
/// * `(K, ·, 1)` is a commutative monoid;
/// * `·` distributes over `+`;
/// * `0` is absorbing for `·`.
pub trait Semiring: Clone + PartialEq + std::fmt::Debug {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Addition (alternative use of information).
    fn add(&self, other: &Self) -> Self;
    /// Multiplication (joint use of information).
    fn mul(&self, other: &Self) -> Self;

    /// Whether this element is the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Whether this element is the multiplicative identity.
    fn is_one(&self) -> bool {
        *self == Self::one()
    }
}

/// The counting semiring `(N, +, ·, 0, 1)` with saturating arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Natural(pub u64);

impl Semiring for Natural {
    fn zero() -> Self {
        Natural(0)
    }
    fn one() -> Self {
        Natural(1)
    }
    fn add(&self, other: &Self) -> Self {
        Natural(self.0.saturating_add(other.0))
    }
    fn mul(&self, other: &Self) -> Self {
        Natural(self.0.saturating_mul(other.0))
    }
}

/// The boolean semiring `({false, true}, ∨, ∧, false, true)` — the target of
/// Why-provenance / set semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bool(pub bool);

impl Semiring for Bool {
    fn zero() -> Self {
        Bool(false)
    }
    fn one() -> Self {
        Bool(true)
    }
    fn add(&self, other: &Self) -> Self {
        Bool(self.0 || other.0)
    }
    fn mul(&self, other: &Self) -> Self {
        Bool(self.0 && other.0)
    }
}

/// The tropical (min, +) semiring over `f64 ∪ {∞}`, classically used for
/// cost-of-derivation provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tropical(pub f64);

impl Tropical {
    /// The additive identity (+∞).
    pub const INFINITY: Tropical = Tropical(f64::INFINITY);
}

impl Semiring for Tropical {
    fn zero() -> Self {
        Tropical(f64::INFINITY)
    }
    fn one() -> Self {
        Tropical(0.0)
    }
    fn add(&self, other: &Self) -> Self {
        Tropical(self.0.min(other.0))
    }
    fn mul(&self, other: &Self) -> Self {
        Tropical(self.0 + other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_laws<S: Semiring>(a: S, b: S, c: S) {
        // Commutative monoid under +.
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&S::zero()), a);
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        // Commutative monoid under ·.
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&S::one()), a);
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        // Distributivity and absorption.
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        assert_eq!(a.mul(&S::zero()), S::zero());
    }

    #[test]
    fn natural_laws() {
        check_laws(Natural(2), Natural(3), Natural(5));
        assert!(Natural(0).is_zero());
        assert!(Natural(1).is_one());
    }

    #[test]
    fn natural_saturates_instead_of_overflowing() {
        let big = Natural(u64::MAX);
        assert_eq!(big.add(&Natural(1)), Natural(u64::MAX));
        assert_eq!(big.mul(&Natural(2)), Natural(u64::MAX));
    }

    #[test]
    fn bool_laws() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    check_laws(Bool(a), Bool(b), Bool(c));
                }
            }
        }
    }

    #[test]
    fn tropical_laws() {
        check_laws(Tropical(1.0), Tropical(2.5), Tropical(0.5));
        assert_eq!(Tropical::INFINITY, Tropical::zero());
        assert_eq!(Tropical(3.0).mul(&Tropical(4.0)), Tropical(7.0));
        assert_eq!(Tropical(3.0).add(&Tropical(4.0)), Tropical(3.0));
    }
}
