//! Provenance-annotated matrices and vectors.
//!
//! Following the matrix extension of the semiring framework (Yan, Tannen,
//! Ives; §4.1 of the PrIU paper), an annotated matrix is a formal sum
//! `Σ_k  p_k ∗ A_k` of numeric matrices `A_k` annotated with provenance
//! polynomials `p_k`. The algebra obeys
//!
//! * `(p ∗ A) + (q ∗ B)` — term-wise formal addition,
//! * `(p ∗ A)(q ∗ B) = (p·q) ∗ (A B)` — joint use multiplies annotations,
//! * specialisation under a valuation: deleted tokens send their terms to the
//!   zero matrix, retained tokens act as the identity, so specialising the
//!   annotated expression performs deletion propagation.
//!
//! These symbolic expressions are exponential in the number of iterations and
//! are only used by the reference implementation and the correctness tests —
//! the production PrIU path caches specialised contributions instead.

use priu_linalg::{Matrix, Vector};

use crate::polynomial::Polynomial;
use crate::valuation::Valuation;

/// A provenance-annotated matrix: a formal sum of annotated terms.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedMatrix {
    rows: usize,
    cols: usize,
    terms: Vec<(Polynomial, Matrix)>,
}

/// A provenance-annotated vector: a formal sum of annotated terms.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedVector {
    len: usize,
    terms: Vec<(Polynomial, Vector)>,
}

impl AnnotatedMatrix {
    /// The zero annotated matrix of the given shape (no terms).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            terms: Vec::new(),
        }
    }

    /// Annotates a matrix with `1_prov` ("always available, no need to
    /// track"), as done for the helper matrices in the paper.
    pub fn unannotated(matrix: Matrix) -> Self {
        Self::annotated(Polynomial::one(), matrix)
    }

    /// Annotates a matrix with an arbitrary provenance polynomial (`p ∗ A`).
    pub fn annotated(poly: Polynomial, matrix: Matrix) -> Self {
        let (rows, cols) = matrix.shape();
        let terms = if poly.is_zero() {
            Vec::new()
        } else {
            vec![(poly, matrix)]
        };
        Self { rows, cols, terms }
    }

    /// Shape of the underlying matrices.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of annotated terms in the formal sum.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over the annotated terms.
    pub fn terms(&self) -> impl Iterator<Item = &(Polynomial, Matrix)> + '_ {
        self.terms.iter()
    }

    /// Formal addition of two annotated matrices.
    ///
    /// # Panics
    /// Panics if the shapes differ (programming error in the caller).
    pub fn add(&self, other: &AnnotatedMatrix) -> AnnotatedMatrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "annotated matrix addition shape mismatch"
        );
        let mut terms = self.terms.clone();
        terms.extend(other.terms.iter().cloned());
        AnnotatedMatrix {
            rows: self.rows,
            cols: self.cols,
            terms,
        }
    }

    /// Annotated matrix product: every pair of terms combines as
    /// `(p ∗ A)(q ∗ B) = (p·q) ∗ (AB)`.
    ///
    /// # Panics
    /// Panics if the inner dimensions differ.
    pub fn matmul(&self, other: &AnnotatedMatrix) -> AnnotatedMatrix {
        assert_eq!(
            self.cols, other.rows,
            "annotated matmul inner dimension mismatch"
        );
        let mut terms = Vec::with_capacity(self.terms.len() * other.terms.len());
        for (pa, a) in &self.terms {
            for (pb, b) in &other.terms {
                let poly = pa.mul(pb);
                if poly.is_zero() {
                    continue;
                }
                let prod = a.matmul(b).expect("shapes checked above");
                terms.push((poly, prod));
            }
        }
        AnnotatedMatrix {
            rows: self.rows,
            cols: other.cols,
            terms,
        }
    }

    /// Annotated matrix-vector product.
    ///
    /// # Panics
    /// Panics if the dimensions are inconsistent.
    pub fn matvec(&self, other: &AnnotatedVector) -> AnnotatedVector {
        assert_eq!(self.cols, other.len, "annotated matvec dimension mismatch");
        let mut terms = Vec::with_capacity(self.terms.len() * other.terms.len());
        for (pa, a) in &self.terms {
            for (pb, b) in &other.terms {
                let poly = pa.mul(pb);
                if poly.is_zero() {
                    continue;
                }
                let prod = a.matvec(b).expect("shapes checked above");
                terms.push((poly, prod));
            }
        }
        AnnotatedVector {
            len: self.rows,
            terms,
        }
    }

    /// Scales every term's numeric matrix by a real constant (annotations are
    /// untouched; this corresponds to multiplying by `1_prov ∗ (αI)`).
    pub fn scale(&self, alpha: f64) -> AnnotatedMatrix {
        AnnotatedMatrix {
            rows: self.rows,
            cols: self.cols,
            terms: self
                .terms
                .iter()
                .map(|(p, m)| (p.clone(), m.scaled(alpha)))
                .collect(),
        }
    }

    /// Merges terms with identical annotations and optionally applies the
    /// idempotent quotient first (Theorem 3's assumption), keeping the
    /// expression size manageable for the reference implementation.
    pub fn compact(&self, idempotent: bool) -> AnnotatedMatrix {
        let mut merged: Vec<(Polynomial, Matrix)> = Vec::new();
        for (p, m) in &self.terms {
            let key = if idempotent {
                p.idempotent()
            } else {
                p.clone()
            };
            if key.is_zero() {
                continue;
            }
            if let Some(entry) = merged.iter_mut().find(|(q, _)| *q == key) {
                entry.1.axpy(1.0, m).expect("uniform shapes");
            } else {
                merged.push((key, m.clone()));
            }
        }
        AnnotatedMatrix {
            rows: self.rows,
            cols: self.cols,
            terms: merged,
        }
    }

    /// Specialises the expression under a valuation: terms whose annotation
    /// mentions a deleted token vanish; surviving annotations become natural
    /// numbers multiplying their matrices.
    pub fn specialize(&self, valuation: &Valuation) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (p, m) in &self.terms {
            let c = p.specialize(valuation);
            if c > 0 {
                out.axpy(c as f64, m).expect("uniform shapes");
            }
        }
        out
    }
}

impl AnnotatedVector {
    /// The zero annotated vector of the given length (no terms).
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            terms: Vec::new(),
        }
    }

    /// Annotates a vector with `1_prov`.
    pub fn unannotated(vector: Vector) -> Self {
        Self::annotated(Polynomial::one(), vector)
    }

    /// Annotates a vector with an arbitrary provenance polynomial (`p ∗ v`).
    pub fn annotated(poly: Polynomial, vector: Vector) -> Self {
        let len = vector.len();
        let terms = if poly.is_zero() {
            Vec::new()
        } else {
            vec![(poly, vector)]
        };
        Self { len, terms }
    }

    /// Length of the underlying vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has length zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of annotated terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over the annotated terms.
    pub fn terms(&self) -> impl Iterator<Item = &(Polynomial, Vector)> + '_ {
        self.terms.iter()
    }

    /// Formal addition.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn add(&self, other: &AnnotatedVector) -> AnnotatedVector {
        assert_eq!(
            self.len, other.len,
            "annotated vector addition length mismatch"
        );
        let mut terms = self.terms.clone();
        terms.extend(other.terms.iter().cloned());
        AnnotatedVector {
            len: self.len,
            terms,
        }
    }

    /// Scales every term's numeric vector by a real constant.
    pub fn scale(&self, alpha: f64) -> AnnotatedVector {
        AnnotatedVector {
            len: self.len,
            terms: self
                .terms
                .iter()
                .map(|(p, v)| (p.clone(), v.scaled(alpha)))
                .collect(),
        }
    }

    /// Merges terms with identical annotations, optionally applying the
    /// idempotent quotient first.
    pub fn compact(&self, idempotent: bool) -> AnnotatedVector {
        let mut merged: Vec<(Polynomial, Vector)> = Vec::new();
        for (p, v) in &self.terms {
            let key = if idempotent {
                p.idempotent()
            } else {
                p.clone()
            };
            if key.is_zero() {
                continue;
            }
            if let Some(entry) = merged.iter_mut().find(|(q, _)| *q == key) {
                entry.1.axpy(1.0, v).expect("uniform lengths");
            } else {
                merged.push((key, v.clone()));
            }
        }
        AnnotatedVector {
            len: self.len,
            terms: merged,
        }
    }

    /// Specialises the expression under a valuation (deletion propagation).
    pub fn specialize(&self, valuation: &Valuation) -> Vector {
        let mut out = Vector::zeros(self.len);
        for (p, v) in &self.terms {
            let c = p.specialize(valuation);
            if c > 0 {
                out.axpy(c as f64, v).expect("uniform lengths");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Token;

    fn p0() -> Polynomial {
        Polynomial::from_token(Token(0))
    }
    fn p1() -> Polynomial {
        Polynomial::from_token(Token(1))
    }

    #[test]
    fn annotation_and_specialisation_of_vectors() {
        // w = p0 ∗ u + p1 ∗ v; deleting token 1 leaves u.
        let u = Vector::from_vec(vec![1.0, 2.0]);
        let v = Vector::from_vec(vec![10.0, 20.0]);
        let w = AnnotatedVector::annotated(p0(), u.clone())
            .add(&AnnotatedVector::annotated(p1(), v.clone()));
        assert_eq!(w.num_terms(), 2);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());

        let keep_all = w.specialize(&Valuation::all_present());
        assert_eq!(keep_all.as_slice(), &[11.0, 22.0]);

        let drop1 = w.specialize(&Valuation::deleting([Token(1)]));
        assert_eq!(drop1.as_slice(), u.as_slice());

        let drop_both = w.specialize(&Valuation::deleting([Token(0), Token(1)]));
        assert_eq!(drop_both.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn matrix_decomposition_example_from_paper() {
        // X (2x2) decomposed as p0 ∗ [x1; 0] + p1 ∗ [0; x2]; specialisation
        // with all tokens present reconstructs X, deleting token 0 zeroes the
        // first row.
        let x1 = Matrix::from_vec(2, 2, vec![1.0, 2.0, 0.0, 0.0]).unwrap();
        let x2 = Matrix::from_vec(2, 2, vec![0.0, 0.0, 3.0, 4.0]).unwrap();
        let x = AnnotatedMatrix::annotated(p0(), x1.clone())
            .add(&AnnotatedMatrix::annotated(p1(), x2.clone()));
        let full = x.specialize(&Valuation::all_present());
        assert_eq!(full[(0, 1)], 2.0);
        assert_eq!(full[(1, 0)], 3.0);
        let dropped = x.specialize(&Valuation::deleting([Token(0)]));
        assert_eq!(dropped.row(0), &[0.0, 0.0]);
        assert_eq!(dropped.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn multiplication_combines_annotations() {
        // (p0 ∗ A)(p1 ∗ B) = (p0·p1) ∗ AB.
        let a = Matrix::identity(2);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let prod = AnnotatedMatrix::annotated(p0(), a)
            .matmul(&AnnotatedMatrix::annotated(p1(), b.clone()));
        assert_eq!(prod.num_terms(), 1);
        let (poly, mat) = prod.terms().next().unwrap();
        assert!(poly.mentions(Token(0)) && poly.mentions(Token(1)));
        assert_eq!(mat, &b);
        // Deleting either token kills the product.
        assert_eq!(
            prod.specialize(&Valuation::deleting([Token(0)])).max_abs(),
            0.0
        );
    }

    #[test]
    fn matvec_and_scale() {
        let a = AnnotatedMatrix::unannotated(Matrix::identity(2)).scale(2.0);
        let v = AnnotatedVector::annotated(p0(), Vector::from_vec(vec![1.0, -1.0]));
        let out = a.matvec(&v);
        assert_eq!(out.len(), 2);
        let spec = out.specialize(&Valuation::all_present());
        assert_eq!(spec.as_slice(), &[2.0, -2.0]);
        let scaled = v.scale(3.0).specialize(&Valuation::all_present());
        assert_eq!(scaled.as_slice(), &[3.0, -3.0]);
    }

    #[test]
    fn compact_merges_terms_and_applies_idempotence() {
        // p0² ∗ A + p0 ∗ A compacts (idempotently) into a single term 2A.
        let a = Matrix::identity(2);
        let expr = AnnotatedMatrix::annotated(Polynomial::token_power(Token(0), 2), a.clone())
            .add(&AnnotatedMatrix::annotated(p0(), a.clone()));
        assert_eq!(expr.num_terms(), 2);
        let compacted = expr.compact(true);
        assert_eq!(compacted.num_terms(), 1);
        let spec = compacted.specialize(&Valuation::all_present());
        assert_eq!(spec[(0, 0)], 2.0);
        // Without idempotence the two terms stay distinct.
        assert_eq!(expr.compact(false).num_terms(), 2);
    }

    #[test]
    fn zero_annotations_produce_no_terms() {
        let z = AnnotatedMatrix::annotated(Polynomial::zero(), Matrix::identity(2));
        assert_eq!(z.num_terms(), 0);
        assert_eq!(z.specialize(&Valuation::all_present()).max_abs(), 0.0);
        let zv = AnnotatedVector::annotated(Polynomial::zero(), Vector::ones(3));
        assert_eq!(zv.num_terms(), 0);
        let zeros = AnnotatedMatrix::zeros(2, 3);
        assert_eq!(zeros.shape(), (2, 3));
        let zerov = AnnotatedVector::zeros(3);
        assert_eq!(zerov.len(), 3);
    }

    #[test]
    fn vector_compact_merges() {
        let v = Vector::ones(2);
        let expr = AnnotatedVector::annotated(p0(), v.clone())
            .add(&AnnotatedVector::annotated(p0(), v.clone()));
        let compacted = expr.compact(false);
        assert_eq!(compacted.num_terms(), 1);
        assert_eq!(
            compacted.specialize(&Valuation::all_present()).as_slice(),
            &[2.0, 2.0]
        );
    }
}
