//! Monomials over provenance tokens (e.g. `p² q`).

use std::collections::BTreeMap;
use std::fmt;

use crate::token::Token;

/// A monomial `Π_i p_i^{e_i}` over provenance tokens, stored as a sorted
/// `token → exponent` map (exponents are strictly positive).
///
/// The paper's example `p²q` means "the item annotated `p` was used twice
/// jointly with the item annotated `q`". Under the idempotent-multiplication
/// quotient assumed by Theorem 3 all exponents collapse to 1.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial {
    exponents: BTreeMap<Token, u32>,
}

impl Monomial {
    /// The empty monomial (degree 0), i.e. the multiplicative unit.
    pub fn unit() -> Self {
        Self::default()
    }

    /// The degree-1 monomial consisting of a single token.
    pub fn from_token(token: Token) -> Self {
        let mut exponents = BTreeMap::new();
        exponents.insert(token, 1);
        Self { exponents }
    }

    /// A monomial with an explicit exponent for a single token.
    /// An exponent of 0 yields the unit monomial.
    pub fn from_power(token: Token, exponent: u32) -> Self {
        let mut exponents = BTreeMap::new();
        if exponent > 0 {
            exponents.insert(token, exponent);
        }
        Self { exponents }
    }

    /// Whether this is the unit (degree-0) monomial.
    pub fn is_unit(&self) -> bool {
        self.exponents.is_empty()
    }

    /// Total degree (sum of exponents).
    pub fn degree(&self) -> u32 {
        self.exponents.values().sum()
    }

    /// Exponent of a given token (0 if absent).
    pub fn exponent(&self, token: Token) -> u32 {
        self.exponents.get(&token).copied().unwrap_or(0)
    }

    /// Whether the monomial mentions the given token.
    pub fn contains(&self, token: Token) -> bool {
        self.exponents.contains_key(&token)
    }

    /// The distinct tokens mentioned by the monomial.
    pub fn tokens(&self) -> impl Iterator<Item = Token> + '_ {
        self.exponents.keys().copied()
    }

    /// Product of two monomials (exponents add).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut exponents = self.exponents.clone();
        for (&tok, &exp) in &other.exponents {
            *exponents.entry(tok).or_insert(0) += exp;
        }
        Monomial { exponents }
    }

    /// The idempotent quotient: every exponent collapsed to 1 (the
    /// "multiplication idempotence" assumption of Theorem 3, which intuitively
    /// means we do not track multiple joint uses of the same sample).
    pub fn idempotent(&self) -> Monomial {
        Monomial {
            exponents: self.exponents.keys().map(|&t| (t, 1)).collect(),
        }
    }

    /// Evaluates the monomial under a token assignment into an arbitrary
    /// commutative semiring: each token is mapped by `f` and the results are
    /// multiplied (exponentiation by repeated multiplication).
    pub fn evaluate<S, F>(&self, mut f: F) -> S
    where
        S: crate::semiring::Semiring,
        F: FnMut(Token) -> S,
    {
        let mut acc = S::one();
        for (&tok, &exp) in &self.exponents {
            let v = f(tok);
            for _ in 0..exp {
                acc = acc.mul(&v);
            }
        }
        acc
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unit() {
            return write!(f, "1");
        }
        let mut first = true;
        for (tok, exp) in &self.exponents {
            if !first {
                write!(f, "·")?;
            }
            first = false;
            if *exp == 1 {
                write!(f, "p{}", tok.id())?;
            } else {
                write!(f, "p{}^{}", tok.id(), exp)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{Bool, Natural};

    #[test]
    fn construction_and_degree() {
        let p = Token(0);
        let q = Token(1);
        let m = Monomial::from_power(p, 2).mul(&Monomial::from_token(q));
        assert_eq!(m.degree(), 3);
        assert_eq!(m.exponent(p), 2);
        assert_eq!(m.exponent(q), 1);
        assert_eq!(m.exponent(Token(9)), 0);
        assert!(m.contains(p));
        assert!(!m.contains(Token(9)));
        assert_eq!(m.tokens().count(), 2);
        assert!(Monomial::unit().is_unit());
        assert!(Monomial::from_power(p, 0).is_unit());
    }

    #[test]
    fn multiplication_is_commutative_and_unital() {
        let p = Monomial::from_token(Token(0));
        let q = Monomial::from_token(Token(1));
        assert_eq!(p.mul(&q), q.mul(&p));
        assert_eq!(p.mul(&Monomial::unit()), p);
    }

    #[test]
    fn idempotent_quotient_collapses_exponents() {
        let m = Monomial::from_power(Token(0), 3).mul(&Monomial::from_power(Token(1), 2));
        let idem = m.idempotent();
        assert_eq!(idem.exponent(Token(0)), 1);
        assert_eq!(idem.exponent(Token(1)), 1);
        assert_eq!(idem.degree(), 2);
    }

    #[test]
    fn evaluation_into_semirings() {
        let p = Token(0);
        let q = Token(1);
        let m = Monomial::from_power(p, 2).mul(&Monomial::from_token(q));
        // p=2, q=3 → 2²·3 = 12 in the counting semiring.
        let n: Natural = m.evaluate(|t| if t == p { Natural(2) } else { Natural(3) });
        assert_eq!(n, Natural(12));
        // Boolean: present iff all mentioned tokens are present.
        let all_present: Bool = m.evaluate(|_| Bool(true));
        assert_eq!(all_present, Bool(true));
        let q_absent: Bool = m.evaluate(|t| Bool(t != q));
        assert_eq!(q_absent, Bool(false));
    }

    #[test]
    fn display_formats_monomials() {
        assert_eq!(Monomial::unit().to_string(), "1");
        let m = Monomial::from_power(Token(0), 2).mul(&Monomial::from_token(Token(3)));
        assert_eq!(m.to_string(), "p0^2·p3");
    }
}
