//! Valuations: assignments of `0_prov` / `1_prov` to tokens, i.e. deletion
//! sets. Setting a deleted sample's token to `0_prov` and all others to
//! `1_prov` is exactly how the semiring framework propagates deletions.

use std::collections::BTreeSet;

use crate::token::Token;

/// Presence of a token under a valuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Presence {
    /// The token is retained (valued `1_prov`).
    Present,
    /// The token is deleted (valued `0_prov`).
    Absent,
}

/// A valuation mapping every token to `1_prov` except an explicit deletion
/// set mapped to `0_prov`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Valuation {
    deleted: BTreeSet<Token>,
}

impl Valuation {
    /// The valuation that keeps every token (`1_prov` everywhere).
    pub fn all_present() -> Self {
        Self::default()
    }

    /// A valuation deleting exactly the given tokens.
    pub fn deleting(tokens: impl IntoIterator<Item = Token>) -> Self {
        Self {
            deleted: tokens.into_iter().collect(),
        }
    }

    /// Marks a token as deleted.
    pub fn delete(&mut self, token: Token) {
        self.deleted.insert(token);
    }

    /// Restores a previously deleted token.
    pub fn restore(&mut self, token: Token) {
        self.deleted.remove(&token);
    }

    /// The presence of a token under this valuation.
    pub fn presence(&self, token: Token) -> Presence {
        if self.deleted.contains(&token) {
            Presence::Absent
        } else {
            Presence::Present
        }
    }

    /// Whether the token is deleted.
    pub fn is_deleted(&self, token: Token) -> bool {
        self.deleted.contains(&token)
    }

    /// Number of deleted tokens.
    pub fn num_deleted(&self) -> usize {
        self.deleted.len()
    }

    /// Iterates over the deleted tokens.
    pub fn deleted_tokens(&self) -> impl Iterator<Item = Token> + '_ {
        self.deleted.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_keeps_everything() {
        let v = Valuation::all_present();
        assert_eq!(v.presence(Token(0)), Presence::Present);
        assert_eq!(v.num_deleted(), 0);
        assert!(!v.is_deleted(Token(3)));
    }

    #[test]
    fn delete_and_restore() {
        let mut v = Valuation::all_present();
        v.delete(Token(2));
        v.delete(Token(5));
        assert_eq!(v.presence(Token(2)), Presence::Absent);
        assert_eq!(v.presence(Token(3)), Presence::Present);
        assert_eq!(v.num_deleted(), 2);
        v.restore(Token(2));
        assert_eq!(v.presence(Token(2)), Presence::Present);
        assert_eq!(v.num_deleted(), 1);
        let listed: Vec<_> = v.deleted_tokens().collect();
        assert_eq!(listed, vec![Token(5)]);
    }

    #[test]
    fn deleting_constructor() {
        let v = Valuation::deleting([Token(1), Token(1), Token(4)]);
        assert_eq!(v.num_deleted(), 2);
        assert!(v.is_deleted(Token(1)));
        assert!(v.is_deleted(Token(4)));
    }
}
