//! # priu-provenance
//!
//! The provenance-semiring substrate of the PrIU reproduction.
//!
//! PrIU (§4.1 of the paper) builds on two prior lines of work:
//!
//! 1. the **provenance semiring framework** of Green, Karvounarakis and
//!    Tannen, in which input items are annotated with *provenance tokens*,
//!    annotations combine with `+` (alternative use) and `·` (joint use), and
//!    results carry *provenance polynomials* `N[T]`; and
//! 2. its **extension to linear algebra** (Yan, Tannen, Ives), in which
//!    provenance polynomials play the role of scalars and annotate matrices
//!    and vectors via an operation `∗` satisfying
//!    `(p ∗ A)(q ∗ B) = (p·q) ∗ (AB)`.
//!
//! This crate implements both layers:
//!
//! * [`token`] / [`monomial`] / [`polynomial`] — tokens, monomials and
//!   polynomials in `N[T]`, with the idempotent-multiplication quotient that
//!   Theorem 3 of the paper assumes for convergence;
//! * [`semiring`] — a generic [`semiring::Semiring`] trait with the standard
//!   instances (naturals, booleans / Why-provenance, tropical), of which the
//!   provenance polynomials are the free commutative instance;
//! * [`annotated`] — provenance-annotated matrices and vectors
//!   (`Σ_k p_k ∗ A_k`) with the algebra of §4.1, plus *specialisation* under
//!   a [`valuation::Valuation`] that sets deleted tokens to `0_prov` and
//!   retained tokens to `1_prov`, which is exactly the paper's deletion
//!   propagation.
//!
//! The optimized PrIU algorithms in `priu-core` never materialise these
//! symbolic expressions — they cache the numeric contributions directly — but
//! this crate is used by the reference implementation and by tests that prove
//! the cached-contribution path agrees with honest-to-goodness provenance
//! specialisation on small instances.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod annotated;
pub mod monomial;
pub mod polynomial;
pub mod semiring;
pub mod token;
pub mod valuation;

pub use annotated::{AnnotatedMatrix, AnnotatedVector};
pub use monomial::Monomial;
pub use polynomial::Polynomial;
pub use semiring::Semiring;
pub use token::{Token, TokenRegistry};
pub use valuation::{Presence, Valuation};
